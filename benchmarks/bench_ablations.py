"""Ablation benches for the design choices called out in DESIGN.md.

Not figures from the paper, but experiments the paper's text argues
about, each checked quantitatively:

* **Hansen-Hurwitz correction** (Section 5): dropping the reweighting
  under RW must distort size estimates on skewed graphs;
* **footnote 4** (``k_A := k_V``): the model-based variant trades bias
  for variance — it must estimate categories with zero draws where the
  design-based variant cannot;
* **size plug-in choice** (Section 5.3.2): oracle sizes in Eq. (16)
  should not lose to estimated sizes;
* **thinning** (Section 5.4): thinning a walk reduces autocorrelation;
* **BFS baseline** (Section 8): traversal samples without inclusion
  probabilities are biased toward high degrees.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.core import estimate_sizes_induced, estimate_sizes_star
from repro.experiments.base import ExperimentResult
from repro.generators import planted_category_graph, stochastic_block_model
from repro.sampling import (
    BreadthFirstSampler,
    NodeSample,
    RandomWalkSampler,
    autocorrelation,
    observe_induced,
    observe_star,
)
from repro.stats import run_nrmse_sweep_from_samples


def test_hansen_hurwitz_correction_matters(benchmark, preset):
    """Naive (uncorrected) RW estimates inflate dense categories."""

    def run():
        graph, partition = stochastic_block_model(
            [400, 400], np.array([[0.10, 0.005], [0.005, 0.01]]), rng=0
        )
        sample = RandomWalkSampler(graph).sample(40_000, rng=1)
        corrected = estimate_sizes_induced(
            observe_induced(graph, partition, sample), graph.num_nodes
        )
        naive_sample = NodeSample(
            sample.nodes, np.ones(sample.size), design="naive", uniform=True
        )
        naive = estimate_sizes_induced(
            observe_induced(graph, partition, naive_sample), graph.num_nodes
        )
        return corrected, naive

    corrected, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment_id="ablation_hh",
        title="RW size estimates with vs without Hansen-Hurwitz correction",
        table=(
            ("block", "true", "corrected", "naive"),
            [(0, 400, round(corrected[0], 1), round(naive[0], 1)),
             (1, 400, round(corrected[1], 1), round(naive[1], 1))],
        ),
    )
    emit(result)
    assert abs(corrected[0] - 400) / 400 < 0.2
    assert naive[0] > 1.5 * 400  # dense block badly over-counted


def test_footnote4_global_mean_degree_model(benchmark, preset):
    """k_A := k_V estimates unsampled categories; per-category cannot."""

    def run():
        graph, partition = planted_category_graph(
            k=10, scale=preset.planted_scale, rng=0
        )
        sample = RandomWalkSampler(graph).sample(300, rng=2)
        obs = observe_star(graph, partition, sample)
        per_category = estimate_sizes_star(
            obs, graph.num_nodes, mean_degree_model="per-category"
        )
        global_model = estimate_sizes_star(
            obs, graph.num_nodes, mean_degree_model="global"
        )
        return partition, per_category, global_model

    partition, per_category, global_model = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        (partition.names[i], int(partition.sizes()[i]),
         round(float(per_category[i]), 1), round(float(global_model[i]), 1))
        for i in range(partition.num_categories)
    ]
    emit(ExperimentResult(
        experiment_id="ablation_footnote4",
        title="star size estimation: per-category vs global k_A (footnote 4)",
        table=(("category", "true", "per-category", "global"), rows),
    ))
    # The global model must produce strictly more finite estimates when
    # the sample misses small categories (300 draws almost surely do).
    assert np.sum(np.isfinite(global_model)) >= np.sum(np.isfinite(per_category))
    # And the global model stays finite everywhere categories have volume.
    assert np.all(np.isfinite(global_model))


def test_weight_size_plugin_choice(benchmark, preset):
    """Oracle sizes in Eq. (16) should not lose to estimated sizes."""

    def run():
        graph, partition = planted_category_graph(
            k=12, scale=preset.planted_scale, rng=0
        )
        walks = [
            RandomWalkSampler(graph).sample(3000, rng=seed) for seed in range(6)
        ]
        medians = {}
        for plugin in ("true", "star", "induced"):
            sweep = run_nrmse_sweep_from_samples(
                graph, partition, walks, (3000,), weight_size_plugin=plugin
            )
            medians[plugin] = float(sweep.median_weight_nrmse("star")[0])
        return medians

    medians = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(ExperimentResult(
        experiment_id="ablation_plugin",
        title="Eq. (16) size plug-in: median NRMSE(w) under RW",
        table=(("plug-in", "median NRMSE"),
               [(k, round(v, 4)) for k, v in medians.items()]),
    ))
    assert medians["true"] <= medians["star"] * 1.3
    assert medians["true"] <= medians["induced"] * 1.3


def test_thinning_reduces_autocorrelation(benchmark, preset):
    """Section 5.4: taking every T-th draw de-correlates the walk."""

    def run():
        graph, partition = planted_category_graph(
            k=10, scale=preset.planted_scale, rng=0
        )
        walk = RandomWalkSampler(graph).sample(30_000, rng=3)
        degrees = walk.weights  # degree of each visited node
        acf_raw = autocorrelation(degrees, max_lag=1)[1]
        thinned = walk.thin(10)
        acf_thin = autocorrelation(thinned.weights, max_lag=1)[1]
        return acf_raw, acf_thin

    acf_raw, acf_thin = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(ExperimentResult(
        experiment_id="ablation_thinning",
        title="lag-1 autocorrelation of visited degrees, raw vs thinned",
        table=(("sample", "lag-1 ACF"),
               [("raw walk", round(float(acf_raw), 4)),
                ("thinned (T=10)", round(float(acf_thin), 4))]),
    ))
    assert abs(acf_thin) < abs(acf_raw)


def test_bfs_baseline_is_biased(benchmark, preset):
    """Section 8: BFS over-samples high-degree nodes; estimators built
    on it (with no usable inclusion probabilities) stay biased.

    Needs a heavy-tailed graph — on the near-regular planted model BFS
    has nothing to be biased toward, so this ablation runs on a
    Barabasi-Albert graph."""

    def run():
        from repro.generators import barabasi_albert_graph

        graph = barabasi_albert_graph(20_000 // preset.planted_scale * 10, 4, rng=0)
        n = graph.num_nodes
        bfs = BreadthFirstSampler(graph).sample(n // 10, rng=4)
        mean_degree_bfs = float(graph.degrees()[bfs.nodes].mean())
        mean_degree_all = float(graph.mean_degree())
        return mean_degree_bfs, mean_degree_all

    mean_bfs, mean_all = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(ExperimentResult(
        experiment_id="ablation_bfs",
        title="BFS degree bias (mean degree of sample vs population)",
        table=(("population mean degree", "BFS sample mean degree"),
               [(round(mean_all, 2), round(mean_bfs, 2))]),
    ))
    assert mean_bfs > 1.3 * mean_all  # the classic BFS bias
