"""Bench: regenerate Fig. 3 (synthetic-model NRMSE, UIS).

Top row (panels a-d): category-size estimators.
Bottom row (panels e-h): edge-weight estimators.

Shape claims asserted (paper Section 6.2):

* all estimators converge (NRMSE decreases along |S|);
* size estimation: the star estimator improves with density (k = 49
  beats k = 5 for star) and both estimators do better on larger
  categories;
* weight estimation: the star estimator beats induced, and high-weight
  edges are easier than low-weight ones.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import run_fig3


def _final(series):
    xs, ys = series
    ys = np.asarray(ys, dtype=float)
    finite = ys[np.isfinite(ys)]
    return finite[-1] if len(finite) else np.nan


def _first(series):
    xs, ys = series
    ys = np.asarray(ys, dtype=float)
    finite = ys[np.isfinite(ys)]
    return finite[0] if len(finite) else np.nan


def test_fig3_sizes(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig3(panels=("a", "b", "c", "d"), preset=preset, rng=0),
        rounds=1,
        iterations=1,
    )
    for key in ("fig3a", "fig3b", "fig3c", "fig3d"):
        emit(results[key])

    # Convergence: every size curve in panel (a) ends at least ~2x below
    # its start.
    for label, series in results["fig3a"].series.items():
        assert _final(series) < _first(series), label

    # Panel (a): density helps the star estimator - the k=49 star curve
    # sits below the k=5 star curve (compared over the whole curve via
    # geometric means; single points are noise once both NRMSEs drop to
    # the 1e-3 range).
    a = results["fig3a"].series

    def _gmean(series):
        ys = np.asarray(series[1], dtype=float)
        finite = ys[np.isfinite(ys) & (ys > 0)]
        return float(np.exp(np.mean(np.log(finite))))

    assert _gmean(a["k=49/star"]) < _gmean(a["k=5/star"]) * 1.2

    # Panel (c): the largest category is estimated better than the small
    # one, for both measurement kinds.
    c = results["fig3c"].series
    assert _final(c["|C|=largest/induced"]) < _final(c["|C|=small/induced"])
    assert _final(c["|C|=largest/star"]) < _final(c["|C|=small/star"])


def test_fig3_weights(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig3(panels=("e", "f", "g", "h"), preset=preset, rng=0),
        rounds=1,
        iterations=1,
    )
    for key in ("fig3e", "fig3f", "fig3g", "fig3h"):
        emit(results[key])

    # Convergence on the high-weight edge (panel e, k=49).
    e = results["fig3e"].series
    assert _final(e["k=49/star"]) < _first(e["k=49/star"])

    # Panel (g): star beats induced on both percentile edges at the
    # final sample size; e_high is easier than e_low (averaged over the
    # tail of the curve - single points are noisy at small scale).
    g = results["fig3g"].series

    def _tail_mean(series):
        ys = np.asarray(series[1], dtype=float)
        finite = ys[np.isfinite(ys)]
        return finite[-3:].mean()

    assert _final(g["e_high/star"]) <= _final(g["e_high/induced"]) * 1.1
    assert _tail_mean(g["e_high/star"]) < _tail_mean(g["e_low/star"]) * 1.2

    # Panel (h): the star CDF dominates (reaches any coverage level at a
    # lower NRMSE) - compare medians of the two CDFs.
    h = results["fig3h"].series
    med_star = np.median(np.asarray(h["star"][0]))
    med_induced = np.median(np.asarray(h["induced"][0]))
    assert med_star <= med_induced
