"""Bench: regenerate Fig. 4 (empirical graphs, community categories).

Shape claims asserted (paper Section 6.3):

* weight estimation: star consistently and significantly outperforms
  induced (the paper reports induced needs 5-10x more samples);
* sampler ordering for weights: UIS best;
* size estimation has no universal winner (we only assert both
  estimators produce finite, converging medians).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import run_fig4


def _final(series):
    xs, ys = series
    ys = np.asarray(ys, dtype=float)
    finite = ys[np.isfinite(ys)]
    return finite[-1] if len(finite) else np.nan


def test_fig4_sizes(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig4(preset=preset, rng=0), rounds=1, iterations=1
    )
    for key, result in results.items():
        if key.endswith("_sizes"):
            emit(result)
    for key, result in results.items():
        if not key.endswith("_sizes"):
            continue
        for label, series in result.series.items():
            assert np.isfinite(_final(series)), (key, label)
        # Convergence of the UIS induced median.
        xs, ys = result.series["UIS/induced"]
        ys = np.asarray(ys, dtype=float)
        assert ys[-1] <= ys[0], key


def test_fig4_weights(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig4(preset=preset, rng=0), rounds=1, iterations=1
    )
    for key, result in results.items():
        if key.endswith("_weights"):
            emit(result)
    for key, result in results.items():
        if not key.endswith("_weights"):
            continue
        series = result.series
        # Star beats induced for every sampler on every dataset.
        for sampler in ("UIS", "RW", "S-WRW"):
            star = _final(series[f"{sampler}/star"])
            induced = _final(series[f"{sampler}/induced"])
            assert star < induced, (key, sampler, star, induced)
        # The paper's 5-10x sample-efficiency gap shows up as a large
        # NRMSE gap at equal |S| for the crawl designs. (The paper's
        # UIS-first sampler ordering is not asserted per-dataset: on
        # skewed graphs the degree bias of RW *feeds* star sampling -
        # the paper's own Section 6.3.2 argument - so the ordering can
        # flip for weight medians at laptop scale.)
        assert _final(series["RW/star"]) < 0.7 * _final(series["RW/induced"]), key
