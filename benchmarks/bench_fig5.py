"""Bench: regenerate Fig. 5 (samples per category in the crawls).

Shape claims: per-category sample counts span decades (heavy-tailed
category popularity), and S-WRW10 lifts college coverage by an order of
magnitude over RW10 (the paper: "improves that result by at least one
order of magnitude").
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import run_fig5


def test_fig5(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig5(preset=preset, rng=0), rounds=1, iterations=1
    )
    emit(results["fig5a"])
    emit(results["fig5b"])

    # 2009 panels: counts span at least two decades.
    for label, (ranks, counts) in results["fig5a"].series.items():
        counts = np.asarray(counts)
        positive = counts[counts > 0]
        assert positive[0] >= 100 * max(positive[-1], 1) or positive[0] >= 100, label

    # 2010 panel: S-WRW covers far more college mass than RW.
    b = results["fig5b"].series
    rw_total = np.asarray(b["RW10"][1]).sum()
    swrw_total = np.asarray(b["S-WRW10"][1]).sum()
    assert swrw_total > 8 * max(rw_total, 1)

    # ...and it covers about as many (usually more) distinct colleges;
    # its per-college *counts* are what rise by an order of magnitude.
    rw_nonzero = int(np.count_nonzero(np.asarray(b["RW10"][1])))
    swrw_nonzero = int(np.count_nonzero(np.asarray(b["S-WRW10"][1])))
    assert swrw_nonzero >= 0.9 * rw_nonzero
