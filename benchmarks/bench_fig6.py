"""Bench: regenerate Fig. 6 (estimation error on the Facebook crawls).

Shape claims asserted (paper Section 7.2):

* weight estimation (panels c, d): every star estimator dramatically
  outperforms its induced counterpart;
* sampler ordering: UIS best in 2009; S-WRW beats RW in 2010;
* size estimation (panels a, b): under UIS the induced estimator is
  competitive; under the 2010 crawls the star version wins.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import run_fig6


def _final(series):
    xs, ys = series
    ys = np.asarray(ys, dtype=float)
    finite = ys[np.isfinite(ys)]
    return finite[-1] if len(finite) else np.nan


def test_fig6_sizes(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig6(preset=preset, rng=0), rounds=1, iterations=1
    )
    emit(results["fig6a"])
    emit(results["fig6b"])

    a = results["fig6a"].series
    # 2009 size estimation: UIS (either kind) beats the MHRW crawl — the
    # paper's "UIS performs the best, MHRW the worst".
    uis_best = min(_final(a["UIS09/induced"]), _final(a["UIS09/star"]))
    mhrw_best = min(_final(a["MHRW09/induced"]), _final(a["MHRW09/star"]))
    assert uis_best <= mhrw_best * 1.1

    b = results["fig6b"].series
    # 2010 size estimation: S-WRW's star variant beats its induced one
    # (stratification + neighbor information).
    assert _final(b["S-WRW10/star"]) <= _final(b["S-WRW10/induced"]) * 1.1
    # The paper additionally reports S-WRW beating RW. Our simplified
    # S-WRW (resolved product weights, no vertex extensions - see
    # DESIGN.md) reproduces that at the small preset; at larger scales
    # its heavier weight spread costs variance, so there we only require
    # it stays in RW's ballpark. Documented in EXPERIMENTS.md.
    if preset.name == "small":
        assert _final(b["S-WRW10/star"]) < _final(b["RW10/star"]) * 1.1
    else:
        assert _final(b["S-WRW10/star"]) < _final(b["RW10/star"]) * 2.5


def test_fig6_weights(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig6(preset=preset, rng=0), rounds=1, iterations=1
    )
    emit(results["fig6c"])
    emit(results["fig6d"])

    # Star dramatically beats induced for weights in both years.
    for panel in ("fig6c", "fig6d"):
        series = results[panel].series
        names = {label.split("/")[0] for label in series}
        for name in names:
            star = _final(series[f"{name}/star"])
            induced = _final(series[f"{name}/induced"])
            if np.isfinite(star) and np.isfinite(induced):
                assert star < induced, (panel, name, star, induced)

    # 2010: S-WRW star weights beat RW star weights.
    d = results["fig6d"].series
    assert _final(d["S-WRW10/star"]) < _final(d["RW10/star"]) * 1.1
