"""Bench: regenerate Fig. 7 (geosocial category graphs).

Shape claims asserted (paper Section 7.3):

* the estimated country graph shows the geographic affinity the paper
  visualises: edge weight anti-correlates with distance, and
  same-continent pairs dominate the top edges;
* the North America graph reproduces the distance effect at county
  granularity;
* the college graph is estimable from S-WRW10 alone and non-trivial.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import run_fig7


def test_fig7(benchmark, preset):
    results = benchmark.pedantic(
        lambda: run_fig7(preset=preset, rng=0), rounds=1, iterations=1
    )
    for key in ("fig7a", "fig7b", "fig7c"):
        emit(results[key])

    # (a) distance suppresses ties, in the estimate as in the truth.
    assert results["fig7a"].notes["distance_weight_rank_corr"] < -0.1
    assert results["fig7a"].notes["true_corr"] < -0.1

    # (b) the county-level NA graph shows the same effect.
    assert results["fig7b"].notes["distance_weight_rank_corr"] < 0

    # (c) the college graph exists and has weighted edges to publish.
    assert results["fig7c"].notes["edges"] > 0
    assert results["fig7c"].notes["geosocialmap_json_bytes"] > 100

    # Every exported graph carries its full JSON payload (the
    # geosocialmap artifact).
    for key in ("fig7a", "fig7b", "fig7c"):
        headers, rows = results[key].table
        assert len(rows) > 0
