"""Bench: plan-level wall clock — DAG scheduler vs the serial cell loop.

Times whole experiment *plans* (the grids behind Figs. 4/6) end to end
under three execution modes:

* ``serial`` — the in-process serial executor (no workers at all);
* ``loop@process-wN`` — the serial cell loop over the process
  executor: one cell at a time, each parallel internally (the pre-DAG
  behavior, kept in-tree as the scheduler's reference twin);
* ``dag@process-wN`` — the DAG scheduler: resources build concurrently
  ahead of the cell frontier and independent cells overlap on the one
  persistent worker pool.

Every mode must produce byte-identical results (always asserted — this
is the determinism contract at the plan grain); the wall-clock rows are
written to ``BENCH_plans.json`` at the repo root under a per-scale key,
like ``BENCH_walks.json``, so ``REPRO_SCALE=paper`` runs extend the
same trajectory file. Each record self-describes its executor mode,
worker count, scheduler, and the runner's core count.

Timing assertions arm only where parallel hardware exists: on >=2-core
runners at medium+ scale the DAG schedule must not lose to the serial
cell loop (it removes pool spin-up and idle frontier time, so at worst
it ties within noise). Single-core runners record honest rows — the
scheduler cannot manufacture cores — and skip the bar.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments import run_experiment
from repro.runtime import runtime_options
from repro.runtime.pool import reset_default_pools

#: Plans benched: the two experiments whose grids have real DAG width
#: (fig4: four dataset resources x three designs; fig6: five pre-drawn
#: crawl cells over one shared world).
EXPERIMENTS = ("fig4", "fig6")
WORKERS = 2

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_plans.json"


def _results_equal(a, b) -> bool:
    if list(a) != list(b):
        return False
    for rid in a:
        if list(a[rid].series) != list(b[rid].series):
            return False
        for label, (xs, ys) in a[rid].series.items():
            bx, by = b[rid].series[label]
            if not np.array_equal(np.asarray(xs), np.asarray(bx), equal_nan=True):
                return False
            if not np.array_equal(np.asarray(ys), np.asarray(by), equal_nan=True):
                return False
        if a[rid].table != b[rid].table:
            return False
    return True


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _merge_record(scale_name: str, record: dict) -> dict:
    scales: dict = {}
    if _JSON_PATH.exists():
        try:
            existing = json.loads(_JSON_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
        scales = existing.get("scales", {})
    scales[scale_name] = record
    return {
        "description": (
            "plan-level wall clock: DAG scheduler vs serial cell loop "
            "(byte-identical outputs asserted for every row)"
        ),
        "scales": scales,
    }


def test_plan_scheduler_wall_clock(preset, timing_asserts):
    cores = os.cpu_count() or 1
    record = {
        "workload": {
            "experiments": list(EXPERIMENTS),
            "scale": preset.name,
            "workers": WORKERS,
            "cpu_cores": cores,
            "inflight": int(os.environ.get("REPRO_PLAN_INFLIGHT", "2") or 2),
        },
        "plans": {},
    }
    print()
    for experiment in EXPERIMENTS:
        serial_time, serial = _timed(
            lambda: run_experiment(experiment, rng=0, preset=preset)
        )

        def loop_run():
            with runtime_options(
                executor="process", workers=WORKERS, plan_scheduler="serial"
            ):
                return run_experiment(experiment, rng=0, preset=preset)

        def dag_run():
            with runtime_options(
                executor="process", workers=WORKERS, plan_scheduler="dag"
            ):
                return run_experiment(experiment, rng=0, preset=preset)

        # Fresh workers for the loop row, so it pays the spawn cost the
        # pre-DAG per-cell behavior paid; the DAG row then reuses the
        # live pool exactly as a real session would.
        reset_default_pools()
        loop_time, loop = _timed(loop_run)
        dag_time, dag = _timed(dag_run)

        assert _results_equal(serial, loop), (
            f"{experiment}: serial-loop output diverged from serial"
        )
        assert _results_equal(serial, dag), (
            f"{experiment}: DAG output diverged from serial"
        )

        # One extra untimed instrumented DAG run: the per-phase
        # breakdown plus peak-RSS / shared-memory gauges, kept out of
        # the timed rows so recording can never skew wall clock.
        from benchmarks.bench_walks import _telemetry_breakdown

        record["plans"][experiment] = {
            "serial_seconds": round(serial_time, 4),
            f"loop@process-w{WORKERS}_seconds": round(loop_time, 4),
            f"dag@process-w{WORKERS}_seconds": round(dag_time, 4),
            "dag_speedup_vs_loop": round(loop_time / dag_time, 2),
            "telemetry": _telemetry_breakdown(dag_run),
        }
        print(
            f"  {experiment:>6}: serial {serial_time:6.3f}s  "
            f"loop x{WORKERS} {loop_time:6.3f}s  "
            f"dag x{WORKERS} {dag_time:6.3f}s  "
            f"({loop_time / dag_time:.2f}x dag vs loop)"
        )

    _JSON_PATH.write_text(
        json.dumps(_merge_record(preset.name, record), indent=2) + "\n"
    )
    print(f"  -> {_JSON_PATH.name} written ({preset.name} scale)")

    if timing_asserts and cores >= 2 and preset.name != "small":
        for experiment, row in record["plans"].items():
            assert row["dag_speedup_vs_loop"] >= 1.0, (experiment, row)
