"""Bench: regenerate Table 1 (empirical topology statistics)."""

from __future__ import annotations

from conftest import emit

from repro.experiments import run_table1


def test_table1(benchmark, preset):
    result = benchmark.pedantic(
        lambda: run_table1(preset=preset, rng=0), rounds=1, iterations=1
    )
    emit(result)
    headers, rows = result.table
    assert len(rows) == 4
    # Shape claim: every stand-in reproduces the published mean degree
    # within 30% (configuration-model + giant-component losses).
    for row in rows:
        name, _, _, k_paper, _, _, k_ours = row
        assert abs(k_ours - k_paper) / k_paper < 0.30, name
    # Relative densities preserved: texas is the dense one, p2p sparse.
    by_name = {row[0]: row for row in rows}
    assert by_name["facebook_texas"][6] > by_name["facebook_new_orleans"][6]
    assert by_name["p2p"][6] < by_name["epinions"][6]
