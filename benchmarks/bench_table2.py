"""Bench: regenerate Table 2 (Facebook crawl datasets)."""

from __future__ import annotations

from conftest import emit

from repro.experiments import run_table2


def test_table2(benchmark, preset):
    result = benchmark.pedantic(
        lambda: run_table2(preset=preset, rng=0), rounds=1, iterations=1
    )
    emit(result)
    headers, rows = result.table
    fractions = {row[0]: float(row[4].rstrip("%")) for row in rows}
    # Shape claims of Table 2:
    # (1) the 2009 designs all see ~the declared share (34-41% paper).
    for name in ("MHRW09", "RW09", "UIS09"):
        assert 25 <= fractions[name] <= 50, (name, fractions[name])
    # (2) plain RW rarely hits the small college population (9% paper)...
    assert fractions["RW10"] < 15
    # (3) ...while S-WRW oversamples it by an order of magnitude (86%).
    assert fractions["S-WRW10"] > 5 * max(fractions["RW10"], 1.0)
    assert fractions["S-WRW10"] > 50
