"""Bench: batched multi-walker engine + incremental prefix sweeps.

Times the replicated NRMSE sweep (the engine behind Figs. 3, 4, 6) on
the Fig. 3 base substrate, comparing the fast defaults
(``engine="batched"``, ``ladder="incremental"``) against the sequential
reference paths (``engine="sequential"``, ``ladder="subset"`` — the
seed algorithm, kept in-tree for exactly this comparison), for each
walk design: RW, MHRW, RWJ, S-WRW with both next-hop engines (exact
binary search and O(1) alias tables), and the union-CSR multigraph
walk. A subset of designs is additionally swept through the
:mod:`repro.runtime` process executor at several worker counts; every
record self-describes its executor mode and worker count (plus the
runner's core count in the workload), so serial and multi-worker rows
stay comparable across PRs and runners. Results are written to
``BENCH_walks.json`` at the repo root under a per-scale key, so
``REPRO_SCALE=paper`` runs extend the same trajectory file the default
``small`` runs seed (the batched engine's advantage grows with walk
length).

Assertions:

* correctness — fast and reference sweeps are bit-for-bit identical
  (always enforced; the alias engine is bit-identical *to its own
  sequential twin*, its statistical contract vs the binary search lives
  in ``tests/sampling/test_equivalence.py``);
* wall-clock — the batched+incremental sweep beats the in-tree
  sequential reference by a healthy margin (skipped under
  ``--skip-timing-asserts`` / ``REPRO_SKIP_TIMING`` for constrained
  runners).

At PR-1 time on the dev machine, against the *pre-PR seed* (whose
observation pipeline was slower still than today's reference paths),
the R=64, 5-rung small-preset sweep measured: RW 3.28s -> 0.30s
(11.0x), MHRW 3.51s -> 0.34s (10.5x), RWJ 4.06s -> 0.38s (10.8x),
S-WRW 4.70s -> 0.78s (6.0x, bounded by the vectorized binary search of
the weighted kernel). Those figures are recorded in the JSON under
``seed_baseline_at_pr_time``; the multigraph and alias rows have no
seed entry (the seed had no batched path for them at all).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.generators import gnm
from repro.generators.planted import PlantedModelConfig, planted_category_graph
from repro.graph.storage import active_storage_mode
from repro.rng import derive_rng, ensure_rng, spawn_rngs
from repro.sampling import (
    BreadthFirstSampler,
    ForestFireSampler,
    MetropolisHastingsSampler,
    MultigraphRandomWalkSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
)
from repro.sampling.batch import sample_streams
from repro.stats import run_nrmse_sweep

#: Acceptance workload: R >= 64 replicate walks, >= 5 ladder rungs.
REPLICATIONS = 64
REPEATS = 2

#: Designs additionally swept through the repro.runtime process
#: executor, and the worker counts tried (capped by available cores —
#: rows are recorded regardless, but a 1-core runner cannot and is not
#: expected to demonstrate parallel speedup).
EXECUTOR_DESIGNS = ("rw", "swrw-alias")
EXECUTOR_WORKERS = (2, 4)

#: Pre-PR-1 seed timings for the small-preset workload (dev machine).
SEED_BASELINE = {"rw": 3.28, "mhrw": 3.51, "rwj": 4.06, "swrw": 4.70}

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_walks.json"


def _samplers(graph, partition, relation):
    return {
        "rw": RandomWalkSampler(graph),
        "mhrw": MetropolisHastingsSampler(graph),
        "rwj": RandomWalkWithJumpsSampler(graph, alpha=7.0),
        "swrw": StratifiedWeightedWalkSampler(graph, partition),
        "swrw-alias": StratifiedWeightedWalkSampler(
            graph, partition, next_hop="alias"
        ),
        "multigraph": MultigraphRandomWalkSampler([graph, relation]),
    }


def _best_of(fn, repeats=REPEATS):
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _telemetry_breakdown(fn) -> dict:
    """One extra *untimed* instrumented run: per-phase seconds plus the
    peak-RSS and shared-memory gauges. Kept out of the timed repeats so
    recording overhead can never skew a recorded wall-clock figure."""
    from repro.runtime import telemetry_scope

    with telemetry_scope() as recorder:
        fn()
    metrics = recorder.metrics_summary()
    return {
        "phase_seconds": {
            f"{cat}.{name}": row["seconds"]
            for cat, names in sorted(metrics["phases"].items())
            for name, row in sorted(names.items())
        },
        "worker_utilization": {
            pid: row["utilization"]
            for pid, row in sorted(metrics["workers"].items())
        },
        "shm_published_bytes": metrics["counters"]["shm.published_bytes"],
        "shm_peak_pool_bytes": metrics["gauges"].get("shm.peak_pool_bytes", 0),
        "driver_peak_rss_bytes": metrics["gauges"].get("driver_peak_rss_bytes"),
        "worker_peak_rss_bytes": metrics["gauges"].get("worker_peak_rss_bytes"),
    }


def _sweeps_equal(a, b) -> bool:
    for kind in ("induced", "star"):
        for attr in ("size_nrmse", "weight_nrmse", "size_coverage", "weight_coverage"):
            if not np.array_equal(
                getattr(a, attr)[kind], getattr(b, attr)[kind], equal_nan=True
            ):
                return False
    return True


def _merge_record(scale_name: str, record: dict) -> dict:
    """Fold this run into the per-scale trajectory file."""
    scales: dict = {}
    if _JSON_PATH.exists():
        try:
            existing = json.loads(_JSON_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
        if "scales" in existing:
            scales = existing["scales"]
        elif "workload" in existing:
            # Legacy single-record layout (PR 1): keep it under its scale.
            scales[existing["workload"].get("scale", "small")] = {
                "workload": existing.get("workload", {}),
                "designs": existing.get("designs", {}),
            }
    scales[scale_name] = record
    return {"seed_baseline_at_pr_time": SEED_BASELINE, "scales": scales}


def test_batched_sweep_speedup(preset, timing_asserts, monkeypatch):
    config = PlantedModelConfig(k=20, alpha=0.5, scale=preset.planted_scale)
    graph, partition = planted_category_graph(config, rng=derive_rng(0, 3, 4))
    relation = gnm(
        graph.num_nodes, max(graph.num_edges // 4, 1), rng=derive_rng(0, 3, 5)
    )
    sizes = preset.fig3_sample_sizes
    ladder = tuple(s for s in sizes if s <= 3 * graph.num_nodes) or sizes[:5]

    cores = os.cpu_count() or 1
    record = {
        "workload": {
            "replications": REPLICATIONS,
            "ladder": list(ladder),
            "scale": preset.name,
            "graph_nodes": graph.num_nodes,
            "graph_edges": graph.num_edges,
            "relation_edges": relation.num_edges,
            "cpu_cores": cores,
        },
        "designs": {},
    }
    print()
    samplers = _samplers(graph, partition, relation)
    fast_sweeps: dict[str, object] = {}
    for name, sampler in samplers.items():
        # executor="serial" pins the row to in-process execution even
        # when the environment (e.g. CI's REPRO_EXECUTOR=process job)
        # defaults sweeps to the parallel path — rows must match their
        # recorded executor metadata.
        fast_time, fast = _best_of(
            lambda: run_nrmse_sweep(
                graph, partition, sampler, ladder,
                replications=REPLICATIONS, rng=0, executor="serial",
            )
        )
        fast_sweeps[name] = (fast_time, fast)
        ref_time, reference = _best_of(
            lambda: run_nrmse_sweep(
                graph, partition, sampler, ladder,
                replications=REPLICATIONS, rng=0,
                engine="sequential", ladder="subset", executor="serial",
            ),
            repeats=1,
        )
        assert _sweeps_equal(fast, reference), (
            f"{name}: batched+incremental sweep diverged from the "
            "sequential+subset reference"
        )
        speedup = ref_time / fast_time
        record["designs"][name] = {
            # Every entry self-describes how it executed, so rows from
            # serial, multi-worker, and out-of-core runs stay
            # comparable across PRs.
            "executor": {
                "mode": "serial",
                "workers": 1,
                "storage": active_storage_mode(),
            },
            "batched_incremental_seconds": round(fast_time, 4),
            "sequential_subset_seconds": round(ref_time, 4),
            "speedup_vs_reference": round(speedup, 2),
        }
        print(
            f"  {name:>10}: batched {fast_time:6.3f}s  "
            f"sequential-reference {ref_time:6.3f}s  ({speedup:.1f}x)"
        )

    # Multi-worker rows: the same fast sweep through the repro.runtime
    # process executor. Always bit-identical; faster only with cores.
    for name in EXECUTOR_DESIGNS:
        sampler = samplers[name]
        single_time, single = fast_sweeps[name]
        for workers in EXECUTOR_WORKERS:
            par_time, parallel = _best_of(
                lambda: run_nrmse_sweep(
                    graph, partition, sampler, ladder,
                    replications=REPLICATIONS, rng=0,
                    executor="process", workers=workers,
                )
            )
            assert _sweeps_equal(parallel, single), (
                f"{name}: process executor (workers={workers}) diverged "
                "from the single-process sweep"
            )
            speedup = single_time / par_time
            record["designs"][f"{name}@process-w{workers}"] = {
                "executor": {
                    "mode": "process",
                    "workers": workers,
                    "storage": active_storage_mode(),
                },
                "batched_incremental_seconds": round(par_time, 4),
                "single_process_seconds": round(single_time, 4),
                "speedup_vs_single_process": round(speedup, 2),
                "telemetry": _telemetry_breakdown(
                    lambda: run_nrmse_sweep(
                        graph, partition, sampler, ladder,
                        replications=REPLICATIONS, rng=0,
                        executor="process", workers=workers,
                    )
                ),
            }
            print(
                f"  {name:>10}: process x{workers} {par_time:6.3f}s  "
                f"single-process {single_time:6.3f}s  ({speedup:.1f}x)"
            )

    # Traversal baselines: the set-semantics frontier kernels against
    # their per-replicate sequential twins, at the kernel level (no
    # estimator pipeline — the rows measure exactly the vectorization
    # win of repro.sampling.traversal). Bit-equality always asserted.
    traversal_n = graph.num_nodes // 2
    traversal = {
        "bfs": BreadthFirstSampler(graph),
        "forest-fire": ForestFireSampler(graph, forward_prob=0.7),
    }
    # Both sides take best-of: the interpreter twin's wall clock is the
    # noisier of the two (allocator/GC jitter across ~n*R pop loops),
    # and a single noisy run would distort the recorded ratio.
    for name, sampler in traversal.items():
        batched_time, batched = _best_of(
            lambda: sample_streams(
                sampler,
                traversal_n,
                spawn_rngs(ensure_rng(0), REPLICATIONS),
                engine="batched",
            ),
            repeats=2 * REPEATS,
        )
        twin_time, twin = _best_of(
            lambda: sample_streams(
                sampler,
                traversal_n,
                spawn_rngs(ensure_rng(0), REPLICATIONS),
                engine="sequential",
            ),
        )
        assert np.array_equal(batched.nodes, twin.nodes), (
            f"{name}: batched frontier kernel diverged from the "
            "sequential twin"
        )
        speedup = twin_time / batched_time
        record["designs"][name] = {
            "executor": {
                "mode": "serial",
                "workers": 1,
                "storage": active_storage_mode(),
            },
            "kernel": "traversal-frontier",
            "sample_size": traversal_n,
            "batched_kernel_seconds": round(batched_time, 4),
            "sequential_twin_seconds": round(twin_time, 4),
            "speedup_vs_sequential_twin": round(speedup, 2),
        }
        print(
            f"  {name:>11}: batched {batched_time:6.3f}s  "
            f"sequential-twin {twin_time:6.3f}s  ({speedup:.1f}x)"
        )

    # Derived-plane store: S-WRW alias construction (walk cumsums +
    # alias tables) through the manifest-keyed spill path — a cold
    # chunked out-of-core build vs a warm reopen of the committed
    # planes vs the plain in-RAM build. The warm row is the cross-run
    # reuse win: source hashing plus a manifest open instead of the
    # whole derivation.
    import tempfile

    from repro.graph.planes import clear_plane_memo
    from repro.graph.storage import graph_storage

    monkeypatch.setenv("REPRO_PLANE_THRESHOLD", "0")
    ram_time, ram_sampler = _best_of(
        lambda: StratifiedWeightedWalkSampler(graph, partition, next_hop="alias")
    )
    with tempfile.TemporaryDirectory(prefix="bench-planes-") as cache:
        with graph_storage("memmap", directory=cache):

            def build_out_of_core():
                clear_plane_memo()  # always hit disk, never the memo
                return StratifiedWeightedWalkSampler(
                    graph, partition, next_hop="alias"
                )

            start = time.perf_counter()  # single pass: only ever cold once
            cold_sampler = build_out_of_core()
            cold_time = time.perf_counter() - start
            warm_time, warm_sampler = _best_of(build_out_of_core)
        for store_sampler in (cold_sampler, warm_sampler):
            for plane in ("prob", "alias"):
                assert np.array_equal(
                    np.asarray(getattr(store_sampler._alias_tables, plane)),
                    getattr(ram_sampler._alias_tables, plane),
                ), f"plane store diverged from the in-RAM {plane} table"
            assert np.array_equal(
                np.asarray(store_sampler._local_cumulative),
                ram_sampler._local_cumulative,
            ), "plane store diverged from the in-RAM cumsum"
    monkeypatch.delenv("REPRO_PLANE_THRESHOLD")
    record["designs"]["swrw-alias-construction"] = {
        "executor": {"mode": "serial", "workers": 1, "storage": "memmap"},
        "kernel": "derived-plane-store",
        "ram_build_seconds": round(ram_time, 4),
        "cold_store_build_seconds": round(cold_time, 4),
        "warm_store_reopen_seconds": round(warm_time, 4),
        "warm_speedup_vs_cold": round(cold_time / warm_time, 2),
    }
    print(
        f"  alias-construction: ram {ram_time:6.3f}s  cold-store "
        f"{cold_time:6.3f}s  warm-store {warm_time:6.3f}s  "
        f"({cold_time / warm_time:.1f}x warm)"
    )

    _JSON_PATH.write_text(
        json.dumps(_merge_record(preset.name, record), indent=2) + "\n"
    )
    print(f"  -> {_JSON_PATH.name} written ({preset.name} scale)")

    if timing_asserts:
        # The in-tree reference already benefits from the vectorized
        # observation pipeline, so the bar here is lower than the >=10x
        # measured against the true pre-PR-1 seed.
        for name in samplers:
            row = record["designs"][name]
            assert row["speedup_vs_reference"] >= 1.5, (name, row)
        assert record["designs"]["rw"]["speedup_vs_reference"] >= 2.0, record
        # The alias engine must not regress S-WRW: its batched sweep
        # stays within a whisker of (and typically beats) the
        # binary-search kernel's.
        swrw = record["designs"]["swrw"]["batched_incremental_seconds"]
        alias = record["designs"]["swrw-alias"]["batched_incremental_seconds"]
        assert alias <= 1.25 * swrw, record["designs"]
        # Parallel speedup needs parallel hardware and enough work per
        # shard to amortize process startup: assert the >=1.5x bar for
        # 2 workers on the medium/paper presets when >=2 cores exist.
        if cores >= 2 and preset.name != "small":
            for name in EXECUTOR_DESIGNS:
                row = record["designs"][f"{name}@process-w2"]
                assert row["speedup_vs_single_process"] >= 1.5, (name, row)
        # Traversal frontier kernels: a pure NumPy-vs-interpreter win,
        # demonstrable even on a 1-core runner.
        for name in traversal:
            row = record["designs"][name]
            assert row["speedup_vs_sequential_twin"] >= 3.0, (name, row)
        # Derived-plane store: a warm manifest-keyed reopen skips the
        # whole derivation, so it must beat the cold chunked build.
        row = record["designs"]["swrw-alias-construction"]
        assert (
            row["warm_store_reopen_seconds"] < row["cold_store_build_seconds"]
        ), row
