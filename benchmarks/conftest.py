"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper at the scale
selected by ``REPRO_SCALE`` (default ``small``; set ``paper`` for the
full-size runs) and prints the regenerated rows/series in paper layout.
Benches also *assert the shape claims* of the paper (who wins, by
roughly what factor), so a regression in estimator quality fails the
suite, not just the timings.
"""

from __future__ import annotations

import pytest

from repro.experiments import active_preset


@pytest.fixture(scope="session")
def preset():
    """The active scale preset (REPRO_SCALE env var)."""
    return active_preset()


def emit(result) -> None:
    """Print one experiment result in paper layout."""
    print()
    print(result.render())
