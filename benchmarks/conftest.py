"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper at the scale
selected by ``REPRO_SCALE`` (default ``small``; set ``paper`` for the
full-size runs) and prints the regenerated rows/series in paper layout.
Benches also *assert the shape claims* of the paper (who wins, by
roughly what factor), so a regression in estimator quality fails the
suite, not just the timings.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import active_preset


def pytest_addoption(parser):
    parser.addoption(
        "--skip-timing-asserts",
        action="store_true",
        default=False,
        help=(
            "skip wall-clock speedup assertions (for constrained or "
            "noisy runners); shape/quality assertions still run"
        ),
    )


@pytest.fixture(scope="session")
def preset():
    """The active scale preset (REPRO_SCALE env var)."""
    return active_preset()


@pytest.fixture(scope="session")
def timing_asserts(request) -> bool:
    """Whether wall-clock assertions should be enforced.

    Disabled by ``--skip-timing-asserts`` or ``REPRO_SKIP_TIMING=1``;
    timings are still measured and recorded either way.
    """
    if request.config.getoption("--skip-timing-asserts"):
        return False
    flag = os.environ.get("REPRO_SKIP_TIMING", "").strip().lower()
    return flag in ("", "0", "false", "no")


def emit(result) -> None:
    """Print one experiment result in paper layout."""
    print()
    print(result.render())
