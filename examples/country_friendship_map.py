"""Build a "world according to Facebook" country friendship map.

Reproduces the Section 7.3 workflow end to end on the synthetic
Facebook world: simulate the paper's five crawl collections (Table 2),
estimate the country-to-country category graph with the paper's exact
recipe (UIS-induced sizes feeding star weight estimators, averaged over
crawl types), verify the geography signal, and export the
geosocialmap-style JSON.

Run:  python examples/country_friendship_map.py [output.json]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.facebook import (
    FacebookModelConfig,
    build_facebook_world,
    category_sample_fraction,
    country_partition,
    distance_weight_correlation,
    estimate_country_graph,
    simulate_crawl_datasets,
)
from repro.graph import category_graph_to_json, true_category_graph


def main() -> None:
    # A ~15k-user world: 36 countries, US/CA with county-level regions,
    # heavy-tailed degrees, geography-biased friendships.
    world = build_facebook_world(FacebookModelConfig(scale=4), rng=0)
    print(f"world: {world.graph.num_nodes} users, "
          f"{world.graph.num_edges} friendships, "
          f"{world.regions_2009.num_categories - 1} regions")

    # The five Table 2 crawl datasets (scaled walk lengths).
    datasets = simulate_crawl_datasets(
        world, samples_per_walk=3000, num_walks_2009=8, num_walks_2010=8, rng=1
    )
    for name, dataset in datasets.items():
        frac = category_sample_fraction(world, dataset)
        print(f"  {name:>8}: {dataset.num_walks} x "
              f"{dataset.samples_per_walk} draws, "
              f"{frac:.0%} with category")

    # Estimate the country graph exactly as the paper does (Sec. 7.3.1).
    estimate = estimate_country_graph(world, datasets)
    truth = true_category_graph(world.graph, country_partition(world))

    print("\nstrongest estimated country links:")
    for a, b, w in estimate.top_edges(10):
        ia, ib = truth.names.index(a), truth.names.index(b)
        true_w = truth.weights[ia, ib]
        print(f"  {a:>10} -- {b:<10} w_hat = {w:.2e}  (true {true_w:.2e})")

    # The Fig. 7 shape claim: distance suppresses friendship.
    positions = _country_positions(world, estimate.names)
    corr = distance_weight_correlation(world, estimate, positions)
    print(f"\ndistance vs weight rank correlation: {corr:+.2f} "
          "(negative = nearby countries are more connected)")

    # Terminal rendering of the map: geography-ordered weight heatmap —
    # the continental blocks of Fig. 7(a) appear along the diagonal.
    from repro.viz import weight_heatmap

    order = np.argsort(np.nan_to_num(positions, nan=np.inf))
    print("\nestimated country-to-country weight matrix:")
    print(weight_heatmap(estimate, order=order, max_categories=30))

    output = sys.argv[1] if len(sys.argv) > 1 else "country_map.json"
    payload = category_graph_to_json(estimate)
    with open(output, "w") as handle:
        handle.write(payload)
    print(f"\nwrote geosocialmap-style JSON to {output} "
          f"({len(payload)} bytes)")


def _country_positions(world, names) -> np.ndarray:
    positions = np.full(len(names), np.nan)
    first = {}
    for r, country in enumerate(world.region_country):
        code = world.country_names[country]
        first.setdefault(code, float(world.region_position[r]))
    for i, name in enumerate(names):
        if name in first:
            positions[i] = first[name]
    return positions


if __name__ == "__main__":
    main()
