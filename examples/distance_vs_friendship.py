"""Does distance kill friendship? A gravity model on sampled data.

The paper's Section 9 sketches the follow-up this example runs in full:
estimate a country-to-country category graph *from crawls*, then fit a
log-linear gravity model ``log w(A,B) = b0 + b1 * distance(A,B)`` on the
estimated weights, test the distance coefficient with a permutation
test, and use the fitted model to predict mixing rates for category
pairs the crawl never observed.

Run:  python examples/distance_vs_friendship.py
"""

from __future__ import annotations

import numpy as np

from repro.facebook import (
    FacebookModelConfig,
    build_facebook_world,
    country_partition,
    estimate_country_graph,
    simulate_crawl_datasets,
)
from repro.graph import true_category_graph
from repro.models import fit_gravity_model, pair_distance_feature


def main() -> None:
    world = build_facebook_world(FacebookModelConfig(scale=6), rng=0)
    datasets = simulate_crawl_datasets(
        world, samples_per_walk=2500, num_walks_2009=8, num_walks_2010=2, rng=1
    )
    estimate = estimate_country_graph(world, datasets)
    print(f"estimated country graph: {estimate.num_categories} countries, "
          f"{estimate.num_edges()} weighted edges")

    # Geo positions per country (the model's 1-D geography axis).
    positions = _country_positions(world, estimate.names)
    distance = pair_distance_feature(positions)

    fit = fit_gravity_model(
        estimate, {"distance": distance}, permutations=500, rng=2
    )
    print("\ngravity model on ESTIMATED weights:")
    print(fit.summary())

    truth = true_category_graph(world.graph, country_partition(world))
    fit_truth = fit_gravity_model(
        truth, {"distance": distance}, permutations=0
    )
    print("\nsame model on TRUE weights (oracle):")
    print(fit_truth.summary())
    attenuation = fit.slope("distance") / fit_truth.slope("distance")
    print(f"\nslope recovery: {attenuation:.0%} of the oracle slope "
          "(measurement noise attenuates toward zero)")

    # Ex ante prediction: mixing rates at given distances.
    grid = np.array([[0.0], [5.0], [25.0], [100.0]])
    predicted = fit.predict(grid)
    print("\npredicted mixing rate by distance (estimated model):")
    for (d,), w in zip(grid, predicted):
        print(f"  distance {d:>5.0f}: w = {w:.2e}")


def _country_positions(world, names) -> np.ndarray:
    positions = np.full(len(names), np.nan)
    first: dict[str, float] = {}
    for r, country in enumerate(world.region_country):
        code = world.country_names[country]
        first.setdefault(code, float(world.region_position[r]))
    for i, name in enumerate(names):
        positions[i] = first.get(name, 0.0)
    return positions


if __name__ == "__main__":
    main()
