"""Quickstart: estimate a category graph from a random-walk crawl.

The 60-second tour of the library:

1. build a graph whose nodes carry categories (here: the paper's
   synthetic model of Section 6.2.1, scaled to run in seconds);
2. crawl it with a simple random walk (the only design that works on
   most real online networks);
3. observe the crawl under *star* sampling (each sampled node reveals
   its neighbors' categories — what HTML scraping gives you);
4. estimate category sizes and inter-category connection probabilities
   with the paper's weighted estimators;
5. compare against the exact truth, which the estimators never saw.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RandomWalkSampler,
    estimate_category_graph,
    observe_star,
    planted_category_graph,
    true_category_graph,
)


def main() -> None:
    # 1. A graph with 10 categories (sizes ~22..2500 at this scale).
    graph, partition = planted_category_graph(k=12, alpha=0.5, scale=20, rng=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{partition.num_categories} categories")

    # 2. Crawl: a 20 000-step random walk from a random start.
    walk = RandomWalkSampler(graph).sample(20_000, rng=1)
    print(f"crawl: {walk.size} draws, {walk.num_distinct()} distinct nodes")

    # 3. Star measurement: categories of sampled nodes AND their neighbors.
    observation = observe_star(graph, partition, walk)

    # 4. One call estimates sizes, weights, and (if omitted) N itself.
    estimate = estimate_category_graph(
        observation, population_size=graph.num_nodes
    )

    # 5. Score against the exact category graph.
    truth = true_category_graph(graph, partition)
    print(f"\n{'category':>12} {'true |A|':>10} {'est |A|':>10} {'err':>7}")
    for i, name in enumerate(truth.names):
        true_size = truth.sizes[i]
        est_size = estimate.sizes[i]
        err = abs(est_size - true_size) / true_size
        print(f"{name:>12} {true_size:>10.0f} {est_size:>10.1f} {err:>6.1%}")

    true_w = truth.weights
    est_w = estimate.weights
    mask = np.isfinite(true_w) & (true_w > 0) & np.isfinite(est_w)
    rel = np.abs(est_w[mask] - true_w[mask]) / true_w[mask]
    print(f"\nedge weights: median relative error "
          f"{np.median(rel):.1%} over {mask.sum() // 2} category pairs")
    print("strongest estimated links:")
    for a, b, w in estimate.top_edges(3):
        print(f"  {a} -- {b}: w = {w:.2e} (true {truth.weight(a, b):.2e})")


if __name__ == "__main__":
    main()
