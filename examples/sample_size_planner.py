"""Sample-size planner: how many draws does your measurement need?

A practitioner workflow built on the library's bootstrap machinery
(Section 5.3.2 of the paper): given one pilot crawl, (i) diagnose walk
convergence, (ii) bootstrap confidence intervals for every category
size and for selected edge weights, (iii) extrapolate how the error
shrinks with budget using the 1/sqrt(|S|) convergence the consistency
theory guarantees, and (iv) recommend a budget for a target precision.

Run:  python examples/sample_size_planner.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    bootstrap_estimate,
    estimate_category_sizes,
    estimate_population_size,
)
from repro.generators import planted_category_graph
from repro.sampling import (
    RandomWalkSampler,
    effective_sample_size,
    geweke_z,
    observe_star,
    recommend_thinning,
)

TARGET_CV = 0.10  # want +-10% (1 sigma) on every reported size


def main() -> None:
    graph, partition = planted_category_graph(k=12, alpha=0.5, scale=20, rng=0)
    pilot_budget = 5000
    walk = RandomWalkSampler(graph).sample(pilot_budget, rng=1)
    print(f"pilot crawl: {walk.size} draws on a {graph.num_nodes}-node graph")

    # --- 1. convergence diagnostics on the degree series ---------------
    degrees = walk.weights
    z = geweke_z(degrees)
    ess = effective_sample_size(degrees)
    thin = recommend_thinning(degrees)
    print("\nwalk diagnostics (visited-degree series):")
    print(f"  geweke z       : {z:+.2f}  (|z| < 2 is consistent with mixing)")
    print(f"  effective size : {ess:.0f} of {walk.size} draws")
    print(f"  thinning hint  : keep every {thin}th draw to decorrelate")

    # --- 2. bootstrap the size estimates -------------------------------
    observation = observe_star(graph, partition, walk)
    n_hat = estimate_population_size(observation, min_gap=5)
    print(f"\npopulation size: N_hat = {n_hat:.0f} (true {graph.num_nodes})")

    result = bootstrap_estimate(
        observation,
        lambda obs: estimate_category_sizes(obs, population_size=n_hat),
        replications=200,
        rng=2,
    )
    cv = result.coefficient_of_variation()
    print(f"\n{'category':>12} {'size_hat':>9} {'95% CI':>19} {'CV':>6}")
    for i, name in enumerate(partition.names):
        print(
            f"{name:>12} {result.mean[i]:>9.0f} "
            f"[{result.ci_low[i]:>7.0f}, {result.ci_high[i]:>7.0f}] "
            f"{cv[i]:>6.2f}"
        )

    # --- 3. budget recommendation --------------------------------------
    # Design-based errors shrink ~ 1/sqrt(|S|) (consistency, Appendix),
    # so budget scales with (cv / target)^2.
    worst = np.nanmax(cv)
    factor = (worst / TARGET_CV) ** 2
    recommended = int(np.ceil(pilot_budget * factor))
    print(
        f"\nworst category CV is {worst:.2f}; for a target of {TARGET_CV:.2f} "
        f"plan ~{recommended} draws ({factor:.1f}x the pilot)."
    )


if __name__ == "__main__":
    main()
