"""Sampler shootout: which crawl design estimates a category graph best?

Compares UIS, RW, MHRW, RW-with-jumps, S-WRW, and the (biased!) BFS
baseline at an equal sample budget on an empirical-style graph with
community categories — the Section 6.3 setting. Prints median NRMSE for
category sizes and edge weights, induced vs star, reproducing the
paper's sampler ordering and the warning about traversal baselines.

Each sweep draws its replicates through the batched multi-walker engine
(``sampler.sample_many`` / ``repro.sampling.batch``): all replicate
walks advance as one vectorized frontier, bit-for-bit equivalent to
sequential per-replicate crawls but an order of magnitude faster. The
size ladder is resolved with incremental prefix aggregates
(``repro.stats.prefix``) instead of per-rung re-subsetting.

Run:  python examples/sampler_shootout.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset, worst_case_categories
from repro.sampling import (
    BreadthFirstSampler,
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    StratifiedWeightedWalkSampler,
    UniformIndependenceSampler,
)
from repro.stats import run_nrmse_sweep

BUDGET = 2000
REPLICATIONS = 8


def main() -> None:
    graph, spec = load_dataset("facebook_new_orleans", scale=15, rng=0)
    partition = worst_case_categories(graph, top=12, rng=0)
    print(f"graph: {spec.description}")
    print(f"  scaled to {graph.num_nodes} nodes / {graph.num_edges} edges; "
          f"{partition.num_categories} community categories")
    print(f"  budget: {BUDGET} draws x {REPLICATIONS} replications\n")

    # Sampler instances go straight into run_nrmse_sweep: the batched
    # engine replicates them across independent RNG streams itself.
    samplers = {
        "UIS": UniformIndependenceSampler(graph),
        "RW": RandomWalkSampler(graph),
        "MHRW": MetropolisHastingsSampler(graph),
        "RW+jumps": RandomWalkWithJumpsSampler(graph, alpha=5.0),
        "S-WRW": StratifiedWeightedWalkSampler(graph, partition),
        "BFS (biased)": BreadthFirstSampler(graph),
    }
    header = (f"{'sampler':>14} {'size/induced':>13} {'size/star':>10} "
              f"{'w/induced':>10} {'w/star':>8}")
    print(header)
    print("-" * len(header))
    for name, sampler in samplers.items():
        sweep = run_nrmse_sweep(
            graph, partition, sampler, (BUDGET,),
            replications=REPLICATIONS, rng=1,
        )
        row = (
            sweep.median_size_nrmse("induced")[0],
            sweep.median_size_nrmse("star")[0],
            sweep.median_weight_nrmse("induced")[0],
            sweep.median_weight_nrmse("star")[0],
        )
        print(f"{name:>14} " + " ".join(
            f"{v:>{w}.3f}" for v, w in zip(row, (13, 10, 10, 8))
        ))
    print(
        "\nreading guide: star columns should dominate induced ones for"
        "\nweights (the paper's 5-10x sample-efficiency gap); BFS has no"
        "\nvalid inclusion probabilities, so its rows illustrate the bias"
        "\nthe paper's Section 8 warns about."
    )


if __name__ == "__main__":
    main()
