"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``. This file exists so
that environments without the ``wheel`` package (where pip's PEP 517
editable installs fail with "invalid command 'bdist_wheel'") can still
do ``python setup.py develop``.
"""

from setuptools import setup

setup()
