"""repro — reproduction of "Coarse-Grained Topology Estimation via Graph
Sampling" (Kurant, Gjoka, Wang, Almquist, Butts, Markopoulou).

The library estimates the *category graph* of a large network — category
sizes and inter-category connection probabilities (Eq. 3 of the paper) —
from a probability sample of nodes, under induced-subgraph or star
measurement and uniform or weighted (random-walk) sampling designs.

Quickstart::

    from repro import (
        planted_category_graph, UniformIndependenceSampler,
        observe_star, estimate_category_graph, true_category_graph,
    )

    graph, partition = planted_category_graph(rng=0)
    sampler = UniformIndependenceSampler(graph)
    sample = sampler.sample(2000, rng=1)
    observation = observe_star(graph, partition, sample)
    estimate = estimate_category_graph(observation)
    truth = true_category_graph(graph, partition)

Subpackages
-----------
``repro.graph``       CSR graph container, partitions, category graphs.
``repro.generators``  Synthetic graphs, incl. the paper's Section 6.2.1 model.
``repro.sampling``    UIS/WIS/RW/MHRW/S-WRW samplers and the two
                      measurement scenarios (induced, star).
``repro.core``        The paper's estimators (Eqs. 4-16) — the primary
                      contribution.
``repro.community``   Leading-eigenvector communities (Section 6.3 categories).
``repro.datasets``    Stand-ins for the paper's Table 1 empirical graphs.
``repro.facebook``    Synthetic Facebook substrate for Section 7.
``repro.stats``       NRMSE and replication harnesses.
``repro.experiments`` Drivers that regenerate every table and figure.
"""

from repro._version import __version__
from repro.exceptions import (
    EstimationError,
    ExperimentError,
    GenerationError,
    GraphError,
    PartitionError,
    ReproError,
    SamplingError,
)
from repro.graph import (
    CategoryGraph,
    CategoryPartition,
    Graph,
    GraphBuilder,
    true_category_graph,
)

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "PartitionError",
    "SamplingError",
    "EstimationError",
    "GenerationError",
    "ExperimentError",
    # graph substrate
    "Graph",
    "GraphBuilder",
    "CategoryPartition",
    "CategoryGraph",
    "true_category_graph",
    # lazily loaded convenience symbols (see __getattr__)
    "planted_category_graph",
    "UniformIndependenceSampler",
    "WeightedIndependenceSampler",
    "RandomWalkSampler",
    "MetropolisHastingsSampler",
    "StratifiedWeightedWalkSampler",
    "observe_induced",
    "observe_star",
    "estimate_category_graph",
    "estimate_category_sizes",
    "estimate_edge_weights",
]

_LAZY_EXPORTS = {
    # generators
    "planted_category_graph": "repro.generators",
    "PlantedModelConfig": "repro.generators",
    # sampling
    "UniformIndependenceSampler": "repro.sampling",
    "WeightedIndependenceSampler": "repro.sampling",
    "RandomWalkSampler": "repro.sampling",
    "MetropolisHastingsSampler": "repro.sampling",
    "StratifiedWeightedWalkSampler": "repro.sampling",
    "observe_induced": "repro.sampling",
    "observe_star": "repro.sampling",
    # core estimators
    "estimate_category_graph": "repro.core",
    "estimate_category_sizes": "repro.core",
    "estimate_edge_weights": "repro.core",
}


def __getattr__(name: str):
    """Lazily re-export the most used symbols from subpackages.

    Keeps ``import repro`` fast while still offering a flat convenience
    namespace (``repro.estimate_category_graph`` etc.).
    """
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
