"""Command-line interface.

Regenerate any table or figure of the paper::

    repro list
    repro run fig3a
    repro run table2 --scale medium --out results/
    repro run fig7 --seed 7

or equivalently ``python -m repro ...``. Every experiment compiles to a
declarative :class:`~repro.experiments.plan.SweepPlan`; ``repro
experiment`` exposes that explicitly — inspect the compiled cell grid,
then run it on the parallel runtime::

    repro experiment fig6 --show-plan
    repro experiment fig6 --workers 8 --checkpoint ckpt/
    repro experiment fig6 --workers 8 --checkpoint ckpt/ --resume

``--workers`` routes every replicated NRMSE sweep — fresh-draw and
pre-drawn crawl cells alike — through the :mod:`repro.runtime` process
executor (bit-identical output, any worker count). Parallel plans run
on the dependency-aware DAG scheduler by default: resources build
concurrently, independent cells overlap on one persistent worker pool,
and ``--scheduler serial`` falls back to the one-cell-at-a-time
reference loop (same bytes either way). ``--checkpoint`` persists each
cell's completed ladder rungs under a plan-keyed directory and
``--resume`` continues a killed run at the first missing cell/rung —
replaying fully-cached cells without rebuilding their substrates.
``repro run`` accepts the same flags (the two commands share the plan
path; ``experiment`` adds ``--show-plan``, which renders the plan's
DAG: resources, cells, and their ``<-`` dependency edges).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.exceptions import ReproError
from repro.experiments import (
    SCALE_PRESETS,
    active_preset,
    experiment_ids,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Coarse-Grained Topology Estimation via Graph "
            "Sampling' (Kurant et al.): regenerate any table or figure."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    report = commands.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--out", type=Path, default=Path("results"), help="output directory"
    )
    report.add_argument(
        "--scale", choices=sorted(SCALE_PRESETS), default=None,
        help="size preset (default: $REPRO_SCALE or 'small')",
    )
    report.add_argument("--seed", type=int, default=0, help="master seed")
    _add_runtime_arguments(report)

    run = commands.add_parser("run", help="run one experiment")
    _add_experiment_arguments(run)

    experiment = commands.add_parser(
        "experiment",
        help="compile one experiment to its SweepPlan and run it",
        description=(
            "Compile an experiment to its declarative SweepPlan (the "
            "grid of sweep/compute cells behind the figure or table) "
            "and execute it on the parallel runtime. With --workers N "
            "every sweep cell shards across N worker processes "
            "(bit-identical to serial); with --checkpoint DIR each "
            "cell persists completed ladder rungs under a plan-keyed "
            "directory, and --resume restarts a killed run at the "
            "first missing cell/rung."
        ),
    )
    _add_experiment_arguments(experiment)
    experiment.add_argument(
        "--show-plan",
        action="store_true",
        help="print the compiled cell grid instead of running it",
    )
    return parser


def _add_experiment_arguments(command: argparse.ArgumentParser) -> None:
    """The shared single-experiment flags (``run`` and ``experiment``)."""
    command.add_argument("experiment", help="experiment id (see 'repro list')")
    command.add_argument(
        "--scale",
        choices=sorted(SCALE_PRESETS),
        default=None,
        help="size preset (default: $REPRO_SCALE or 'small')",
    )
    command.add_argument(
        "--seed", type=int, default=0, help="master random seed (default 0)"
    )
    command.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to save CSV/JSON/text outputs",
    )
    _add_runtime_arguments(command)


def _add_runtime_arguments(command: argparse.ArgumentParser) -> None:
    """The shared sweep-executor flags (see :mod:`repro.runtime`)."""
    command.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run replicated sweeps on N worker processes (bit-identical "
            "to serial; default: in-process serial execution)"
        ),
    )
    command.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "checkpoint root directory; each sweep persists every "
            "completed ladder rung under a manifest-keyed subdirectory"
        ),
    )
    command.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue matching checkpoints instead of restarting them "
            "(requires --checkpoint)"
        ),
    )
    command.add_argument(
        "--scheduler",
        choices=("dag", "serial"),
        default=None,
        help=(
            "how a parallel plan schedules its cells: 'dag' (default; "
            "overlap independent cells on one persistent worker pool) "
            "or 'serial' (the one-cell-at-a-time reference loop). "
            "Output is bit-identical either way."
        ),
    )
    command.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "shard failover budget: attempts tolerated per shard beyond "
            "the first before the run fails with a structured "
            "WorkerFailure (default 2; recovery is byte-identical to an "
            "undisturbed run)"
        ),
    )
    command.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "treat a worker task that sends no heartbeat for SECONDS as "
            "hung and fail it over like a dead worker (default: no "
            "timeout — only worker death triggers failover)"
        ),
    )
    command.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "record runtime telemetry and write a Chrome/Perfetto "
            "trace.json timeline (open at ui.perfetto.dev); never "
            "changes outputs"
        ),
    )
    command.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "record runtime telemetry and write a flat metrics.json "
            "summary (per-phase totals, worker utilization, shm bytes, "
            "failover counts)"
        ),
    )
    command.add_argument(
        "--verbose",
        action="store_true",
        help=(
            "emit repro.* runtime logs to stderr at DEBUG level "
            "(equivalent to REPRO_LOG=DEBUG)"
        ),
    )


def _runtime_scope(args):
    """The runtime configuration implied by the parsed arguments.

    Returns one context manager stacking the executor options and — when
    ``--trace``/``--metrics`` asked for it — a telemetry recording scope.
    Telemetry is observability only: it never changes what the run
    computes, so the scope composes freely with any executor choice.
    """
    from contextlib import ExitStack

    from repro.runtime import runtime_options

    if args.workers is not None and args.workers < 1:
        # Same contract as the REPRO_WORKERS environment knob: reject
        # non-positive counts here with a named error instead of letting
        # them fail confusingly inside the process executor.
        from repro.exceptions import EstimationError

        raise EstimationError(f"--workers must be >= 1, got {args.workers}")
    wants_executor = (
        args.workers is not None or args.checkpoint is not None or args.resume
    )
    tuning = (
        args.scheduler is not None
        or args.max_retries is not None
        or args.task_timeout is not None
    )
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    stack = ExitStack()
    if trace is not None or metrics is not None:
        from repro.runtime.telemetry import telemetry_scope

        stack.enter_context(telemetry_scope(trace=trace, metrics=metrics))
    if wants_executor or tuning:
        stack.enter_context(
            runtime_options(
                # --scheduler/--max-retries/--task-timeout alone must not
                # force the process executor: they only tune a parallel
                # run selected elsewhere (e.g. REPRO_EXECUTOR).
                executor="process" if wants_executor else None,
                workers=args.workers,
                checkpoint=args.checkpoint,
                # absent flag = unset, so ambient/env resume still apply
                resume=True if args.resume else None,
                plan_scheduler=args.scheduler,
                max_retries=args.max_retries,
                task_timeout=args.task_timeout,
            )
        )
    return stack


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.log import configure_logging

    # No-op unless --verbose or REPRO_LOG asked for output: library use
    # of repro never gains a handler behind the caller's back.
    configure_logging(verbose=getattr(args, "verbose", False))
    if getattr(args, "resume", False) and getattr(args, "checkpoint", None) is None:
        # Without a checkpoint root there is nothing to resume from and
        # nothing would be written for the next attempt either.
        parser.error("--resume requires --checkpoint DIR")
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        try:
            preset = active_preset(args.scale)
            with _runtime_scope(args):
                path = generate_report(args.out, preset=preset, rng=args.seed)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"wrote {path}")
        return 0
    # command == "run" | "experiment"
    try:
        preset = active_preset(args.scale)
        if getattr(args, "show_plan", False):
            from repro.experiments import compile_experiment

            plan = compile_experiment(args.experiment, preset=preset, rng=args.seed)
            print(plan.describe())
            return 0
        with _runtime_scope(args):
            results = run_experiment(
                args.experiment, preset=preset, rng=args.seed
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for result in results.values():
        print(result.render())
        print()
        if args.out is not None:
            for path in result.save(args.out):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
