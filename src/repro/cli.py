"""Command-line interface.

Regenerate any table or figure of the paper::

    repro list
    repro run fig3a
    repro run table2 --scale medium --out results/
    repro run fig7 --seed 7

or equivalently ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.exceptions import ReproError
from repro.experiments import (
    SCALE_PRESETS,
    active_preset,
    experiment_ids,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Coarse-Grained Topology Estimation via Graph "
            "Sampling' (Kurant et al.): regenerate any table or figure."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    report = commands.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--out", type=Path, default=Path("results"), help="output directory"
    )
    report.add_argument(
        "--scale", choices=sorted(SCALE_PRESETS), default=None,
        help="size preset (default: $REPRO_SCALE or 'small')",
    )
    report.add_argument("--seed", type=int, default=0, help="master seed")

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see 'repro list')")
    run.add_argument(
        "--scale",
        choices=sorted(SCALE_PRESETS),
        default=None,
        help="size preset (default: $REPRO_SCALE or 'small')",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="master random seed (default 0)"
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to save CSV/JSON/text outputs",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        try:
            preset = active_preset(args.scale)
            path = generate_report(args.out, preset=preset, rng=args.seed)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"wrote {path}")
        return 0
    # command == "run"
    try:
        preset = active_preset(args.scale)
        results = run_experiment(args.experiment, preset=preset, rng=args.seed)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for result in results.values():
        print(result.render())
        print()
        if args.out is not None:
            for path in result.save(args.out):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
