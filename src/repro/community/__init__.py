"""Community detection — categories for the Section 6.3 experiments."""

from repro.community.label_propagation import label_propagation_communities
from repro.community.leading_eigenvector import leading_eigenvector_communities
from repro.community.modularity import modularity

__all__ = [
    "leading_eigenvector_communities",
    "label_propagation_communities",
    "modularity",
]
