"""Asynchronous label propagation — a fast community-detection baseline.

Used in ablations to check that the Fig. 4 conclusions do not hinge on
the specific community algorithm: any category partition aligned with
dense clusters exhibits the same star-vs-induced behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.rng import ensure_rng

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    graph: Graph,
    max_rounds: int = 50,
    rng: "np.random.Generator | int | None" = 0,
) -> CategoryPartition:
    """Communities via asynchronous majority label propagation.

    Every node starts in its own community; nodes (in random order)
    adopt the most frequent label among their neighbors, ties broken
    uniformly at random, until a fixed point or ``max_rounds``.
    """
    if graph.num_nodes == 0:
        raise GraphError("cannot detect communities in an empty graph")
    gen = ensure_rng(rng)
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    order = np.arange(graph.num_nodes)
    for _ in range(max_rounds):
        gen.shuffle(order)
        changed = 0
        for v in order:
            nbrs = indices[indptr[v] : indptr[v + 1]]
            if len(nbrs) == 0:
                continue
            neighbor_labels = labels[nbrs]
            candidates, counts = np.unique(neighbor_labels, return_counts=True)
            best = candidates[counts == counts.max()]
            choice = int(best[gen.integers(0, len(best))])
            if choice != labels[v]:
                labels[v] = choice
                changed += 1
        if changed == 0:
            break
    _, compact = np.unique(labels, return_inverse=True)
    return CategoryPartition(
        compact.astype(np.int64), num_categories=int(compact.max()) + 1
    )
