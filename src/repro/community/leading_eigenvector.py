"""Newman's leading-eigenvector community detection [47 in the paper].

Section 6.3.1 of the paper builds its "worst-case" categories from "a
standard community finding algorithm based on eigenvalues [47] to
identify the 50 largest communities". This module implements that
algorithm from scratch:

* each candidate group is extracted once as a ``scipy.sparse`` CSR
  submatrix, so modularity-matrix products are O(group edges) in C;
* the leading eigenpair of the generalised modularity matrix
  ``B^(g) = A_g - k k^T / 2m - diag(k^int - k vol(g) / 2m)``
  comes from Lanczos (``eigsh``) with a shifted power-iteration
  fallback;
* communities are split by eigenvector sign, refined with a
  Kernighan-Lin style single-node sweep;
* recursion stops when no split yields a positive modularity gain.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.rng import ensure_rng

__all__ = ["leading_eigenvector_communities"]


def leading_eigenvector_communities(
    graph: Graph,
    max_communities: int | None = None,
    min_gain: float = 1e-7,
    refine: bool = True,
    rng: "np.random.Generator | int | None" = 0,
) -> CategoryPartition:
    """Detect communities by recursive spectral bisection of modularity.

    Parameters
    ----------
    graph:
        Undirected graph; isolated nodes each form their own community.
    max_communities:
        Optional cap; recursion stops splitting once reached.
    min_gain:
        Minimum modularity gain for a split to be accepted.
    refine:
        Apply the single-node sweep refinement after each spectral split.
    rng:
        Seed for eigensolver start vectors (deterministic default).

    Returns
    -------
    A :class:`CategoryPartition` with communities indexed ``0..C-1``.
    """
    if graph.num_nodes == 0:
        raise GraphError("cannot detect communities in an empty graph")
    gen = ensure_rng(rng)
    if graph.num_edges == 0:
        return CategoryPartition(
            np.arange(graph.num_nodes, dtype=np.int64),
            num_categories=graph.num_nodes,
        )
    degrees = graph.degrees().astype(float)
    two_m = float(degrees.sum())
    adjacency = _to_scipy(graph)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    queue: list[np.ndarray] = [np.flatnonzero(degrees > 0)]
    next_label = 1
    while queue:
        # Split the largest group first so a max_communities cap keeps
        # the big communities (the paper wants the 50 largest).
        queue.sort(key=len)
        group = queue.pop()
        if len(group) < 2:
            continue
        if max_communities is not None and next_label >= max_communities:
            continue
        split = _split_group(adjacency, group, degrees, two_m, gen, refine)
        if split is None or split[2] < min_gain:
            continue
        side_a, side_b, _gain = split
        labels[side_b] = next_label
        next_label += 1
        queue.append(side_a)
        queue.append(side_b)
    isolated = np.flatnonzero(degrees == 0)
    for v in isolated:
        labels[v] = next_label
        next_label += 1
    _, compact = np.unique(labels, return_inverse=True)
    return CategoryPartition(
        compact.astype(np.int64), num_categories=int(compact.max()) + 1
    )


def _to_scipy(graph: Graph) -> sp.csr_matrix:
    """Zero-copy view of the CSR arrays as a scipy adjacency matrix."""
    n = graph.num_nodes
    data = np.ones(len(graph.indices), dtype=np.float64)
    return sp.csr_matrix(
        (data, np.asarray(graph.indices), np.asarray(graph.indptr)), shape=(n, n)
    )


def _split_group(
    adjacency: sp.csr_matrix,
    group: np.ndarray,
    degrees: np.ndarray,
    two_m: float,
    gen: np.random.Generator,
    refine: bool,
):
    """Try to bisect ``group``; return (side_a, side_b, gain) or None."""
    sub = adjacency[group][:, group].tocsr()
    k_g = degrees[group]
    internal = np.asarray(sub.sum(axis=1)).ravel()
    vol_fraction = k_g.sum() / two_m
    diag_correction = internal - k_g * vol_fraction

    def b_matvec(x: np.ndarray) -> np.ndarray:
        return sub @ x - k_g * (np.dot(k_g, x) / two_m) - diag_correction * x

    operator = spla.LinearOperator(
        (len(group), len(group)), matvec=b_matvec, dtype=np.float64
    )
    vector = _leading_eigenvector(operator, b_matvec, len(group), gen)
    if vector is None:
        return None
    signs = vector >= 0
    if signs.all() or (~signs).all():
        return None
    s = np.where(signs, 1.0, -1.0)
    if refine:
        s = _sweep_refine(b_matvec, s)
        signs = s > 0
        if signs.all() or (~signs).all():
            return None
    ones = np.ones(len(group))
    gain = (
        float(np.dot(s, b_matvec(s))) - float(np.dot(ones, b_matvec(ones)))
    ) / (2.0 * two_m)
    if gain <= 0:
        return None
    return group[signs], group[~signs], gain


def _leading_eigenvector(
    operator: spla.LinearOperator,
    matvec,
    size: int,
    gen: np.random.Generator,
) -> np.ndarray | None:
    """Most-positive eigenpair; Lanczos with a power-iteration fallback."""
    if size > 2:
        start = gen.standard_normal(size)
        try:
            values, vectors = spla.eigsh(
                operator, k=1, which="LA", v0=start, maxiter=max(300, 20 * size),
                tol=1e-6,
            )
            if values[0] > 1e-12:
                return vectors[:, 0]
            return None
        except (spla.ArpackNoConvergence, RuntimeError):
            pass  # fall through to power iteration
    # Shifted power iteration (also handles size == 2).
    probe = np.abs(matvec(np.ones(size))).max() + 1.0
    x = gen.standard_normal(size)
    x /= np.linalg.norm(x)
    for _ in range(800):
        y = matvec(x) + probe * x
        norm = np.linalg.norm(y)
        if norm == 0:
            return None
        y /= norm
        if np.linalg.norm(y - x) < 1e-10:
            x = y
            break
        x = y
    if float(np.dot(x, matvec(x))) > 1e-12:
        return x
    return None


def _sweep_refine(matvec, s: np.ndarray, max_rounds: int = 12) -> np.ndarray:
    """Kernighan-Lin style refinement: greedily flip single nodes."""
    best = s.copy()
    best_value = float(np.dot(best, matvec(best)))
    for _ in range(max_rounds):
        bs = matvec(best)
        gains = -4.0 * best * bs
        candidate = int(np.argmax(gains))
        if gains[candidate] <= 1e-12:
            break
        trial = best.copy()
        trial[candidate] = -trial[candidate]
        trial_value = float(np.dot(trial, matvec(trial)))
        if trial_value <= best_value + 1e-12:
            break
        best, best_value = trial, trial_value
    return best
