"""Newman modularity of a partition.

``Q = sum_A [ e_A / m - (vol(A) / 2m)^2 ]`` where ``e_A`` counts
intra-community edges and ``m = |E|``. Used as the objective of the
leading-eigenvector method and as a quality check in tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.category_graph import cut_matrix
from repro.graph.partition import CategoryPartition

__all__ = ["modularity"]


def modularity(graph: Graph, partition: CategoryPartition) -> float:
    """Modularity ``Q`` of ``partition`` on ``graph`` (in [-0.5, 1])."""
    if graph.num_edges == 0:
        raise GraphError("modularity is undefined for an edgeless graph")
    m = graph.num_edges
    cuts = cut_matrix(graph, partition)
    intra = np.diag(cuts).astype(float)
    volumes = partition.volumes(graph).astype(float)
    return float(np.sum(intra / m - (volumes / (2.0 * m)) ** 2))
