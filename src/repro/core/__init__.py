"""The paper's estimators — the primary contribution.

Size estimators (Eqs. 4, 5, 11, 12), edge-weight estimators (Eqs. 8, 9,
15, 16), the Hansen-Hurwitz machinery that powers the weighted variants
(Eq. 10), collision-based population-size estimation (Section 4.3), and
bootstrap variance (Section 5.3.2).
"""

from repro.core.bootstrap import BootstrapResult, bootstrap_estimate
from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.core.edge_weight import (
    estimate_intra_density,
    estimate_weights_induced,
    estimate_weights_star,
)
from repro.core.estimator import (
    estimate_category_graph,
    estimate_category_sizes,
    estimate_edge_weights,
)
from repro.core.population import (
    count_collisions,
    estimate_population_size,
    estimate_population_size_coupon,
)
from repro.core.variance import induced_size_std, ratio_variance, star_weight_std
from repro.core.weights import hh_ratio, hh_total, reweighted_count

__all__ = [
    "estimate_sizes_induced",
    "estimate_sizes_star",
    "estimate_weights_induced",
    "estimate_weights_star",
    "estimate_intra_density",
    "estimate_category_sizes",
    "estimate_edge_weights",
    "estimate_category_graph",
    "estimate_population_size",
    "estimate_population_size_coupon",
    "count_collisions",
    "bootstrap_estimate",
    "BootstrapResult",
    "hh_total",
    "ratio_variance",
    "induced_size_std",
    "star_weight_std",
    "hh_ratio",
    "reweighted_count",
]
