"""Bootstrap variance estimation for the category-graph estimators.

Section 5.3.2 of the paper recommends choosing the size-estimator
plug-in for Eq. (16) by comparing variances "estimated, e.g., using
bootstrapping [9]". This module provides that machinery: resample the
draw list with replacement, re-run any estimator, and summarise the
spread.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.rng import ensure_rng

__all__ = ["BootstrapResult", "bootstrap_estimate"]


@dataclass(frozen=True)
class BootstrapResult:
    """Summary of a bootstrap run.

    All arrays share the shape of the estimator's output; entries are
    ``nan`` where fewer than two replicates produced finite values.
    """

    mean: np.ndarray
    std: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray
    replications: int

    def coefficient_of_variation(self) -> np.ndarray:
        """``std / |mean|`` — the scale-free spread used for plug-in choice."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.mean != 0, self.std / np.abs(self.mean), np.nan)


def bootstrap_estimate(
    observation,
    estimator: Callable[..., np.ndarray],
    replications: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | int | None = None,
) -> BootstrapResult:
    """Bootstrap any observation-based estimator.

    Parameters
    ----------
    observation:
        An :class:`InducedObservation` or :class:`StarObservation`.
    estimator:
        Callable mapping an observation to a float array (wrap extra
        arguments with ``functools.partial`` or a lambda).
    replications:
        Number of bootstrap resamples of the draw list.
    confidence:
        Central coverage of the percentile interval.

    Notes
    -----
    Draws are resampled i.i.d., which is the paper's reference scheme;
    for strongly autocorrelated crawls a block bootstrap would be more
    faithful — left as a documented extension (the experiments use
    replicate *walks* for variance instead, as does the paper in Sec. 7).
    """
    if replications < 2:
        raise EstimationError(f"need at least 2 replications, got {replications}")
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    gen = ensure_rng(rng)
    n = observation.num_draws
    outputs: list[np.ndarray] = []
    for _ in range(replications):
        draw_indices = gen.integers(0, n, size=n)
        resampled = observation.subset_draws(draw_indices)
        outputs.append(np.asarray(estimator(resampled), dtype=float))
    stacked = np.stack(outputs)
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(stacked, axis=0)
        std = np.nanstd(stacked, axis=0, ddof=1)
        tail = (1.0 - confidence) / 2.0
        ci_low = np.nanpercentile(stacked, 100 * tail, axis=0)
        ci_high = np.nanpercentile(stacked, 100 * (1 - tail), axis=0)
    return BootstrapResult(
        mean=mean, std=std, ci_low=ci_low, ci_high=ci_high, replications=replications
    )
