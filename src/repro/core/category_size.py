"""Category-size estimators ``|A|`` (Sections 4.1 and 5.2 of the paper).

Two families, each in a uniform and a weight-corrected variant:

* **Induced** — Eq. (4) uniform, Eq. (11) weighted: scale the
  (reweighted) fraction of draws landing in ``A`` by the population
  size ``N``. Under a uniform design the weights are all 1 and Eq. (11)
  reduces exactly to Eq. (4), so one implementation covers both.

* **Star** — Eq. (5) uniform, Eq. (12) weighted:
  ``|A| = N * f_vol(A) * k_V / k_A``, built from the relative-volume
  estimator of Eq. (7)/(13) and the mean-degree estimators of
  Eq. (6)/(14). The star variant exploits the neighbor categories of
  sampled nodes, which the paper shows is a large win in dense graphs.

The paper's footnote 4 suggests a model-based variant that substitutes
``k_A := k_V`` to tame the variance of ``k_A`` under skewed degrees (at
the price of bias); exposed here as ``mean_degree_model="global"``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.sampling.observation import StarObservation, _ObservationBase

__all__ = ["estimate_sizes_induced", "estimate_sizes_star"]


def estimate_sizes_induced(
    observation: _ObservationBase, population_size: float
) -> np.ndarray:
    """Eq. (4)/(11): ``|A| = N * w^{-1}(S_A) / w^{-1}(S)``.

    Works on induced *and* star observations (star reveals a superset of
    the needed information). Returns one estimate per category; a
    category with no draws estimates 0 (consistently with the paper's
    counting estimator).
    """
    _check_population(population_size)
    per_category = observation.reweighted_sizes()
    total = per_category.sum()
    if total <= 0:
        raise EstimationError("sample has no usable draws")
    return population_size * per_category / total


def estimate_sizes_star(
    observation: StarObservation,
    population_size: float,
    mean_degree_model: str = "per-category",
) -> np.ndarray:
    """Eq. (5)/(12): ``|A| = N * f_vol(A) * k_V / k_A``.

    Parameters
    ----------
    observation:
        A star observation (the estimator needs neighbor categories and
        degrees; passing an induced observation raises).
    population_size:
        ``N`` (known or separately estimated; see
        :func:`repro.core.population.estimate_population_size`).
    mean_degree_model:
        ``"per-category"`` (paper default) estimates ``k_A`` from the
        draws in ``A`` (Eq. 6/14); ``"global"`` is the footnote-4
        variant ``k_A := k_V``, which has lower variance under skewed
        degrees — and can even estimate categories with *zero* draws —
        at the cost of bias when category mean degrees differ.

    Returns
    -------
    One estimate per category. ``nan`` where the estimator is undefined
    (no draws in ``A`` under the per-category model).
    """
    if not isinstance(observation, StarObservation):
        raise EstimationError(
            "the star size estimator (Eq. 5/12) requires a StarObservation; "
            "use estimate_sizes_induced for induced measurements"
        )
    _check_population(population_size)

    # Weighted degree totals: sum_{v in S_A} deg(v) / w(v), per category
    # (the numerators of Eq. 14), plus the reweighted draw counts.
    degree_totals = observation.degree_totals(weighted=True)
    reweighted = observation.reweighted_sizes()
    total_degree = degree_totals.sum()
    total_reweighted = reweighted.sum()
    if total_reweighted <= 0:
        raise EstimationError("sample has no usable draws")
    if total_degree <= 0:
        # Every sampled node is isolated: the volume-based estimator is
        # undefined (vol(S) = 0). Signal with nan rather than raising —
        # a real crawl cannot even reach this state.
        return np.full(observation.num_categories, np.nan)

    # Eq. (14): k_V and per-category k_A.
    k_global = total_degree / total_reweighted
    with np.errstate(invalid="ignore", divide="ignore"):
        k_per_category = np.where(
            reweighted > 0, degree_totals / reweighted, np.nan
        )

    # Eq. (13): f_vol(A) = [sum_s count_A(s)/w(s)] / [sum_s deg(s)/w(s)].
    neighbor_matrix = observation.neighbor_category_matrix(weighted=True)
    f_vol = neighbor_matrix.sum(axis=0) / total_degree

    if mean_degree_model == "per-category":
        k_a = k_per_category
    elif mean_degree_model == "global":
        k_a = np.full(observation.num_categories, k_global)
    else:
        raise EstimationError(
            f"unknown mean_degree_model {mean_degree_model!r}; "
            "use 'per-category' or 'global'"
        )
    with np.errstate(invalid="ignore", divide="ignore"):
        return population_size * f_vol * k_global / k_a


def _check_population(population_size: float) -> None:
    if not np.isfinite(population_size) or population_size <= 0:
        raise EstimationError(
            f"population_size must be a positive number, got {population_size}"
        )
