"""Edge-weight estimators ``w(A, B)`` (Sections 4.2 and 5.3 of the paper).

The target is Eq. (3): the fraction of realised edges in the maximal
possible cut between two categories. Both estimators divide *observed*
edges by the *maximal number observable*:

* **Induced** — Eq. (8) uniform, Eq. (15) weighted: edges among the
  sampled members of ``A`` and ``B``, out of ``|S_A| * |S_B|``
  (reweighted in the WIS case).

* **Star** — Eq. (9) uniform, Eq. (16) weighted: *all* edges from the
  sampled members of either category toward the other (neighbors need
  not be sampled), out of ``|S_A| * |B| + |S_B| * |A|`` — which requires
  category-size estimates (or truth) as a plug-in. This is the paper's
  headline win: 5-10x fewer samples than induced for equal accuracy.

Both return full symmetric ``(C, C)`` matrices with ``nan`` diagonals.
As an extension (not in the paper, which excludes self-loops), the
intra-category edge *density* is available via
:func:`estimate_intra_density`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.sampling.observation import InducedObservation, StarObservation

__all__ = [
    "estimate_weights_induced",
    "estimate_weights_star",
    "estimate_intra_density",
]


def estimate_weights_induced(observation: InducedObservation) -> np.ndarray:
    """Eq. (8)/(15): induced-subgraph edge-weight estimates.

    Under a uniform design the weights are 1 and the weighted formula
    reduces exactly to Eq. (8). Pairs of categories with no draws in
    either side get ``nan``.
    """
    if not isinstance(observation, InducedObservation):
        raise EstimationError(
            "estimate_weights_induced requires an InducedObservation; "
            "star observations carry more information — use "
            "estimate_weights_star"
        )
    c = observation.num_categories
    numerator = np.zeros((c, c))
    edges = observation.induced_edges
    if len(edges):
        cats_i = observation.distinct_categories[edges[:, 0]]
        cats_j = observation.distinct_categories[edges[:, 1]]
        contributions = (
            observation.distinct_multiplicities[edges[:, 0]]
            / observation.distinct_weights[edges[:, 0]]
        ) * (
            observation.distinct_multiplicities[edges[:, 1]]
            / observation.distinct_weights[edges[:, 1]]
        )
        # One in-order histogram over both edge directions (bit-equal to
        # sequential scatter-add, ~10x faster than np.add.at).
        numerator = np.bincount(
            np.concatenate(
                (cats_i * np.int64(c) + cats_j, cats_j * np.int64(c) + cats_i)
            ),
            weights=np.concatenate((contributions, contributions)),
            minlength=c * c,
        ).reshape(c, c)
    reweighted = observation.reweighted_sizes()
    denominator = np.outer(reweighted, reweighted)
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(denominator > 0, numerator / denominator, np.nan)
    np.fill_diagonal(weights, np.nan)
    return weights


def estimate_weights_star(
    observation: StarObservation, category_sizes: np.ndarray
) -> np.ndarray:
    """Eq. (9)/(16): star edge-weight estimates.

    Parameters
    ----------
    observation:
        A star observation.
    category_sizes:
        Plug-in ``|A|`` values, shape ``(C,)`` — true sizes or estimates
        from either size estimator (the paper recommends whichever has
        the smaller variance for the application; Section 5.3.2).

    Notes
    -----
    The numerator for the pair (A, B) is
    ``sum_{a in S_A} |E_{a,B}| / w(a) + sum_{b in S_B} |E_{b,A}| / w(b)``
    and the denominator ``w^{-1}(S_A) |B| + w^{-1}(S_B) |A|``; with unit
    weights this is literally Eq. (9).
    """
    if not isinstance(observation, StarObservation):
        raise EstimationError(
            "estimate_weights_star requires a StarObservation; induced "
            "measurements lack neighbor categories — use "
            "estimate_weights_induced"
        )
    c = observation.num_categories
    category_sizes = np.asarray(category_sizes, dtype=float)
    if category_sizes.shape != (c,):
        raise EstimationError(
            f"category_sizes must have shape ({c},), got {category_sizes.shape}"
        )
    cross = observation.neighbor_category_matrix(weighted=True)
    numerator = cross + cross.T
    reweighted = observation.reweighted_sizes()
    denominator = np.outer(reweighted, category_sizes) + np.outer(
        category_sizes, reweighted
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(denominator > 0, numerator / denominator, np.nan)
    np.fill_diagonal(weights, np.nan)
    return weights


def estimate_intra_density(observation: InducedObservation) -> np.ndarray:
    """Extension: intra-category edge density per category.

    Estimates ``|E_{A,A}| / (|A| choose 2)`` — the within-category
    analogue of Eq. (3), which the paper's category graph deliberately
    excludes (no self-loops). Useful for block-model style analyses.
    Ordered draw pairs of the same category are the denominator
    (``w^{-1}(S_A)^2``, matching the cross-pair convention), with the
    numerator doubled since each intra edge realises two ordered pairs.
    """
    if not isinstance(observation, InducedObservation):
        raise EstimationError("estimate_intra_density requires an InducedObservation")
    c = observation.num_categories
    numerator = np.zeros(c)
    edges = observation.induced_edges
    if len(edges):
        cats_i = observation.distinct_categories[edges[:, 0]]
        cats_j = observation.distinct_categories[edges[:, 1]]
        intra = cats_i == cats_j
        contributions = (
            observation.distinct_multiplicities[edges[intra, 0]]
            / observation.distinct_weights[edges[intra, 0]]
        ) * (
            observation.distinct_multiplicities[edges[intra, 1]]
            / observation.distinct_weights[edges[intra, 1]]
        )
        np.add.at(numerator, cats_i[intra], 2.0 * contributions)
    reweighted = observation.reweighted_sizes()
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(reweighted > 0, numerator / reweighted**2, np.nan)
