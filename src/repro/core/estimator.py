"""High-level category-graph estimation.

One call from an observation to an estimated
:class:`~repro.graph.category_graph.CategoryGraph`, wiring together the
size estimators (Sections 4.1/5.2), the edge-weight estimators
(Sections 4.2/5.3) and, when ``N`` is unknown, the collision-based
population estimator (Section 4.3).

The defaults follow the paper's recommendations (Section 9):

* sizes: induced counting under uniform designs on skewed graphs is
  often best, star under crawls — ``size_method="auto"`` picks star for
  star observations under non-uniform designs and induced otherwise;
* weights: star whenever the observation supports it ("the star
  estimators are a clear winner").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.category_graph import CategoryGraph
from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.core.edge_weight import estimate_weights_induced, estimate_weights_star
from repro.core.population import estimate_population_size
from repro.sampling.observation import InducedObservation, StarObservation

__all__ = [
    "estimate_category_sizes",
    "estimate_edge_weights",
    "estimate_category_graph",
]


def estimate_category_sizes(
    observation,
    population_size: float | None = None,
    method: str = "auto",
    mean_degree_model: str = "per-category",
) -> np.ndarray:
    """Estimate every category size from an observation.

    Parameters
    ----------
    observation:
        Induced or star observation.
    population_size:
        ``N``; when ``None`` it is estimated from sample collisions
        (Section 4.3), which needs a sample large enough to revisit
        nodes.
    method:
        ``"induced"`` (Eq. 4/11), ``"star"`` (Eq. 5/12) or ``"auto"``.
    mean_degree_model:
        Passed through to the star estimator (paper footnote 4).
    """
    n_pop = _resolve_population(observation, population_size)
    method = _resolve_size_method(observation, method)
    if method == "induced":
        return estimate_sizes_induced(observation, n_pop)
    return estimate_sizes_star(
        observation, n_pop, mean_degree_model=mean_degree_model
    )


def estimate_edge_weights(
    observation,
    category_sizes: np.ndarray | None = None,
    population_size: float | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Estimate the full ``(C, C)`` edge-weight matrix.

    For the star estimator (Eq. 9/16) the plug-in ``category_sizes``
    default to the estimates of :func:`estimate_category_sizes`.
    """
    if method == "auto":
        method = "star" if isinstance(observation, StarObservation) else "induced"
    if method == "induced":
        if not isinstance(observation, InducedObservation):
            raise EstimationError(
                "induced weight estimation needs an InducedObservation "
                "(build one with observe_induced)"
            )
        return estimate_weights_induced(observation)
    if method == "star":
        if category_sizes is None:
            category_sizes = estimate_category_sizes(
                observation, population_size=population_size
            )
        return estimate_weights_star(observation, category_sizes)
    raise EstimationError(f"unknown weight method {method!r}")


def estimate_category_graph(
    observation,
    population_size: float | None = None,
    size_method: str = "auto",
    weight_method: str = "auto",
    mean_degree_model: str = "per-category",
) -> CategoryGraph:
    """Estimate the full category graph ``G_C`` from one observation.

    Returns a :class:`CategoryGraph` whose ``sizes`` are the estimated
    ``|A|``, whose ``weights`` are the estimated Eq. (3) matrix, and
    whose ``cuts`` are the implied edge-cut estimates
    ``w_hat(A, B) * |A|_hat * |B|_hat`` (useful for the likelihood-based
    follow-ups sketched in the paper's Section 9).
    """
    n_pop = _resolve_population(observation, population_size)
    sizes = estimate_category_sizes(
        observation,
        population_size=n_pop,
        method=size_method,
        mean_degree_model=mean_degree_model,
    )
    weights = estimate_edge_weights(
        observation,
        category_sizes=sizes if weight_method != "induced" else None,
        population_size=n_pop,
        method=weight_method,
    )
    with np.errstate(invalid="ignore"):
        cuts = weights * np.outer(sizes, sizes)
    return CategoryGraph(sizes, weights, names=observation.names, cuts=cuts)


def _resolve_population(observation, population_size: float | None) -> float:
    if population_size is not None:
        return float(population_size)
    return estimate_population_size(observation)


def _resolve_size_method(observation, method: str) -> str:
    if method not in ("auto", "induced", "star"):
        raise EstimationError(f"unknown size method {method!r}")
    if method == "star" and not isinstance(observation, StarObservation):
        raise EstimationError(
            "star size estimation needs a StarObservation "
            "(build one with observe_star)"
        )
    if method == "auto":
        if isinstance(observation, StarObservation) and not observation.uniform:
            # Paper Sec. 6.3/7: star size estimation wins under crawls.
            return "star"
        return "induced"
    return method
