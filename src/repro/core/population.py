"""Population-size estimation ``N = |V|`` (Section 4.3 of the paper).

Category-size estimation needs ``N``. When the operator publishes it,
pass it directly; otherwise the paper points to collision-based ("reversed
coupon collector") estimators [Katzir, Liberty & Somekh, WWW'11]:

* **Uniform designs** — the birthday-problem estimator: with ``n``
  i.i.d. uniform draws and ``Y`` colliding pairs,
  ``E[Y] = C(n, 2) / N``, so ``N_hat = C(n, 2) / Y``.

* **Degree-biased designs** (RW and WIS-by-degree) — the Katzir
  estimator ``N_hat = mean(d) * mean(1/d) * C(n, 2) / Y`` where the
  means run over draws; the degree factors undo the size bias of the
  collision probability.

For crawls, collisions between *adjacent* draws are structural (a walk
cannot revisit its current node but revisits recent ones often), so we
follow the standard practice of only counting collisions between draws
at least ``min_gap`` steps apart.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.sampling.observation import StarObservation, _ObservationBase

__all__ = [
    "estimate_population_size",
    "estimate_population_size_coupon",
    "count_collisions",
]


def count_collisions(draw_to_distinct: np.ndarray, min_gap: int = 1) -> int:
    """Number of draw pairs (i < j) hitting the same node, ``j - i >= min_gap``.

    Linear in the sample size for ``min_gap == 1`` (per-node pair
    counts); falls back to a per-node position scan otherwise.
    """
    draw_to_distinct = np.asarray(draw_to_distinct, dtype=np.int64)
    if min_gap < 1:
        raise EstimationError(f"min_gap must be >= 1, got {min_gap}")
    if min_gap == 1:
        counts = np.bincount(draw_to_distinct)
        return int(np.sum(counts * (counts - 1) // 2))
    total = 0
    order = np.argsort(draw_to_distinct, kind="stable")
    sorted_rows = draw_to_distinct[order]
    boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
    for group in np.split(order, boundaries):
        if len(group) < 2:
            continue
        positions = np.sort(group)
        for a in range(len(positions)):
            total += int(np.searchsorted(positions, positions[a] + min_gap) < len(positions)) * (
                len(positions) - np.searchsorted(positions, positions[a] + min_gap)
            )
    return int(total)


def estimate_population_size(
    observation: _ObservationBase, min_gap: int = 1
) -> float:
    """Collision-based estimate of ``N`` from an observation.

    Uses the uniform birthday estimator when ``observation.uniform`` and
    the degree-corrected Katzir estimator otherwise (which requires a
    star observation, since induced sampling does not reveal degrees —
    except when the design's weights *are* the degrees, as for RW, in
    which case the weights substitute).

    Raises
    ------
    EstimationError
        When the sample contains no collisions (sample too small
        relative to ``N``) — callers should supply ``N`` externally.
    """
    n = observation.num_draws
    if n < 2:
        raise EstimationError("population estimation needs at least 2 draws")
    collisions = count_collisions(observation.draw_to_distinct, min_gap=min_gap)
    if collisions == 0:
        raise EstimationError(
            "no collisions in the sample; it is too small to estimate N — "
            "pass population_size explicitly"
        )
    pairs = n * (n - 1) / 2.0
    if observation.uniform:
        return pairs / collisions

    degrees = _draw_degrees(observation)
    mean_degree = float(degrees.mean())
    mean_inverse = float((1.0 / degrees).mean())
    return mean_degree * mean_inverse * pairs / collisions


def estimate_population_size_coupon(observation: _ObservationBase) -> float:
    """Reversed-coupon-collector estimate of ``N`` (uniform designs).

    With ``n`` i.i.d. uniform draws the expected number of *distinct*
    nodes is ``E[D] = N * (1 - (1 - 1/N)^n)``; observing ``D`` distinct
    nodes, solve for ``N`` numerically. Complements the collision
    estimator: it stays usable when collisions are few (D close to n)
    as long as at least one repeat occurred, and uses the whole
    discovery curve rather than pair counts.

    Only valid for uniform designs (UIS/MHRW-converged); weighted
    designs need the Katzir route in :func:`estimate_population_size`.
    """
    if not observation.uniform:
        raise EstimationError(
            "the coupon-collector estimator assumes uniform draws; use "
            "estimate_population_size for weighted designs"
        )
    n = observation.num_draws
    distinct = observation.num_distinct
    if n < 2:
        raise EstimationError("population estimation needs at least 2 draws")
    if distinct >= n:
        raise EstimationError(
            "no repeated nodes; the sample is too small to estimate N — "
            "pass population_size explicitly"
        )

    def expected_distinct(population: float) -> float:
        # N * (1 - (1 - 1/N)^n), computed stably in log space.
        return population * -np.expm1(n * np.log1p(-1.0 / population))

    # E[D] is increasing in N; bisect on [distinct, huge].
    lo = float(distinct)
    hi = float(distinct) * 2.0 + 10.0
    while expected_distinct(hi) < distinct and hi < 1e15:
        hi *= 4.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if expected_distinct(mid) < distinct:
            lo = mid
        else:
            hi = mid
        if hi - lo < 0.5:
            break
    return 0.5 * (lo + hi)


def _draw_degrees(observation: _ObservationBase) -> np.ndarray:
    """Per-draw degrees for the Katzir correction."""
    if isinstance(observation, StarObservation):
        per_distinct = observation.distinct_degrees.astype(float)
    elif observation.design.startswith(("rw", "wis")):
        # Degree-proportional designs carry degrees as their weights.
        per_distinct = observation.distinct_weights
    else:
        raise EstimationError(
            "non-uniform population estimation needs node degrees: use a "
            "star observation or a degree-weighted design (rw/wis)"
        )
    if per_distinct.min() <= 0:
        raise EstimationError("degrees must be positive for the Katzir estimator")
    return per_distinct[observation.draw_to_distinct]
