"""Analytic (delta-method) variance for Hansen-Hurwitz ratio estimators.

Bootstrap (Section 5.3.2) is the paper's suggestion for variance
estimation, but it costs hundreds of re-estimations. Every estimator in
this library is a ratio of sample means

    R_hat = mean(y_i) / mean(z_i)

over i.i.d.(-ish) draws, so the classical linearisation gives

    Var(R_hat) ~= (1 / (n * zbar^2)) * Var(y_i - R_hat * z_i)

(the Taylor/delta method for a ratio). This module exposes that for
arbitrary per-draw numerator/denominator values, plus a convenience
wrapper for the induced size estimator (Eq. 4/11), whose per-draw
decomposition is explicit. Tests cross-check the delta method against
the bootstrap; agreement within a few tens of percent on realistic
samples is expected and observed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.sampling.observation import _ObservationBase

__all__ = ["ratio_variance", "induced_size_std", "star_weight_std"]


def ratio_variance(numerator: np.ndarray, denominator: np.ndarray) -> float:
    """Delta-method variance of ``sum(numerator) / sum(denominator)``.

    ``numerator`` and ``denominator`` are per-draw contributions (e.g.
    ``1{v in A} / w(v)`` and ``1 / w(v)``); draws are treated as i.i.d.
    (for walks this underestimates slightly at high autocorrelation —
    thin first, or use replicate walks).
    """
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    if numerator.shape != denominator.shape or numerator.ndim != 1:
        raise EstimationError("numerator/denominator must be equal-length vectors")
    n = len(numerator)
    if n < 2:
        raise EstimationError("ratio_variance needs at least 2 draws")
    z_bar = denominator.mean()
    if z_bar == 0:
        raise EstimationError("denominator mean is zero")
    ratio = numerator.sum() / denominator.sum()
    residuals = numerator - ratio * denominator
    return float(residuals.var(ddof=1) / (n * z_bar**2))


def induced_size_std(
    observation: _ObservationBase, population_size: float
) -> np.ndarray:
    """Delta-method standard error of the Eq. (4)/(11) size estimates.

    Returns one standard error per category, on the same scale as the
    estimates (i.e. multiplied by ``N``).
    """
    if population_size <= 0 or not np.isfinite(population_size):
        raise EstimationError(
            f"population_size must be positive, got {population_size}"
        )
    if observation.num_draws < 2:
        raise EstimationError("need at least 2 draws for a variance")
    inv_weights = (
        1.0 / observation.distinct_weights[observation.draw_to_distinct]
    )
    categories = observation.distinct_categories[observation.draw_to_distinct]
    out = np.empty(observation.num_categories)
    for c in range(observation.num_categories):
        indicator = (categories == c).astype(float) * inv_weights
        out[c] = population_size * np.sqrt(
            ratio_variance(indicator, inv_weights)
        )
    return out


def star_weight_std(
    observation,
    category_sizes: np.ndarray,
    pair: tuple[int, int],
) -> float:
    """Delta-method standard error of one Eq. (9)/(16) weight estimate.

    The star weight for the pair (A, B) is a ratio of draw sums:
    numerator contribution of draw i is ``|E_{i,B}| / w_i`` when the
    draw is in A (symmetrically for B), zero otherwise; the denominator
    contribution is ``|B| / w_i`` (resp. ``|A| / w_i``). Both decompose
    per draw, so :func:`ratio_variance` applies.

    Parameters
    ----------
    observation:
        A :class:`~repro.sampling.observation.StarObservation`.
    category_sizes:
        The plug-in sizes used in the estimate (treated as fixed; the
        extra uncertainty of *estimated* plug-ins is second-order and
        ignored, as in the paper's recommendation to pick the
        lower-variance plug-in).
    pair:
        Category indices ``(a, b)``, distinct.
    """
    from repro.sampling.observation import StarObservation

    if not isinstance(observation, StarObservation):
        raise EstimationError("star_weight_std requires a StarObservation")
    a, b = int(pair[0]), int(pair[1])
    c = observation.num_categories
    if not (0 <= a < c and 0 <= b < c) or a == b:
        raise EstimationError(f"invalid category pair {pair}")
    category_sizes = np.asarray(category_sizes, dtype=float)
    if category_sizes.shape != (c,):
        raise EstimationError(
            f"category_sizes must have shape ({c},), got {category_sizes.shape}"
        )
    if observation.num_draws < 2:
        raise EstimationError("need at least 2 draws for a variance")

    # Per-distinct |E_{v,B}| and |E_{v,A}| lookups from the neighbor CSR.
    counts_toward = {a: np.zeros(observation.num_distinct),
                     b: np.zeros(observation.num_distinct)}
    for i in range(observation.num_distinct):
        lo = observation.neighbor_indptr[i]
        hi = observation.neighbor_indptr[i + 1]
        cats = observation.neighbor_categories[lo:hi]
        vals = observation.neighbor_counts[lo:hi]
        for target in (a, b):
            hit = cats == target
            if np.any(hit):
                counts_toward[target][i] = float(vals[hit].sum())

    rows = observation.draw_to_distinct
    draw_cats = observation.distinct_categories[rows]
    draw_weights = observation.distinct_weights[rows]
    in_a = draw_cats == a
    in_b = draw_cats == b
    numerator = np.where(
        in_a, counts_toward[b][rows], np.where(in_b, counts_toward[a][rows], 0.0)
    ) / draw_weights
    denominator = np.where(
        in_a, category_sizes[b], np.where(in_b, category_sizes[a], 0.0)
    ) / draw_weights
    if denominator.sum() == 0:
        raise EstimationError(
            "neither category of the pair was sampled; the weight (and its "
            "variance) are undefined"
        )
    return float(np.sqrt(ratio_variance(numerator, denominator)))
