"""Hansen-Hurwitz reweighting machinery (Section 5.1 of the paper).

Under a non-uniform design with known (up to a constant) sampling
weights ``w(v) ~ pi(v)``, the Hansen-Hurwitz estimator of a population
total is ``(1/n) * sum_{v in S} x(v) / pi(v)`` (Eq. 10). Because the
normalising constant of ``pi`` is unknown in practice, every estimator
in this library is a *ratio* of two such totals, where the constant
cancels (Section 5.1). These helpers compute the building blocks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError

__all__ = ["hh_total", "hh_ratio", "reweighted_count"]


def hh_total(values: np.ndarray, weights: np.ndarray) -> float:
    """Unnormalised Hansen-Hurwitz total ``sum_i x_i / w_i``.

    Proportional to the Eq. (10) estimate of ``x_tot``; use
    :func:`hh_ratio` to cancel the unknown constant.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise EstimationError(
            f"values and weights must align; got {values.shape} vs {weights.shape}"
        )
    if len(weights) == 0:
        raise EstimationError("hh_total of an empty sample is undefined")
    if weights.min() <= 0:
        raise EstimationError("sampling weights must be strictly positive")
    return float(np.sum(values / weights))


def hh_ratio(
    numerator_values: np.ndarray,
    denominator_values: np.ndarray,
    weights: np.ndarray,
) -> float:
    """Ratio of two Hansen-Hurwitz totals over the *same* sample.

    The unknown proportionality constant of the sampling weights cancels
    in the ratio, which is the paper's device for making Eq. (11)-(16)
    usable with crawl weights known only up to scale.
    """
    denominator = hh_total(denominator_values, weights)
    if denominator == 0:
        raise EstimationError("hh_ratio denominator total is zero")
    return hh_total(numerator_values, weights) / denominator


def reweighted_count(
    mask: np.ndarray, multiplicities: np.ndarray, weights: np.ndarray
) -> float:
    """``w^{-1}(X) = sum_{v in X} 1 / w(v)`` over a multiset (Eq. 11).

    ``mask`` selects rows of a distinct-node table; multiplicities carry
    the with-replacement draw counts.
    """
    mask = np.asarray(mask, dtype=bool)
    return float(np.sum(multiplicities[mask] / weights[mask]))
