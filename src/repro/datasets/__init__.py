"""Stand-ins for the paper's empirical datasets (Table 1)."""

from repro.datasets.cache import GraphCache, default_cache
from repro.datasets.categories import worst_case_categories
from repro.datasets.registry import (
    TABLE1_DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "GraphCache",
    "default_cache",
    "TABLE1_DATASETS",
    "dataset_names",
    "load_dataset",
    "worst_case_categories",
]
