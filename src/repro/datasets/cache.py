"""On-disk caching of generated graphs and partitions.

``paper``-scale inputs (an 88 850-node planted graph, 36k-75k-node
dataset stand-ins, community partitions that take tens of seconds to
detect) are deterministic functions of their parameters — cache them as
NPZ bundles keyed by a stable hash of the parameters, so the second run
of a figure costs milliseconds.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from pathlib import Path

from repro.graph.adjacency import Graph
from repro.graph.io import load_npz, save_npz
from repro.graph.partition import CategoryPartition

__all__ = ["GraphCache", "default_cache"]


class GraphCache:
    """A directory of NPZ bundles keyed by parameter hashes.

    Parameters
    ----------
    directory:
        Cache root; created on first write. ``None`` disables caching
        (every call regenerates) — handy for tests.
    """

    def __init__(self, directory: "str | Path | None"):
        self._directory = Path(directory) if directory is not None else None

    @property
    def enabled(self) -> bool:
        """Whether a backing directory is configured."""
        return self._directory is not None

    def get_or_build(
        self,
        kind: str,
        params: dict,
        builder: Callable[[], tuple[Graph, CategoryPartition | None]],
    ) -> tuple[Graph, CategoryPartition | None]:
        """Return the cached bundle for (kind, params) or build and store.

        ``params`` must be JSON-serialisable; it is hashed (not trusted
        as a filename) and also stored alongside for inspection.
        """
        if self._directory is None:
            return builder()
        key = self._key(kind, params)
        bundle = self._directory / f"{key}.npz"
        meta = self._directory / f"{key}.json"
        if bundle.exists():
            return load_npz(bundle)
        graph, partition = builder()
        self._directory.mkdir(parents=True, exist_ok=True)
        save_npz(bundle, graph, partition)
        meta.write_text(json.dumps({"kind": kind, "params": params}, indent=2))
        return graph, partition

    def clear(self) -> int:
        """Delete every cached bundle; returns the number removed."""
        if self._directory is None or not self._directory.exists():
            return 0
        removed = 0
        for path in self._directory.glob("*.npz"):
            path.unlink()
            removed += 1
        for path in self._directory.glob("*.json"):
            path.unlink()
        return removed

    @staticmethod
    def _key(kind: str, params: dict) -> str:
        payload = json.dumps(
            {"kind": kind, "params": params}, sort_keys=True
        ).encode()
        return f"{kind}-{hashlib.sha256(payload).hexdigest()[:16]}"


def default_cache() -> GraphCache:
    """Cache configured from ``REPRO_CACHE_DIR`` (unset = disabled)."""
    return GraphCache(os.environ.get("REPRO_CACHE_DIR"))
