"""Category construction for the Section 6.3 experiments.

The paper deliberately builds the *worst case* for star sampling: it
runs a leading-eigenvector community finder, keeps the 50 largest
communities as categories, and lumps everything else into a 51st
category. :func:`worst_case_categories` reproduces that pipeline on any
graph.
"""

from __future__ import annotations

import numpy as np

from repro.community.leading_eigenvector import leading_eigenvector_communities
from repro.community.label_propagation import label_propagation_communities
from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition

__all__ = ["worst_case_categories"]


def worst_case_categories(
    graph: Graph,
    top: int = 50,
    method: str = "leading-eigenvector",
    rng: "np.random.Generator | int | None" = 0,
) -> CategoryPartition:
    """Categories = ``top`` largest communities + one catch-all.

    Parameters
    ----------
    graph:
        The graph to categorise.
    top:
        Number of large communities kept as individual categories
        (paper: 50).
    method:
        ``"leading-eigenvector"`` (the paper's [47]) or
        ``"label-propagation"`` (faster ablation alternative).
    """
    if method == "leading-eigenvector":
        communities = leading_eigenvector_communities(
            graph, max_communities=max(2 * top, top + 10), rng=rng
        )
    elif method == "label-propagation":
        communities = label_propagation_communities(graph, rng=rng)
    else:
        raise GenerationError(
            f"unknown community method {method!r}; use 'leading-eigenvector' "
            "or 'label-propagation'"
        )
    if communities.num_categories <= top:
        return communities
    named = CategoryPartition(
        communities.labels,
        names=[f"community{i}" for i in range(communities.num_categories)],
        num_categories=communities.num_categories,
    )
    return named.keep_top(top, rest_name="rest")
