"""Stand-ins for the paper's Table 1 empirical graphs.

The paper evaluates on four fully known topologies:

==========================  ========  ===========  =====
Dataset                     \\|V\\|     \\|E\\|        k_V
==========================  ========  ===========  =====
Facebook: Texas [62]        36 364    1 590 651    87.5
Facebook: New Orleans [64]  63 392      816 885    25.8
P2P (Gnutella) [40]         62 561      147 877     4.7
Epinions [54]               75 877      405 738    10.7
==========================  ========  ===========  =====

The raw datasets are not redistributable (and unavailable offline), so
we rebuild graphs with the published node/edge counts and a matched
heavy-tailed degree profile via the configuration model, optionally
overlaying planted communities. Section 6.3's findings hinge on (i)
density, (ii) degree skew and (iii) categories aligned with dense
clusters — all preserved. See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GenerationError
from repro.generators.configuration import (
    configuration_model_graph,
    power_law_degree_sequence,
)
from repro.graph.adjacency import Graph
from repro.graph.operations import largest_component
from repro.rng import ensure_rng

__all__ = ["DatasetSpec", "TABLE1_DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics and generation knobs for one Table 1 graph."""

    name: str
    num_nodes: int
    num_edges: int
    mean_degree: float
    degree_exponent: float
    min_degree: int
    description: str

    def max_degree(self) -> int:
        """Degree cap: square-root cutoff keeps the tail realistic."""
        return max(int(3 * np.sqrt(self.num_nodes) + self.mean_degree), 10)


#: The four empirical topologies of the paper's Table 1.
TABLE1_DATASETS: dict[str, DatasetSpec] = {
    "facebook_texas": DatasetSpec(
        name="facebook_texas",
        num_nodes=36_364,
        num_edges=1_590_651,
        mean_degree=87.5,
        degree_exponent=2.8,
        min_degree=5,
        description="Facebook Texas regional network [62] - dense OSN",
    ),
    "facebook_new_orleans": DatasetSpec(
        name="facebook_new_orleans",
        num_nodes=63_392,
        num_edges=816_885,
        mean_degree=25.8,
        degree_exponent=2.5,
        min_degree=2,
        description="Facebook New Orleans regional network [64] - medium OSN",
    ),
    "p2p": DatasetSpec(
        name="p2p",
        num_nodes=62_561,
        num_edges=147_877,
        mean_degree=4.7,
        degree_exponent=3.2,
        min_degree=1,
        description="Gnutella P2P overlay snapshot [40] - sparse",
    ),
    "epinions": DatasetSpec(
        name="epinions",
        num_nodes=75_877,
        num_edges=405_738,
        mean_degree=10.7,
        degree_exponent=2.2,
        min_degree=1,
        description="Epinions trust graph [54] - skewed",
    ),
}


def dataset_names() -> tuple[str, ...]:
    """Names of the available Table 1 stand-ins."""
    return tuple(TABLE1_DATASETS)


def load_dataset(
    name: str,
    scale: int = 1,
    rng: "np.random.Generator | int | None" = None,
    connected_only: bool = True,
) -> tuple[Graph, DatasetSpec]:
    """Build the stand-in graph for a Table 1 dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Integer shrink factor on the node count (mean degree is kept),
        for laptop-speed tests and benches. ``1`` reproduces the
        published size.
    connected_only:
        Restrict to the largest connected component (walk samplers need
        connectivity; the published graphs are dominated by one giant
        component too).

    Returns
    -------
    ``(graph, spec)`` — the realised graph plus the published spec to
    compare against (Table 1 bench).
    """
    if name not in TABLE1_DATASETS:
        raise GenerationError(
            f"unknown dataset {name!r}; available: {', '.join(TABLE1_DATASETS)}"
        )
    if scale < 1:
        raise GenerationError(f"scale must be >= 1, got {scale}")
    spec = TABLE1_DATASETS[name]
    gen = ensure_rng(rng)
    n = max(spec.num_nodes // scale, 100)
    degrees = power_law_degree_sequence(
        n,
        spec.degree_exponent,
        mean_degree=spec.mean_degree,
        d_min=spec.min_degree,
        d_max=min(spec.max_degree(), n - 1),
        rng=gen,
    )
    graph = configuration_model_graph(degrees, rng=gen)
    if connected_only:
        graph, _ = largest_component(graph)
    return graph, spec
