"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from bad
call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: querying a node id outside ``[0, num_nodes)``, building a
    graph from an edge list that references unknown nodes, or requesting
    an operation that requires a connected graph on a disconnected one.
    """


class PartitionError(ReproError):
    """Raised when a category partition is inconsistent with its graph.

    Examples: a label array whose length differs from the node count, or
    looking up a category name that was never registered.
    """


class SamplingError(ReproError):
    """Raised when a sampling design cannot produce a valid sample.

    Examples: walking on an empty graph, requesting a weighted design
    with non-positive weights, or a BFS seed outside the node range.
    """


class EstimationError(ReproError):
    """Raised when an estimator cannot be evaluated on the given sample.

    Examples: an empty sample, a star estimator applied to an induced
    observation, or a Hansen-Hurwitz correction with zero weights.
    """


class GenerationError(ReproError):
    """Raised when a synthetic graph generator receives infeasible
    parameters (e.g. a k-regular graph with ``k >= n`` or odd ``n * k``)."""


class StorageError(ReproError):
    """Raised by the out-of-core graph storage plane.

    Examples: opening a directory with no CSR manifest, a torn or
    truncated manifest left behind by an interrupted build, or a plane
    file whose checksum no longer matches its manifest entry.
    """


class ExperimentError(ReproError):
    """Raised by experiment drivers for invalid configurations."""
