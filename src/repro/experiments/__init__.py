"""Experiment drivers — one per table/figure of the paper.

Registry
--------
``EXPERIMENTS`` maps every experiment id to a zero-config callable
returning ``{id: ExperimentResult}``; :func:`run_experiment` dispatches
by id (used by the CLI and the benches).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ExperimentError
from repro.experiments.ablations import ABLATIONS, run_ablations
from repro.experiments.base import ExperimentResult
from repro.experiments.config import SCALE_PRESETS, ScalePreset, active_preset
from repro.experiments.fig3 import FIG3_PANELS, run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "ExperimentResult",
    "ScalePreset",
    "SCALE_PRESETS",
    "active_preset",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
    "run_ablations",
    "ABLATIONS",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]


def _fig3_runner(panel: str) -> Callable[..., dict[str, ExperimentResult]]:
    def run(preset: ScalePreset | None = None, rng: int = 0):
        return run_fig3(panels=(panel,), preset=preset, rng=rng)

    return run


def _single(fn) -> Callable[..., dict[str, ExperimentResult]]:
    def run(preset: ScalePreset | None = None, rng: int = 0):
        result = fn(preset=preset, rng=rng)
        return {result.experiment_id: result}

    return run


EXPERIMENTS: dict[str, Callable[..., dict[str, "ExperimentResult"]]] = {
    **{f"fig3{p}": _fig3_runner(p) for p in FIG3_PANELS},
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "table1": _single(run_table1),
    "table2": _single(run_table2),
    "ablations": run_ablations,
}


def experiment_ids() -> tuple[str, ...]:
    """All runnable experiment ids."""
    return tuple(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Run one experiment by id; returns ``{result_id: result}``."""
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](preset=preset, rng=rng)
