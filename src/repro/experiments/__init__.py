"""Experiment drivers — one per table/figure of the paper.

Registry
--------
Every experiment *compiles* to a declarative
:class:`~repro.experiments.plan.SweepPlan` (see
:mod:`repro.experiments.plan`) that the parallel runtime executes
(:func:`repro.runtime.plan.run_plan`). ``PLANS`` maps every experiment
id to its compiler; ``EXPERIMENTS`` keeps the zero-config callable view
returning ``{id: ExperimentResult}``. :func:`run_experiment` dispatches
by id (used by the CLI and the benches) — compile, then run.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ExperimentError
from repro.experiments.ablations import ABLATIONS, compile_ablations, run_ablations
from repro.experiments.base import ExperimentResult
from repro.experiments.config import SCALE_PRESETS, ScalePreset, active_preset
from repro.experiments.fig3 import FIG3_PANELS, compile_fig3, run_fig3
from repro.experiments.fig4 import compile_fig4, run_fig4
from repro.experiments.fig5 import compile_fig5, run_fig5
from repro.experiments.fig6 import compile_fig6, run_fig6
from repro.experiments.fig7 import compile_fig7, run_fig7
from repro.experiments.plan import SweepPlan
from repro.experiments.table1 import compile_table1, run_table1
from repro.experiments.table2 import compile_table2, run_table2

__all__ = [
    "ExperimentResult",
    "ScalePreset",
    "SCALE_PRESETS",
    "SweepPlan",
    "active_preset",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
    "run_ablations",
    "ABLATIONS",
    "EXPERIMENTS",
    "PLANS",
    "compile_experiment",
    "experiment_ids",
    "run_experiment",
]


def _fig3_panel_compiler(panel: str):
    def compile(preset: ScalePreset | None = None, rng: int = 0) -> SweepPlan:
        return compile_fig3(panels=(panel,), preset=preset, rng=rng)

    return compile


#: Experiment id -> plan compiler ``(preset, rng) -> SweepPlan``.
PLANS: dict[str, Callable[..., SweepPlan]] = {
    **{f"fig3{p}": _fig3_panel_compiler(p) for p in FIG3_PANELS},
    "fig3": compile_fig3,
    "fig4": compile_fig4,
    "fig5": compile_fig5,
    "fig6": compile_fig6,
    "fig7": compile_fig7,
    "table1": compile_table1,
    "table2": compile_table2,
    "ablations": compile_ablations,
}


def compile_experiment(
    experiment_id: str,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile one experiment's :class:`SweepPlan` by id."""
    if experiment_id not in PLANS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(PLANS)}"
        )
    return PLANS[experiment_id](preset=preset, rng=rng)


def _run(experiment_id: str):
    def run(preset: ScalePreset | None = None, rng: int = 0):
        return run_experiment(experiment_id, preset=preset, rng=rng)

    return run


#: Zero-config callable view: id -> ``{result_id: ExperimentResult}``.
EXPERIMENTS: dict[str, Callable[..., dict[str, "ExperimentResult"]]] = {
    experiment_id: _run(experiment_id) for experiment_id in PLANS
}


def experiment_ids() -> tuple[str, ...]:
    """All runnable experiment ids."""
    return tuple(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Run one experiment by id; returns ``{result_id: result}``.

    A preset with ``graph_storage="memmap"`` (the ``web`` tier) runs
    the whole plan under an out-of-core storage scope: substrate CSRs
    build straight to disk and workers map the plane files. ``"ram"``
    presets install no scope, so the ``REPRO_GRAPH_STORAGE``
    environment knob still applies to them.
    """
    from repro.runtime.plan import run_plan

    resolved = preset if preset is not None else active_preset()
    plan = compile_experiment(experiment_id, preset=resolved, rng=rng)
    if resolved.graph_storage != "ram":
        from repro.graph.storage import graph_storage

        with graph_storage(resolved.graph_storage):
            return run_plan(plan)
    return run_plan(plan)
