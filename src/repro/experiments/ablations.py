"""Ablation experiments for the design choices the paper argues in prose.

Five runnable studies (also asserted in ``benchmarks/bench_ablations.py``):

* ``hh``        — dropping the Hansen-Hurwitz correction under RW;
* ``footnote4`` — per-category vs global mean-degree model in Eq. (5);
* ``plugin``    — the Eq. (16) size plug-in choice (Section 5.3.2);
* ``thinning``  — walk autocorrelation vs thinning period (Section 5.4);
* ``bfs``       — degree bias of traversal baselines (Section 8).

Available from the CLI as ``repro run ablations``.

The ``plugin`` study is a replicated sweep and compiles to one
*pre-drawn* sweep cell per Eq. (16) plug-in choice (sharing the six RW
walks as a plan resource); the other four studies are single-pass
compute cells.
"""

from __future__ import annotations

import numpy as np

from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import (
    ComputeCell,
    PlanResources,
    SweepCell,
    SweepJob,
    SweepPlan,
)
from repro.generators.ba import barabasi_albert_graph
from repro.generators.planted import planted_category_graph
from repro.generators.sbm import stochastic_block_model
from repro.rng import derive_rng
from repro.runtime.plan import run_plan
from repro.sampling.base import NodeSample
from repro.sampling.convergence import autocorrelation
from repro.sampling.observation import observe_induced, observe_star
from repro.sampling.traversal import BreadthFirstSampler
from repro.sampling.walks import RandomWalkSampler

__all__ = ["run_ablations", "compile_ablations", "ABLATIONS"]

ABLATIONS = ("hh", "footnote4", "plugin", "thinning", "bfs")

#: The Eq. (16) size plug-in variants, in published row order.
_PLUGINS = ("true", "star", "induced")


def compile_ablations(
    which: tuple[str, ...] = ABLATIONS,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile the requested ablation studies to one plan."""
    preset = preset or active_preset()
    unknown = set(which) - set(ABLATIONS)
    if unknown:
        raise ValueError(f"unknown ablations: {sorted(unknown)}")
    compute_builders = {
        "hh": _ablation_hh,
        "footnote4": _ablation_footnote4,
        "thinning": _ablation_thinning,
        "bfs": _ablation_bfs,
    }
    resources = {}
    cells: list = []
    for name in which:
        if name == "plugin":
            resources["plugin-walks"] = _plugin_walks_resource(preset, rng)
            for plugin in _PLUGINS:
                cells.append(_plugin_cell(plugin))
        else:
            builder = compute_builders[name]
            cells.append(
                ComputeCell(
                    key=name,
                    compute=(
                        lambda resources, b=builder: b(preset, rng)
                    ),
                    axes={"study": name},
                )
            )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        results: dict[str, ExperimentResult] = {}
        for name in which:
            if name == "plugin":
                result = _plugin_result(outputs)
            else:
                result = outputs[name]
            results[result.experiment_id] = result
        return results

    return SweepPlan(
        name="ablations",
        cells=tuple(cells),
        finalize=finalize,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng), "which": which},
    )


def run_ablations(
    which: tuple[str, ...] = ABLATIONS,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Run the requested ablations; returns ``{id: ExperimentResult}``."""
    return run_plan(compile_ablations(which=which, preset=preset, rng=rng))


def _plugin_walks_resource(preset: ScalePreset, rng: int):
    def factory():
        graph, partition = planted_category_graph(
            k=12, scale=preset.planted_scale, rng=derive_rng(rng, 84)
        )
        streams = [derive_rng(rng, 85, i) for i in range(6)]
        walks = [RandomWalkSampler(graph).sample(3000, rng=s) for s in streams]
        return graph, partition, walks

    return factory


def _plugin_cell(plugin: str) -> SweepCell:
    def build(resources: PlanResources) -> SweepJob:
        graph, partition, walks = resources["plugin-walks"]
        return SweepJob(
            graph=graph,
            partition=partition,
            sizes=(3000,),
            samples=walks,
            weight_size_plugin=plugin,
        )

    return SweepCell(
        key=f"plugin:{plugin}",
        build=build,
        axes={"study": "plugin", "weight_size_plugin": plugin},
        needs=("plugin-walks",),
    )


def _plugin_result(outputs: dict[str, object]) -> ExperimentResult:
    rows = [
        (
            plugin,
            round(
                float(outputs[f"plugin:{plugin}"].median_weight_nrmse("star")[0]),
                4,
            ),
        )
        for plugin in _PLUGINS
    ]
    return ExperimentResult(
        experiment_id="ablation_plugin",
        title="Eq. (16) size plug-in: median NRMSE(w) under RW",
        table=(("plug-in", "median NRMSE"), rows),
    )


def _ablation_hh(preset: ScalePreset, rng: int) -> ExperimentResult:
    graph, partition = stochastic_block_model(
        [400, 400],
        np.array([[0.10, 0.005], [0.005, 0.01]]),
        rng=derive_rng(rng, 80),
    )
    sample = RandomWalkSampler(graph).sample(40_000, rng=derive_rng(rng, 81))
    corrected = estimate_sizes_induced(
        observe_induced(graph, partition, sample), graph.num_nodes
    )
    naive_sample = NodeSample(
        sample.nodes, np.ones(sample.size), design="naive", uniform=True
    )
    naive = estimate_sizes_induced(
        observe_induced(graph, partition, naive_sample), graph.num_nodes
    )
    rows = [
        (block, 400, round(float(corrected[block]), 1), round(float(naive[block]), 1))
        for block in (0, 1)
    ]
    return ExperimentResult(
        experiment_id="ablation_hh",
        title="RW size estimates with vs without Hansen-Hurwitz correction",
        table=(("block", "true", "corrected", "naive"), rows),
        notes={"dense_block_inflation": round(float(naive[0]) / 400, 2)},
    )


def _ablation_footnote4(preset: ScalePreset, rng: int) -> ExperimentResult:
    graph, partition = planted_category_graph(
        k=10, scale=preset.planted_scale, rng=derive_rng(rng, 82)
    )
    sample = RandomWalkSampler(graph).sample(300, rng=derive_rng(rng, 83))
    obs = observe_star(graph, partition, sample)
    per_category = estimate_sizes_star(
        obs, graph.num_nodes, mean_degree_model="per-category"
    )
    global_model = estimate_sizes_star(
        obs, graph.num_nodes, mean_degree_model="global"
    )
    rows = [
        (
            partition.names[i],
            int(partition.sizes()[i]),
            round(float(per_category[i]), 1),
            round(float(global_model[i]), 1),
        )
        for i in range(partition.num_categories)
    ]
    return ExperimentResult(
        experiment_id="ablation_footnote4",
        title="star size estimation: per-category vs global k_A (footnote 4)",
        table=(("category", "true", "per-category", "global"), rows),
        notes={
            "finite_per_category": int(np.sum(np.isfinite(per_category))),
            "finite_global": int(np.sum(np.isfinite(global_model))),
        },
    )


def _ablation_thinning(preset: ScalePreset, rng: int) -> ExperimentResult:
    graph, _ = planted_category_graph(
        k=10, scale=preset.planted_scale, rng=derive_rng(rng, 86)
    )
    walk = RandomWalkSampler(graph).sample(30_000, rng=derive_rng(rng, 87))
    rows = []
    for period in (1, 2, 5, 10, 20):
        thinned = walk.thin(period)
        acf1 = float(autocorrelation(thinned.weights, max_lag=1)[1])
        rows.append((period, thinned.size, round(acf1, 4)))
    return ExperimentResult(
        experiment_id="ablation_thinning",
        title="thinning period vs lag-1 degree autocorrelation (Sec. 5.4)",
        table=(("period", "draws kept", "lag-1 ACF"), rows),
    )


def _ablation_bfs(preset: ScalePreset, rng: int) -> ExperimentResult:
    graph = barabasi_albert_graph(
        max(20_000 // preset.planted_scale * 10, 2000), 4, rng=derive_rng(rng, 88)
    )
    n = graph.num_nodes
    bfs = BreadthFirstSampler(graph).sample(n // 10, rng=derive_rng(rng, 89))
    mean_bfs = float(graph.degrees()[bfs.nodes].mean())
    mean_all = float(graph.mean_degree())
    return ExperimentResult(
        experiment_id="ablation_bfs",
        title="BFS degree bias on a heavy-tailed graph (Sec. 8)",
        table=(
            ("population mean degree", "BFS sample mean degree", "bias factor"),
            [(round(mean_all, 2), round(mean_bfs, 2), round(mean_bfs / mean_all, 2))],
        ),
    )
