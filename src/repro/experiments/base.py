"""Common result container for experiment drivers."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.viz.ascii import ascii_chart, format_table
from repro.viz.export import write_series_csv, write_series_json

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one table/figure regeneration.

    Attributes
    ----------
    experiment_id:
        Paper identifier (``"fig3a"``, ``"table1"``, ...).
    title:
        Human-readable description.
    series:
        Named curves ``{label: (x, y)}`` (figures).
    table:
        Optional ``(headers, rows)`` (tables).
    notes:
        Free-form key/value facts (shape-claim checks, parameters).
    log_axes:
        Whether :meth:`render` draws log-log axes.
    """

    experiment_id: str
    title: str
    series: dict[str, tuple[Sequence[float], Sequence[float]]] = field(
        default_factory=dict
    )
    table: tuple[Sequence[str], Sequence[Sequence[object]]] | None = None
    notes: dict[str, object] = field(default_factory=dict)
    log_axes: bool = True

    def render(self) -> str:
        """Text rendering: chart and/or table plus notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.series:
            parts.append(
                ascii_chart(
                    self.series,
                    log_x=self.log_axes,
                    log_y=self.log_axes,
                )
            )
        if self.table is not None:
            headers, rows = self.table
            parts.append(format_table(headers, rows))
        if self.notes:
            parts.append(
                "\n".join(f"  {key}: {value}" for key, value in self.notes.items())
            )
        return "\n".join(parts)

    def save(self, directory: "str | Path") -> list[Path]:
        """Persist series (CSV + JSON) and the rendering; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        if self.series:
            csv_path = directory / f"{self.experiment_id}.csv"
            write_series_csv(csv_path, self.series)
            json_path = directory / f"{self.experiment_id}.json"
            write_series_json(
                json_path,
                self.series,
                metadata={"title": self.title, **_stringify(self.notes)},
            )
            written += [csv_path, json_path]
        text_path = directory / f"{self.experiment_id}.txt"
        text_path.write_text(self.render() + "\n")
        written.append(text_path)
        return written


def _stringify(notes: Mapping[str, object]) -> dict[str, str]:
    return {key: str(value) for key, value in notes.items()}
