"""Scale presets for the experiment drivers.

The paper's sweeps run at N = 88 850 with samples up to 1e5 and ~28
replications — minutes per figure on a laptop. Tests and CI need
seconds. ``ScalePreset`` bundles every size knob; the active preset
comes from the ``REPRO_SCALE`` environment variable (``small`` default,
``medium``, ``paper``, ``web``).

``web`` is the out-of-core tier: the paper's knobs plus
``graph_storage="memmap"``, which makes every substrate build stream
its CSR to disk (:mod:`repro.graph.storage`) and workers map the plane
files instead of copying them — peak RSS stays bounded however large
the graph grows. Output is bit-identical to ``paper`` by the storage
plane's byte-identity contract.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ExperimentError

__all__ = ["ScalePreset", "SCALE_PRESETS", "active_preset"]


@dataclass(frozen=True)
class ScalePreset:
    """All experiment size knobs for one scale tier."""

    name: str
    #: Shrink factor for the Section 6.2.1 planted model (Fig. 3).
    planted_scale: int
    #: Shrink factor for the Table 1 dataset stand-ins (Fig. 4).
    dataset_scale: int
    #: Shrink factor for the Facebook world (Table 2, Figs. 5-7).
    facebook_scale: int
    #: Sample-size ladder for Fig. 3.
    fig3_sample_sizes: tuple[int, ...]
    #: Sample-size ladder for Fig. 4.
    fig4_sample_sizes: tuple[int, ...]
    #: Sample-size ladder for Fig. 6.
    fig6_sample_sizes: tuple[int, ...]
    #: Replications per sweep point (independent samples/walks).
    replications: int
    #: |S| at which the Fig. 3(d)/(h) CDFs are evaluated (paper: 2000).
    cdf_sample_size: int
    #: Communities kept as categories in Fig. 4 (paper: 50).
    community_top: int
    #: Number of walks simulated per crawl dataset (paper: 28 / 25).
    walks_2009: int
    walks_2010: int
    #: Draws per simulated walk (paper: 81k / 40k).
    samples_per_walk: int
    #: "Most popular" categories scored in Fig. 6 (paper: 100).
    top_categories: int
    #: Graph storage plane: ``"ram"`` (default) builds CSR arrays in
    #: memory; ``"memmap"`` streams them to disk and maps them back
    #: (:mod:`repro.graph.storage`). Same bytes either way.
    graph_storage: str = "ram"


SCALE_PRESETS: dict[str, ScalePreset] = {
    "small": ScalePreset(
        name="small",
        planted_scale=20,
        dataset_scale=25,
        facebook_scale=6,
        fig3_sample_sizes=(100, 300, 1000, 3000, 10_000),
        fig4_sample_sizes=(300, 1000, 3000),
        fig6_sample_sizes=(300, 1000, 2500),
        replications=8,
        cdf_sample_size=2000,
        community_top=15,
        walks_2009=8,
        walks_2010=8,
        samples_per_walk=2500,
        top_categories=40,
    ),
    "medium": ScalePreset(
        name="medium",
        planted_scale=5,
        dataset_scale=8,
        facebook_scale=2,
        fig3_sample_sizes=(100, 300, 1000, 3000, 10_000, 30_000),
        fig4_sample_sizes=(300, 1000, 3000, 10_000),
        fig6_sample_sizes=(300, 1000, 3000, 8000),
        replications=12,
        cdf_sample_size=2000,
        community_top=30,
        walks_2009=12,
        walks_2010=12,
        samples_per_walk=8000,
        top_categories=60,
    ),
    "paper": ScalePreset(
        name="paper",
        planted_scale=1,
        dataset_scale=1,
        facebook_scale=1,
        fig3_sample_sizes=(100, 300, 1000, 3000, 10_000, 30_000, 100_000),
        fig4_sample_sizes=(1000, 3000, 10_000, 30_000, 100_000),
        fig6_sample_sizes=(1000, 3000, 10_000, 30_000),
        replications=28,
        cdf_sample_size=2000,
        community_top=50,
        walks_2009=28,
        walks_2010=25,
        samples_per_walk=30_000,
        top_categories=100,
    ),
    # Paper-scale knobs, out-of-core storage: substrates build straight
    # to on-disk CSR planes and workers map them read-only.
    "web": ScalePreset(
        name="web",
        planted_scale=1,
        dataset_scale=1,
        facebook_scale=1,
        fig3_sample_sizes=(100, 300, 1000, 3000, 10_000, 30_000, 100_000),
        fig4_sample_sizes=(1000, 3000, 10_000, 30_000, 100_000),
        fig6_sample_sizes=(1000, 3000, 10_000, 30_000),
        replications=28,
        cdf_sample_size=2000,
        community_top=50,
        walks_2009=28,
        walks_2010=25,
        samples_per_walk=30_000,
        top_categories=100,
        graph_storage="memmap",
    ),
}


def active_preset(name: str | None = None) -> ScalePreset:
    """Resolve a preset by name or from ``REPRO_SCALE`` (default small)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALE_PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; available: {', '.join(SCALE_PRESETS)}"
        ) from None
