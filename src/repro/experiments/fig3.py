"""Fig. 3 — estimator NRMSE on the Section 6.2.1 synthetic model (UIS).

Eight panels, two rows:

* top row, category sizes ``|A|``: (a) density k = 5 vs 49;
  (b) community alignment alpha = 0 vs 1; (c) category size 500 vs
  50 000; (d) CDF of the NRMSE of all ten size estimates at |S| = 2000;
* bottom row, edge weights ``w(A, B)``: (e) k = 5 vs 49 on the
  high-weight edge; (f) alpha = 0 vs 1; (g) e_low (25th-percentile
  weight) vs e_high (75th); (h) CDF over all pairs at |S| = 2000.

Every panel compares induced-subgraph (Eq. 4/8) against star (Eq. 5/9)
estimators under UIS. Five underlying graph configurations serve all
eight panels; each compiles to one fresh-draw cell of the experiment's
:class:`~repro.experiments.plan.SweepPlan` and is swept once and
shared. The cells build their own (small) planted graphs and declare
no resource needs — they are DAG roots, all ready the moment the plan
starts, so the scheduler overlaps them freely up to its in-flight
bound.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import PlanResources, SweepCell, SweepJob, SweepPlan
from repro.generators.planted import PlantedModelConfig, planted_category_graph
from repro.rng import derive_rng
from repro.runtime.plan import run_plan
from repro.sampling.independence import UniformIndependenceSampler
from repro.stats.percentiles import percentile_edge
from repro.stats.replication import SweepResult

__all__ = ["run_fig3", "compile_fig3", "FIG3_PANELS"]

FIG3_PANELS = ("a", "b", "c", "d", "e", "f", "g", "h")

#: Graph configurations (k, alpha) shared across panels.
_CONFIGS = {
    "k5": (5, 0.5),
    "k49": (49, 0.5),
    "a0": (20, 0.0),
    "a1": (20, 1.0),
    "base": (20, 0.5),
}


def compile_fig3(
    panels: tuple[str, ...] = FIG3_PANELS,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile the requested Fig. 3 panels to a sweep plan.

    One fresh-draw cell per needed graph configuration (panels share
    configurations, so e.g. panels a+e compile to two cells, not four);
    ``finalize`` assembles the panel series/CDFs from the cell sweeps.
    """
    preset = preset or active_preset()
    unknown = set(panels) - set(FIG3_PANELS)
    if unknown:
        raise ValueError(f"unknown Fig. 3 panels: {sorted(unknown)}")
    needed = _configs_needed(panels)
    cells = tuple(
        _config_cell(key, preset, rng)
        for key in _CONFIGS
        if key in needed
    )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        results: dict[str, ExperimentResult] = {}
        sizes_note = {"scale": preset.name, "replications": preset.replications}
        for panel in panels:
            result = _PANEL_BUILDERS[panel](outputs, preset, sizes_note)
            results[result.experiment_id] = result
        return results

    return SweepPlan(
        name="fig3",
        cells=cells,
        finalize=finalize,
        context={"scale": preset.name, "seed": int(rng), "panels": panels},
    )


def run_fig3(
    panels: tuple[str, ...] = FIG3_PANELS,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate the requested Fig. 3 panels.

    Returns ``{panel: ExperimentResult}`` with NRMSE-vs-|S| series (or
    CDFs for panels d/h).
    """
    return run_plan(compile_fig3(panels=panels, preset=preset, rng=rng))


def _configs_needed(panels: tuple[str, ...]) -> set[str]:
    mapping = {
        "a": {"k5", "k49"},
        "e": {"k5", "k49"},
        "b": {"a0", "a1"},
        "f": {"a0", "a1"},
        "c": {"base"},
        "d": {"base"},
        "g": {"base"},
        "h": {"base"},
    }
    needed: set[str] = set()
    for panel in panels:
        needed |= mapping[panel]
    return needed


def _config_cell(key: str, preset: ScalePreset, rng: int) -> SweepCell:
    k, alpha = _CONFIGS[key]
    key_index = list(_CONFIGS).index(key)  # stable across processes

    def build(resources: PlanResources) -> SweepJob:
        config = PlantedModelConfig(k=k, alpha=alpha, scale=preset.planted_scale)
        graph, partition = planted_category_graph(
            config, rng=derive_rng(rng, 3, key_index)
        )
        sizes = _clip_sizes(preset.fig3_sample_sizes, graph.num_nodes, preset)
        return SweepJob(
            graph=graph,
            partition=partition,
            sizes=sizes,
            sampler=UniformIndependenceSampler(graph),
            replications=preset.replications,
            rng=derive_rng(rng, 4, key_index),
        )

    return SweepCell(
        key=key,
        build=build,
        axes={"design": "uis", "k": k, "alpha": alpha, "R": preset.replications},
    )


def _clip_sizes(
    sizes: tuple[int, ...], num_nodes: int, preset: ScalePreset
) -> tuple[int, ...]:
    """Keep the ladder meaningful on scaled-down graphs.

    UIS draws with replacement, so sizes beyond ~3 N add little; the CDF
    sample size must stay included.
    """
    cap = max(3 * num_nodes, 2 * preset.cdf_sample_size)
    kept = tuple(s for s in sizes if s <= cap)
    return tuple(sorted(set(kept) | {preset.cdf_sample_size}))


# ----------------------------------------------------------------------
# Panel builders
# ----------------------------------------------------------------------
def _largest_category(sweep: SweepResult) -> int:
    return int(np.argmax(sweep.truth.sizes))


def _category_near(sweep: SweepResult, target_rank: int) -> int:
    """Category index by ascending-size rank (paper's |C|=500 is rank 3)."""
    order = np.argsort(sweep.truth.sizes)
    return int(order[min(target_rank, len(order) - 1)])


def _size_panel(sweeps, labels_and_configs, category_picker, panel, title, note):
    series = {}
    for label, key in labels_and_configs:
        sweep = sweeps[key]
        cat = category_picker(sweep)
        for kind in ("induced", "star"):
            series[f"{label}/{kind}"] = (
                sweep.sample_sizes,
                sweep.size_nrmse[kind][:, cat],
            )
    return ExperimentResult(
        experiment_id=f"fig3{panel}",
        title=title,
        series=series,
        notes=dict(note),
    )


def _weight_panel(sweeps, labels_and_configs, edge_percentile, panel, title, note):
    series = {}
    for label, key in labels_and_configs:
        sweep = sweeps[key]
        a, b = percentile_edge(sweep.truth, edge_percentile)
        for kind in ("induced", "star"):
            series[f"{label}/{kind}"] = (
                sweep.sample_sizes,
                sweep.weight_nrmse[kind][:, a, b],
            )
    return ExperimentResult(
        experiment_id=f"fig3{panel}",
        title=title,
        series=series,
        notes=dict(note),
    )


def _cdf_panel(sweeps, preset, values_getter, panel, title, note):
    sweep = sweeps["base"]
    si = int(np.argmin(np.abs(sweep.sample_sizes - preset.cdf_sample_size)))
    series = {}
    for kind in ("induced", "star"):
        values = values_getter(sweep, si, kind)
        values = np.sort(values[np.isfinite(values)])
        if len(values) == 0:
            continue
        cdf = np.arange(1, len(values) + 1) / len(values)
        series[kind] = (values, cdf)
    return ExperimentResult(
        experiment_id=f"fig3{panel}",
        title=title,
        series=series,
        notes={**note, "sample_size": int(sweep.sample_sizes[si])},
        log_axes=False,
    )


def _build_a(sweeps, preset, note):
    return _size_panel(
        sweeps,
        [("k=5", "k5"), ("k=49", "k49")],
        _largest_category,
        "a",
        "NRMSE(|A|) vs |S| - alpha=0.5, largest category, k=5 vs 49",
        note,
    )


def _build_b(sweeps, preset, note):
    return _size_panel(
        sweeps,
        [("alpha=0", "a0"), ("alpha=1", "a1")],
        _largest_category,
        "b",
        "NRMSE(|A|) vs |S| - k=20, largest category, alpha=0 vs 1",
        note,
    )


def _build_c(sweeps, preset, note):
    sweep = sweeps["base"]
    small = _category_near(sweep, 3)  # the paper's |C|=500 is rank 3 of 10
    large = _largest_category(sweep)
    series = {}
    for label, cat in (("|C|=small", small), ("|C|=largest", large)):
        for kind in ("induced", "star"):
            series[f"{label}/{kind}"] = (
                sweep.sample_sizes,
                sweep.size_nrmse[kind][:, cat],
            )
    return ExperimentResult(
        experiment_id="fig3c",
        title="NRMSE(|A|) vs |S| - k=20, alpha=0.5, small vs largest category",
        series=series,
        notes=dict(note),
    )


def _build_d(sweeps, preset, note):
    return _cdf_panel(
        sweeps,
        preset,
        lambda sweep, si, kind: sweep.size_nrmse[kind][si],
        "d",
        "CDF of NRMSE(|A|) over the 10 categories at |S|=2000",
        note,
    )


def _build_e(sweeps, preset, note):
    return _weight_panel(
        sweeps,
        [("k=5", "k5"), ("k=49", "k49")],
        75,
        "e",
        "NRMSE(w) vs |S| - alpha=0.5, edge e_high, k=5 vs 49",
        note,
    )


def _build_f(sweeps, preset, note):
    return _weight_panel(
        sweeps,
        [("alpha=0", "a0"), ("alpha=1", "a1")],
        75,
        "f",
        "NRMSE(w) vs |S| - k=20, edge e_high, alpha=0 vs 1",
        note,
    )


def _build_g(sweeps, preset, note):
    sweep = sweeps["base"]
    series = {}
    for label, pct in (("e_low", 25), ("e_high", 75)):
        a, b = percentile_edge(sweep.truth, pct)
        for kind in ("induced", "star"):
            series[f"{label}/{kind}"] = (
                sweep.sample_sizes,
                sweep.weight_nrmse[kind][:, a, b],
            )
    return ExperimentResult(
        experiment_id="fig3g",
        title="NRMSE(w) vs |S| - k=20, alpha=0.5, e_low vs e_high",
        series=series,
        notes=dict(note),
    )


def _build_h(sweeps, preset, note):
    def pair_values(sweep, si, kind):
        matrix = sweep.weight_nrmse[kind][si]
        idx = np.triu_indices(matrix.shape[0], k=1)
        return matrix[idx]

    return _cdf_panel(
        sweeps,
        preset,
        pair_values,
        "h",
        "CDF of NRMSE(w) over all category pairs at |S|=2000",
        note,
    )


_PANEL_BUILDERS = {
    "a": _build_a,
    "b": _build_b,
    "c": _build_c,
    "d": _build_d,
    "e": _build_e,
    "f": _build_f,
    "g": _build_g,
    "h": _build_h,
}
