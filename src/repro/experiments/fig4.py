"""Fig. 4 — estimator NRMSE on the Table 1 empirical graphs.

For each of the four graphs (Facebook New Orleans, Facebook Texas,
Epinions, P2P), categories are the ``top`` largest leading-eigenvector
communities plus a catch-all (the paper's worst case for star
sampling), and samples come from UIS, RW and S-WRW. The top row plots
median NRMSE of the size estimators across categories; the bottom row
the median NRMSE of the weight estimators across category pairs.

The experiment compiles to a (dataset x design) grid of fresh-draw
sweep cells; each dataset stand-in (graph + community partition) is a
plan resource, built once and shared by its three design cells — and
published to worker shards once when the plan runs in parallel. Cells
declare their stand-in via ``needs``, so the DAG scheduler builds the
four datasets concurrently ahead of the cell frontier and starts each
dataset's design cells the moment *its* stand-in is ready.
"""

from __future__ import annotations

from repro.datasets.categories import worst_case_categories
from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import PlanResources, SweepCell, SweepJob, SweepPlan
from repro.rng import derive_rng
from repro.runtime.plan import run_plan
from repro.sampling.independence import UniformIndependenceSampler
from repro.sampling.stratified import StratifiedWeightedWalkSampler
from repro.sampling.walks import RandomWalkSampler

__all__ = ["run_fig4", "compile_fig4", "FIG4_SAMPLERS"]

FIG4_SAMPLERS = ("UIS", "RW", "S-WRW")


def compile_fig4(
    datasets: tuple[str, ...] | None = None,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile Fig. 4 to a (dataset x design) grid of sweep cells."""
    preset = preset or active_preset()
    names = datasets or dataset_names()
    resources = {}
    cells = []
    for di, name in enumerate(names):
        resources[f"dataset:{name}"] = _dataset_resource(name, di, preset, rng)
        for mi, sampler_name in enumerate(FIG4_SAMPLERS):
            cells.append(
                _design_cell(name, di, sampler_name, mi, preset, rng)
            )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        results: dict[str, ExperimentResult] = {}
        for name in names:
            graph, spec, partition, sizes = resources[f"dataset:{name}"]
            size_series: dict[str, tuple] = {}
            weight_series: dict[str, tuple] = {}
            for sampler_name in FIG4_SAMPLERS:
                sweep = outputs[f"{name}/{sampler_name}"]
                for kind in ("induced", "star"):
                    size_series[f"{sampler_name}/{kind}"] = (
                        sweep.sample_sizes,
                        sweep.median_size_nrmse(kind),
                    )
                    weight_series[f"{sampler_name}/{kind}"] = (
                        sweep.sample_sizes,
                        sweep.median_weight_nrmse(kind),
                    )
            note = {
                "dataset": name,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "categories": partition.num_categories,
                "scale": preset.name,
            }
            results[f"fig4_{name}_sizes"] = ExperimentResult(
                experiment_id=f"fig4_{name}_sizes",
                title=f"median NRMSE(|A|) vs |S| on {name} ({spec.description})",
                series=size_series,
                notes=note,
            )
            results[f"fig4_{name}_weights"] = ExperimentResult(
                experiment_id=f"fig4_{name}_weights",
                title=f"median NRMSE(w) vs |S| on {name} ({spec.description})",
                series=weight_series,
                notes=note,
            )
        return results

    return SweepPlan(
        name="fig4",
        cells=tuple(cells),
        finalize=finalize,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng)},
        # finalize reads every stand-in's metadata (nodes/edges/sizes)
        # for the result notes, so resumed plans keep building them.
        finalize_needs=tuple(f"dataset:{name}" for name in names),
    )


def run_fig4(
    datasets: tuple[str, ...] | None = None,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 4.

    Returns two results per dataset: ``fig4_<name>_sizes`` (top row) and
    ``fig4_<name>_weights`` (bottom row), each with one series per
    (sampler, measurement) combination.
    """
    return run_plan(compile_fig4(datasets=datasets, preset=preset, rng=rng))


def _dataset_resource(name: str, di: int, preset: ScalePreset, rng: int):
    def factory():
        graph, spec = load_dataset(
            name, scale=preset.dataset_scale, rng=derive_rng(rng, 40, di)
        )
        partition = worst_case_categories(
            graph, top=preset.community_top, rng=derive_rng(rng, 41, di)
        )
        sizes = tuple(
            s for s in preset.fig4_sample_sizes if s <= 3 * graph.num_nodes
        ) or (graph.num_nodes,)
        return graph, spec, partition, sizes

    return factory


def _design_cell(
    name: str, di: int, sampler_name: str, mi: int, preset: ScalePreset, rng: int
) -> SweepCell:
    def build(resources: PlanResources) -> SweepJob:
        graph, spec, partition, sizes = resources[f"dataset:{name}"]
        return SweepJob(
            graph=graph,
            partition=partition,
            sizes=sizes,
            sampler=_make_sampler(sampler_name, graph, partition),
            replications=preset.replications,
            rng=derive_rng(rng, 42, di * 10 + mi),
        )

    return SweepCell(
        key=f"{name}/{sampler_name}",
        build=build,
        axes={
            "dataset": name,
            "design": sampler_name,
            "R": preset.replications,
        },
        needs=(f"dataset:{name}",),
    )


def _make_sampler(name: str, graph, partition):
    # Samplers are built once per sweep; run_nrmse_sweep's batched
    # engine advances all replicate walks simultaneously.
    if name == "UIS":
        return UniformIndependenceSampler(graph)
    if name == "RW":
        return RandomWalkSampler(graph)
    if name == "S-WRW":
        # Equal category weights, as in the paper's Section 6.3.1
        # ("we use equal category weights for all categories").
        return StratifiedWeightedWalkSampler(graph, partition)
    raise ValueError(f"unknown sampler {name!r}")
