"""Fig. 4 — estimator NRMSE on the Table 1 empirical graphs.

For each of the four graphs (Facebook New Orleans, Facebook Texas,
Epinions, P2P), categories are the ``top`` largest leading-eigenvector
communities plus a catch-all (the paper's worst case for star
sampling), and samples come from UIS, RW and S-WRW. The top row plots
median NRMSE of the size estimators across categories; the bottom row
the median NRMSE of the weight estimators across category pairs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.categories import worst_case_categories
from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.rng import derive_rng
from repro.sampling.independence import UniformIndependenceSampler
from repro.sampling.stratified import StratifiedWeightedWalkSampler
from repro.sampling.walks import RandomWalkSampler
from repro.stats.replication import run_nrmse_sweep

__all__ = ["run_fig4", "FIG4_SAMPLERS"]

FIG4_SAMPLERS = ("UIS", "RW", "S-WRW")


def run_fig4(
    datasets: tuple[str, ...] | None = None,
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 4.

    Returns two results per dataset: ``fig4_<name>_sizes`` (top row) and
    ``fig4_<name>_weights`` (bottom row), each with one series per
    (sampler, measurement) combination.
    """
    preset = preset or active_preset()
    names = datasets or dataset_names()
    results: dict[str, ExperimentResult] = {}
    for di, name in enumerate(names):
        graph, spec = load_dataset(
            name, scale=preset.dataset_scale, rng=derive_rng(rng, 40, di)
        )
        partition = worst_case_categories(
            graph, top=preset.community_top, rng=derive_rng(rng, 41, di)
        )
        sizes = tuple(
            s for s in preset.fig4_sample_sizes if s <= 3 * graph.num_nodes
        ) or (graph.num_nodes,)
        size_series: dict[str, tuple] = {}
        weight_series: dict[str, tuple] = {}
        for mi, sampler_name in enumerate(FIG4_SAMPLERS):
            factory = _sampler_factory(sampler_name, graph, partition)
            sweep = run_nrmse_sweep(
                graph,
                partition,
                factory,
                sizes,
                replications=preset.replications,
                rng=derive_rng(rng, 42, di * 10 + mi),
            )
            for kind in ("induced", "star"):
                size_series[f"{sampler_name}/{kind}"] = (
                    sweep.sample_sizes,
                    sweep.median_size_nrmse(kind),
                )
                weight_series[f"{sampler_name}/{kind}"] = (
                    sweep.sample_sizes,
                    sweep.median_weight_nrmse(kind),
                )
        note = {
            "dataset": name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "categories": partition.num_categories,
            "scale": preset.name,
        }
        results[f"fig4_{name}_sizes"] = ExperimentResult(
            experiment_id=f"fig4_{name}_sizes",
            title=f"median NRMSE(|A|) vs |S| on {name} ({spec.description})",
            series=size_series,
            notes=note,
        )
        results[f"fig4_{name}_weights"] = ExperimentResult(
            experiment_id=f"fig4_{name}_weights",
            title=f"median NRMSE(w) vs |S| on {name} ({spec.description})",
            series=weight_series,
            notes=note,
        )
    return results


def _sampler_factory(name: str, graph, partition):
    # Samplers are built once per sweep; run_nrmse_sweep's batched
    # engine advances all replicate walks simultaneously.
    if name == "UIS":
        return UniformIndependenceSampler(graph)
    if name == "RW":
        return RandomWalkSampler(graph)
    if name == "S-WRW":
        # Equal category weights, as in the paper's Section 6.3.1
        # ("we use equal category weights for all categories").
        return StratifiedWeightedWalkSampler(graph, partition)
    raise ValueError(f"unknown sampler {name!r}")
