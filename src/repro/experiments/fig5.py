"""Fig. 5 — number of samples per category in the Facebook crawls.

The paper plots, for each crawl dataset, the (sorted) number of draws
landing in each regional network (2009, top) or college (2010, bottom),
showing (i) decades of spread across categories and (ii) S-WRW's
order-of-magnitude boost of small-college coverage over RW.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.shared import build_world_and_crawls

__all__ = ["run_fig5"]


def run_fig5(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 5(a) (2009 regions) and 5(b) (2010 colleges)."""
    preset = preset or active_preset()
    world, datasets = build_world_and_crawls(preset, rng)
    results: dict[str, ExperimentResult] = {}
    for panel, year, partition, catchall in (
        ("a", 2009, world.regions_2009, world.undeclared_index),
        ("b", 2010, world.colleges_2010, world.none_college_index),
    ):
        series = {}
        for name, dataset in datasets.items():
            if dataset.year != year:
                continue
            counts = np.zeros(partition.num_categories, dtype=np.int64)
            for walk in dataset.walks:
                np.add.at(counts, partition.labels[walk.nodes], 1)
            per_category = np.delete(counts, catchall)
            ordered = np.sort(per_category)[::-1].astype(float)
            ranks = np.arange(1, len(ordered) + 1, dtype=float)
            series[name] = (ranks, ordered)
        results[f"fig5{panel}"] = ExperimentResult(
            experiment_id=f"fig5{panel}",
            title=f"samples per category (sorted), {year} datasets",
            series=series,
            notes={
                "categories": partition.num_categories - 1,
                "scale": preset.name,
            },
            log_axes=True,
        )
    return results
