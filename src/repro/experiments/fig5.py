"""Fig. 5 — number of samples per category in the Facebook crawls.

The paper plots, for each crawl dataset, the (sorted) number of draws
landing in each regional network (2009, top) or college (2010, bottom),
showing (i) decades of spread across categories and (ii) S-WRW's
order-of-magnitude boost of small-college coverage over RW.

Compiles to one compute cell per panel over the shared Facebook-world
plan resource (no replicated sweeps — the counts are a single pass over
the pre-drawn walks).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import ComputeCell, PlanResources, SweepPlan
from repro.experiments.shared import build_world_and_crawls, year_partition
from repro.runtime.plan import run_plan

__all__ = ["run_fig5", "compile_fig5"]

_PANELS = (
    ("a", 2009),
    ("b", 2010),
)


def compile_fig5(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile Fig. 5 to one compute cell per panel."""
    preset = preset or active_preset()
    resources = {"world": lambda: build_world_and_crawls(preset, rng)}
    cells = tuple(
        ComputeCell(
            key=f"fig5{panel}",
            compute=_panel_builder(panel, year, preset),
            axes={"panel": panel, "year": year},
            needs=("world",),
        )
        for panel, year in _PANELS
    )

    # Each compute cell already produces its finished panel result, so
    # the default identity finalize applies.
    return SweepPlan(
        name="fig5",
        cells=cells,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng)},
    )


def run_fig5(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 5(a) (2009 regions) and 5(b) (2010 colleges)."""
    return run_plan(compile_fig5(preset=preset, rng=rng))


def _panel_builder(panel: str, year: int, preset: ScalePreset):
    def compute(resources: PlanResources) -> ExperimentResult:
        world, datasets = resources["world"]
        partition, catchall = year_partition(world, year)
        series = {}
        for name, dataset in datasets.items():
            if dataset.year != year:
                continue
            counts = np.zeros(partition.num_categories, dtype=np.int64)
            for walk in dataset.walks:
                np.add.at(counts, partition.labels[walk.nodes], 1)
            per_category = np.delete(counts, catchall)
            ordered = np.sort(per_category)[::-1].astype(float)
            ranks = np.arange(1, len(ordered) + 1, dtype=float)
            series[name] = (ranks, ordered)
        return ExperimentResult(
            experiment_id=f"fig5{panel}",
            title=f"samples per category (sorted), {year} datasets",
            series=series,
            notes={
                "categories": partition.num_categories - 1,
                "scale": preset.name,
            },
            log_axes=True,
        )

    return compute
