"""Fig. 6 — estimation error on the Facebook crawls.

Panels (a)/(b): median NRMSE of category-size estimates vs |S| for the
100 most popular 2009 regions / the 2010 colleges, per crawl dataset.
Panels (c)/(d): the same for edge weights.

The paper used the cross-sample average as "ground truth" (it had no
oracle); our substrate is synthetic so we score against *true* values
by default, and optionally reproduce the paper's convention.

The experiment compiles to one *pre-drawn* sweep cell per crawl
dataset: the synthetic world and its five simulated crawl collections
(:func:`~repro.experiments.shared.build_world_and_crawls`) are a plan
resource built once and shared by every cell — and published to worker
shards once via shared memory when the plan runs in parallel. Each
cell's replicate walks resolve their size ladder through incremental
prefix aggregates (``ladder="incremental"``, the
:func:`~repro.stats.replication.run_nrmse_sweep_from_samples` default).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import PlanResources, SweepCell, SweepJob, SweepPlan
from repro.experiments.shared import build_world_and_crawls, year_partition
from repro.runtime.plan import run_plan

__all__ = ["run_fig6", "compile_fig6"]

#: Crawl dataset -> category year, in series order.
_DATASETS = {
    "MHRW09": 2009,
    "RW09": 2009,
    "UIS09": 2009,
    "RW10": 2010,
    "S-WRW10": 2010,
}

_YEARS = (
    (2009, "a", "c"),
    (2010, "b", "d"),
)


def compile_fig6(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile Fig. 6 to one pre-drawn sweep cell per crawl dataset."""
    preset = preset or active_preset()
    resources = {"world": lambda: build_world_and_crawls(preset, rng)}
    cells = tuple(
        _dataset_cell(name, year, preset) for name, year in _DATASETS.items()
    )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        world, datasets = resources["world"]
        results: dict[str, ExperimentResult] = {}
        for year, size_panel, weight_panel in _YEARS:
            partition, catchall = year_partition(world, year)
            # "100 most popular" categories, excluding the catch-all.
            true_sizes = partition.sizes().astype(float)
            true_sizes[catchall] = -1
            top = np.argsort(-true_sizes)[: preset.top_categories]
            top = top[true_sizes[top] > 0]
            pairs = _positive_pairs(world, partition, top)

            size_series, weight_series = {}, {}
            for name, dataset_year in _DATASETS.items():
                if dataset_year != year:
                    continue
                sweep = outputs[name]
                for kind in ("induced", "star"):
                    size_series[f"{name}/{kind}"] = (
                        sweep.sample_sizes,
                        sweep.median_size_nrmse(kind, categories=top),
                    )
                    weight_series[f"{name}/{kind}"] = (
                        sweep.sample_sizes,
                        sweep.median_weight_nrmse(kind, pairs=pairs),
                    )
            note = {
                "year": year,
                "top_categories": len(top),
                "scored_pairs": len(pairs),
                "scale": preset.name,
            }
            results[f"fig6{size_panel}"] = ExperimentResult(
                experiment_id=f"fig6{size_panel}",
                title=f"median NRMSE(|A|) vs |S|, {year} categories",
                series=size_series,
                notes=note,
            )
            results[f"fig6{weight_panel}"] = ExperimentResult(
                experiment_id=f"fig6{weight_panel}",
                title=f"median NRMSE(w) vs |S|, {year} categories",
                series=weight_series,
                notes=note,
            )
        return results

    return SweepPlan(
        name="fig6",
        cells=cells,
        finalize=finalize,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng)},
        # finalize re-derives the scored categories/pairs from the
        # world, so even a fully rung-cached resume still builds it.
        finalize_needs=("world",),
    )


def run_fig6(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 6 panels a-d."""
    return run_plan(compile_fig6(preset=preset, rng=rng))


def _dataset_cell(name: str, year: int, preset: ScalePreset) -> SweepCell:
    def build(resources: PlanResources) -> SweepJob:
        world, datasets = resources["world"]
        dataset = datasets[name]
        partition, _ = year_partition(world, year)
        max_size = min(walk.size for walk in dataset.walks)
        sizes = tuple(
            s for s in preset.fig6_sample_sizes if s <= max_size
        ) or (max_size,)
        return SweepJob(
            graph=world.graph,
            partition=partition,
            sizes=sizes,
            samples=dataset.walks,
        )

    return SweepCell(
        key=name,
        build=build,
        axes={"crawl": name, "year": year, "mode": "predrawn"},
        needs=("world",),
    )


def _positive_pairs(world, partition, top: np.ndarray) -> np.ndarray:
    """Estimable pairs among the top categories.

    Pairs with positive true weight, restricted to the top quartile of
    weights: at laptop-scale sample sizes the bottom quartiles are so
    sparse that the degenerate all-zeros "estimator" scores best, which
    says nothing about induced-vs-star. (The paper's full-size walks
    sidestep this by sheer volume; its Fig. 6(c) y-axis spans 1e0-1e3.)
    """
    from repro.graph.category_graph import true_category_graph

    truth = true_category_graph(world.graph, partition)
    pairs, cuts = [], []
    for i, a in enumerate(top):
        for b in top[i + 1 :]:
            w = truth.weights[a, b]
            if np.isfinite(w) and w > 0:
                pairs.append((int(a), int(b)))
                cuts.append(float(truth.cuts[a, b]))
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if len(pairs) > 8:
        # Rank by cut size |E_{A,B}| (the number of observable edges),
        # not by weight: high-weight pairs are pairs of tiny categories,
        # which no laptop-sized sample can see at all.
        threshold = np.percentile(cuts, 75)
        pairs = pairs[np.asarray(cuts) >= threshold]
    return pairs
