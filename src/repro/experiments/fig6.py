"""Fig. 6 — estimation error on the Facebook crawls.

Panels (a)/(b): median NRMSE of category-size estimates vs |S| for the
100 most popular 2009 regions / the 2010 colleges, per crawl dataset.
Panels (c)/(d): the same for edge weights.

The paper used the cross-sample average as "ground truth" (it had no
oracle); our substrate is synthetic so we score against *true* values
by default, and optionally reproduce the paper's convention.

The walks come pre-drawn from the batched crawl simulator
(:mod:`repro.facebook.crawls`) and each sweep resolves its size ladder
through incremental prefix aggregates (``ladder="incremental"``, the
:func:`~repro.stats.replication.run_nrmse_sweep_from_samples` default).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.shared import build_world_and_crawls
from repro.stats.replication import run_nrmse_sweep_from_samples

__all__ = ["run_fig6"]


def run_fig6(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 6 panels a-d."""
    preset = preset or active_preset()
    world, datasets = build_world_and_crawls(preset, rng)
    results: dict[str, ExperimentResult] = {}

    for year, partition, catchall, size_panel, weight_panel in (
        (2009, world.regions_2009, world.undeclared_index, "a", "c"),
        (2010, world.colleges_2010, world.none_college_index, "b", "d"),
    ):
        # "100 most popular" categories, excluding the catch-all.
        true_sizes = partition.sizes().astype(float)
        true_sizes[catchall] = -1
        top = np.argsort(-true_sizes)[: preset.top_categories]
        top = top[true_sizes[top] > 0]
        pairs = _positive_pairs(world, partition, top)

        size_series, weight_series = {}, {}
        for name, dataset in datasets.items():
            if dataset.year != year:
                continue
            max_size = min(walk.size for walk in dataset.walks)
            sizes = tuple(
                s for s in preset.fig6_sample_sizes if s <= max_size
            ) or (max_size,)
            sweep = run_nrmse_sweep_from_samples(
                world.graph, partition, dataset.walks, sizes
            )
            for kind in ("induced", "star"):
                size_series[f"{name}/{kind}"] = (
                    sweep.sample_sizes,
                    sweep.median_size_nrmse(kind, categories=top),
                )
                weight_series[f"{name}/{kind}"] = (
                    sweep.sample_sizes,
                    sweep.median_weight_nrmse(kind, pairs=pairs),
                )
        note = {
            "year": year,
            "top_categories": len(top),
            "scored_pairs": len(pairs),
            "scale": preset.name,
        }
        results[f"fig6{size_panel}"] = ExperimentResult(
            experiment_id=f"fig6{size_panel}",
            title=f"median NRMSE(|A|) vs |S|, {year} categories",
            series=size_series,
            notes=note,
        )
        results[f"fig6{weight_panel}"] = ExperimentResult(
            experiment_id=f"fig6{weight_panel}",
            title=f"median NRMSE(w) vs |S|, {year} categories",
            series=weight_series,
            notes=note,
        )
    return results


def _positive_pairs(world, partition, top: np.ndarray) -> np.ndarray:
    """Estimable pairs among the top categories.

    Pairs with positive true weight, restricted to the top quartile of
    weights: at laptop-scale sample sizes the bottom quartiles are so
    sparse that the degenerate all-zeros "estimator" scores best, which
    says nothing about induced-vs-star. (The paper's full-size walks
    sidestep this by sheer volume; its Fig. 6(c) y-axis spans 1e0-1e3.)
    """
    from repro.graph.category_graph import true_category_graph

    truth = true_category_graph(world.graph, partition)
    pairs, cuts = [], []
    for i, a in enumerate(top):
        for b in top[i + 1 :]:
            w = truth.weights[a, b]
            if np.isfinite(w) and w > 0:
                pairs.append((int(a), int(b)))
                cuts.append(float(truth.cuts[a, b]))
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if len(pairs) > 8:
        # Rank by cut size |E_{A,B}| (the number of observable edges),
        # not by weight: high-weight pairs are pairs of tiny categories,
        # which no laptop-sized sample can see at all.
        threshold = np.percentile(cuts, 75)
        pairs = pairs[np.asarray(cuts) >= threshold]
    return pairs
