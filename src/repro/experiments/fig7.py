"""Fig. 7 — the geosocial category graphs (www.geosocialmap.com data).

Regenerates the three published maps from simulated crawls:

* (a) country-to-country friendship graph;
* (b) North-America (US/Canada county-level) graph;
* (c) college-to-college graph (from S-WRW10).

Each result carries the top-weighted edges as a table, a JSON export of
the full weighted graph, and the distance-vs-weight rank correlation
that formalises the paper's visual "physical distance matters" claims.

Compiles to one compute cell per map panel over the shared
Facebook-world plan resource.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import ComputeCell, PlanResources, SweepPlan
from repro.experiments.shared import build_world_and_crawls
from repro.facebook.geosocial import (
    country_partition,
    distance_weight_correlation,
    estimate_college_graph,
    estimate_country_graph,
    estimate_north_america_graph,
)
from repro.graph.category_graph import true_category_graph
from repro.graph.io import category_graph_to_json
from repro.runtime.plan import run_plan

__all__ = ["run_fig7", "compile_fig7"]


def compile_fig7(
    preset: ScalePreset | None = None,
    rng: int = 0,
    top_edges: int = 15,
) -> SweepPlan:
    """Compile Fig. 7 to one compute cell per published map."""
    preset = preset or active_preset()
    resources = {"world": lambda: build_world_and_crawls(preset, rng)}

    def panel_a(resources: PlanResources) -> ExperimentResult:
        world, datasets = resources["world"]
        countries = estimate_country_graph(world, datasets)
        country_pos = _country_positions(world, countries.names)
        corr_a = distance_weight_correlation(world, countries, country_pos)
        truth_a = true_category_graph(world.graph, country_partition(world))
        return _result(
            "fig7a",
            "country-to-country friendship graph",
            countries,
            top_edges,
            {
                "distance_weight_rank_corr": round(corr_a, 3),
                "true_corr": round(
                    distance_weight_correlation(world, truth_a, country_pos), 3
                ),
            },
        )

    def panel_b(resources: PlanResources) -> ExperimentResult:
        world, datasets = resources["world"]
        north_america = estimate_north_america_graph(world, datasets)
        na_pos = _region_positions(world, north_america.names)
        corr_b = distance_weight_correlation(world, north_america, na_pos)
        return _result(
            "fig7b",
            "North-America county-level friendship graph",
            north_america,
            top_edges,
            {"distance_weight_rank_corr": round(corr_b, 3)},
        )

    def panel_c(resources: PlanResources) -> ExperimentResult:
        world, datasets = resources["world"]
        colleges = estimate_college_graph(world, datasets)
        college_pos = _college_positions(world, colleges.names)
        corr_c = distance_weight_correlation(world, colleges, college_pos)
        return _result(
            "fig7c",
            "college-to-college friendship graph (S-WRW10)",
            colleges,
            top_edges,
            {"distance_weight_rank_corr": round(corr_c, 3)},
        )

    cells = tuple(
        ComputeCell(
            key=key, compute=compute, axes={"panel": key[-1]}, needs=("world",)
        )
        for key, compute in (
            ("fig7a", panel_a),
            ("fig7b", panel_b),
            ("fig7c", panel_c),
        )
    )

    # Each compute cell already produces its finished map result, so
    # the default identity finalize applies.
    return SweepPlan(
        name="fig7",
        cells=cells,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng), "top_edges": top_edges},
    )


def run_fig7(
    preset: ScalePreset | None = None,
    rng: int = 0,
    top_edges: int = 15,
) -> dict[str, ExperimentResult]:
    """Regenerate Fig. 7 panels a-c."""
    return run_plan(
        compile_fig7(preset=preset, rng=rng, top_edges=top_edges)
    )


def _result(experiment_id, title, category_graph, top_edges, extra_notes):
    rows = [
        (a, b, round(w, 6))
        for a, b, w in category_graph.top_edges(top_edges)
    ]
    notes = {
        "categories": category_graph.num_categories,
        "edges": category_graph.num_edges(),
        "geosocialmap_json_bytes": len(category_graph_to_json(category_graph)),
        **extra_notes,
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        table=(("category A", "category B", "estimated w(A,B)"), rows),
        notes=notes,
    )


def _country_positions(world, names) -> np.ndarray:
    positions = np.full(len(names), np.nan)
    country_pos = {}
    for r, country in enumerate(world.region_country):
        code = world.country_names[country]
        country_pos.setdefault(code, float(world.region_position[r]))
    for i, name in enumerate(names):
        if name in country_pos:
            positions[i] = country_pos[name]
    return positions


def _region_positions(world, names) -> np.ndarray:
    positions = np.full(len(names), np.nan)
    lookup = {
        f"{world.country_names[world.region_country[r]]}.r{r}": float(
            world.region_position[r]
        )
        for r in range(len(world.region_country))
    }
    for i, name in enumerate(names):
        if name in lookup:
            positions[i] = lookup[name]
    return positions


def _college_positions(world, names) -> np.ndarray:
    country_first_pos: dict[int, float] = {}
    for r, country in enumerate(world.region_country):
        country_first_pos.setdefault(int(country), float(world.region_position[r]))
    positions = np.full(len(names), np.nan)
    for g in range(len(world.college_country)):
        name = f"College{g}_{world.country_names[world.college_country[g]]}"
        if name in names:
            positions[names.index(name)] = country_first_pos[
                int(world.college_country[g])
            ]
    return positions
