"""Declarative sweep plans — the experiments layer's compile target.

Every paper artifact (Figs. 3-7, Tables 1/2, the ablations) is some
grid of *scenario cells*: a substrate (generator output, empirical
stand-in, or the synthetic Facebook world), a partition into
categories, a sampling design, a budget ladder of sample sizes, a
replication count, and whether the replicate samples are drawn fresh or
come pre-drawn as simulated crawls. Instead of each experiment module
hand-rolling a serial loop over its grid, it **compiles** a
:class:`SweepPlan`: a flat tuple of cells plus a ``finalize`` step that
assembles the per-cell outputs into the familiar
:class:`~repro.experiments.base.ExperimentResult` objects.

The plan is *data*; executing it is the job of the runtime
(:func:`repro.runtime.plan.run_plan`), which schedules every
:class:`SweepCell` through the parallel sweep executor (workers,
shared-memory substrate publication, manifest-keyed checkpoints) and
runs :class:`ComputeCell` steps in-process. The split buys three things
at once:

* every replicated sweep in the reproduction — fresh-draw *and*
  pre-drawn — rides the same worker pool with the same bit-identical
  determinism contract;
* heavy shared inputs (``shared.build_world_and_crawls``) become named
  plan *resources*, built once per plan run and published to worker
  shards once via shared memory;
* a killed ``repro experiment <name> --resume`` restarts at the first
  missing cell/rung, because each cell checkpoints under a plan-keyed
  directory (:class:`repro.runtime.checkpoint.PlanCheckpoint`).

Cells and the finalize step **declare** which resources they read
(``needs=`` / ``finalize_needs=``), so a compiled plan is a dependency
DAG, not just a list: the DAG scheduler
(:mod:`repro.runtime.scheduler`) builds resources concurrently ahead of
the cell frontier and overlaps independent cells on one persistent
worker pool. The declaration is about *scheduling*, never correctness —
:class:`PlanResources` is thread-safe and builds any undeclared
resource on first access; a declared-but-unused resource merely builds
early.

Cells are independent by construction (each derives its own RNG stream
via :func:`repro.rng.derive_rng` keying), so cell order never affects
any output — only the wall-clock schedule.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResult
    from repro.graph.adjacency import Graph
    from repro.graph.partition import CategoryPartition
    from repro.sampling.base import NodeSample, Sampler

__all__ = [
    "SweepJob",
    "SweepCell",
    "ComputeCell",
    "SweepPlan",
    "PlanResources",
]


@dataclass(frozen=True)
class SweepJob:
    """One fully-resolved replicated NRMSE sweep (a cell's payload).

    Exactly one of ``sampler`` (fresh-draw mode: ``replications``
    spawned streams draw through the batched engine) or ``samples``
    (pre-drawn mode: the replicate crawls already exist) must be set.
    The remaining knobs mirror
    :func:`repro.stats.replication.run_nrmse_sweep` /
    :func:`~repro.stats.replication.run_nrmse_sweep_from_samples`
    one-for-one, so a compiled cell runs the *identical* floating-point
    program the old inline loop ran.
    """

    graph: "Graph"
    partition: "CategoryPartition"
    sizes: tuple[int, ...]
    #: Fresh-draw mode: the sampler plus per-sweep replication knobs.
    sampler: "Sampler | None" = None
    replications: int | None = None
    rng: object = None
    #: Pre-drawn mode: the replicate samples (e.g. simulated crawls).
    samples: "Sequence[NodeSample] | None" = None
    weight_size_plugin: str = "star"
    mean_degree_model: str = "per-category"
    truth_mode: str = "exact"

    def __post_init__(self) -> None:
        fresh = self.sampler is not None
        predrawn = self.samples is not None
        if fresh == predrawn:
            raise ExperimentError(
                "a SweepJob needs exactly one of sampler= (fresh draws) "
                "or samples= (pre-drawn replicates)"
            )
        if fresh and self.replications is None:
            raise ExperimentError("fresh-draw SweepJobs need replications=")
        if fresh and self.rng is None:
            # ensure_rng(None) would seed from OS entropy — silently
            # breaking the plan layer's bit-identical/resumable contract.
            raise ExperimentError(
                "fresh-draw SweepJobs need rng= (a seed or Generator); "
                "plans must be deterministic to be resumable"
            )
        if fresh and self.truth_mode != "exact":
            # run_nrmse_sweep has no truth_mode knob; accepting one here
            # would silently score the cell against the wrong truth.
            raise ExperimentError(
                "truth_mode is a pre-drawn knob; fresh-draw sweeps always "
                "score against exact truth"
            )

    @property
    def mode(self) -> str:
        """``"fresh"`` or ``"predrawn"``."""
        return "fresh" if self.sampler is not None else "predrawn"


@dataclass(frozen=True)
class SweepCell:
    """One sweep of the plan's scenario grid.

    ``build`` resolves the declarative cell into a concrete
    :class:`SweepJob` — constructing generators, loading dataset
    stand-ins, or pulling pre-drawn crawls out of the plan's shared
    resources. Resolution is deferred so heavy inputs stay shared
    through :class:`PlanResources` instead of being captured per cell.
    ``needs`` names the plan resources ``build`` reads; the DAG
    scheduler holds the cell until they are built (and uses the
    declaration to decide which resources a resumed plan still needs
    at all — a fully rung-cached cell replays from its checkpoint
    without ``build`` ever running).
    """

    key: str
    build: "Callable[[PlanResources], SweepJob]"
    #: Free-form scenario coordinates (design, budget, partition, ...);
    #: purely descriptive — shown by ``repro experiment --show-plan``.
    axes: Mapping[str, object] = field(default_factory=dict)
    #: Names of the plan resources ``build`` reads (the cell's inbound
    #: DAG edges). Declarative only: undeclared access still works.
    needs: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """Short human label for telemetry spans and logs (the key)."""
        return self.key


@dataclass(frozen=True)
class ComputeCell:
    """A non-sweep step (dataset summaries, map estimates, ACF tables).

    Runs in the parent process — these steps are cheap relative to the
    replicated sweeps and keep the whole experiment inside one plan, so
    ``repro experiment <name>`` covers tables and maps too. ``needs``
    declares the resources ``compute`` reads, exactly as for
    :class:`SweepCell`.
    """

    key: str
    compute: "Callable[[PlanResources], object]"
    axes: Mapping[str, object] = field(default_factory=dict)
    needs: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """Short human label for telemetry spans and logs (the key)."""
        return self.key


@dataclass(frozen=True)
class SweepPlan:
    """A compiled experiment: resources, cells, and a finalize step.

    Attributes
    ----------
    name:
        The experiment id the plan was compiled from (``"fig6"``, ...).
    resources:
        Named factories for heavy shared inputs. Each factory runs at
        most once per plan execution (see :class:`PlanResources`); the
        runtime publishes any arrays they produce to worker shards once
        via shared memory.
    cells:
        The scenario grid, flattened. :class:`SweepCell` entries run
        through the parallel sweep executor; :class:`ComputeCell`
        entries run in-process.
    finalize:
        ``(outputs, resources) -> {id: ExperimentResult}`` where
        ``outputs`` maps every cell key to its output
        (:class:`~repro.stats.replication.SweepResult` for sweep cells,
        the ``compute`` return value otherwise). ``None`` (the default)
        passes the cell outputs through unchanged — for plans whose
        compute cells already produce finished results keyed by id.
    context:
        Output-determining compile inputs beyond the cell grid — at
        minimum the scale preset name and the master seed. Folded into
        the plan checkpoint manifest so runs of the same experiment at
        different scales/seeds never share (or clear) each other's
        checkpoint directories.
    finalize_needs:
        Names of the plan resources ``finalize`` reads. The DAG
        scheduler uses this to keep building resources a resumed plan
        still needs even when every cell that declared them was
        replayed from its checkpoint.
    """

    name: str
    cells: "tuple[SweepCell | ComputeCell, ...]"
    finalize: "Callable[[dict[str, object], PlanResources], dict[str, ExperimentResult]] | None" = None
    resources: Mapping[str, Callable[[], object]] = field(default_factory=dict)
    context: Mapping[str, object] = field(default_factory=dict)
    finalize_needs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        keys = [cell.key for cell in self.cells]
        if len(set(keys)) != len(keys):
            raise ExperimentError(
                f"plan {self.name!r} has duplicate cell keys: {sorted(keys)}"
            )
        known = set(self.resources)
        for cell in self.cells:
            unknown = set(cell.needs) - known
            if unknown:
                raise ExperimentError(
                    f"plan {self.name!r} cell {cell.key!r} needs undeclared "
                    f"resources: {sorted(unknown)}"
                )
        unknown = set(self.finalize_needs) - known
        if unknown:
            raise ExperimentError(
                f"plan {self.name!r} finalize needs undeclared resources: "
                f"{sorted(unknown)}"
            )

    def finalize_outputs(
        self, outputs: dict[str, object], resources: "PlanResources"
    ) -> "dict[str, ExperimentResult]":
        """Apply ``finalize`` (identity pass-through when unset)."""
        if self.finalize is None:
            return dict(outputs)
        return self.finalize(outputs, resources)

    @property
    def sweep_cells(self) -> "tuple[SweepCell, ...]":
        """The cells that run through the sweep executor."""
        return tuple(c for c in self.cells if isinstance(c, SweepCell))

    def describe(self) -> str:
        """Render the plan's DAG (``repro experiment --show-plan``).

        Resources first (the scheduler builds them concurrently, ahead
        of the cell frontier), then every cell with its kind, axes, and
        inbound ``<-`` resource edges, then the finalize step's edges.
        Cells with no ``<-`` line are roots: ready the moment the plan
        starts.
        """
        header = f"plan {self.name}: {len(self.cells)} cells"
        if self.resources:
            header += (
                f", {len(self.resources)} resource"
                + ("s" if len(self.resources) != 1 else "")
            )
        lines = [header]
        for name in self.resources:
            lines.append(f"  [resource] {name}")
        for cell in self.cells:
            kind = "sweep" if isinstance(cell, SweepCell) else "compute"
            axes = ", ".join(f"{k}={v}" for k, v in cell.axes.items())
            line = f"  [{kind}] {cell.key}" + (f"  ({axes})" if axes else "")
            if cell.needs:
                line += "  <- " + ", ".join(cell.needs)
            lines.append(line)
        if self.finalize_needs:
            lines.append("  [finalize] <- " + ", ".join(self.finalize_needs))
        return "\n".join(lines)


class PlanResources:
    """Lazily-built, memoized view of a plan's named resources.

    Cell builders and ``finalize`` receive one instance per plan run;
    the first access to a name invokes its factory, later accesses
    return the same object — which is what lets the runtime's
    shared-memory pool publish each resource's arrays exactly once for
    the whole plan (publication deduplicates by object identity).

    Thread-safe with single-build semantics: under the DAG scheduler,
    resource prefetch threads and cell driver threads race on first
    access, and every racer must receive the *same* object (two copies
    of a world would be published twice and could, in principle, even
    differ). The first accessor builds while later ones block on the
    name's event; a factory failure is re-raised to every waiter.
    """

    def __init__(self, factories: Mapping[str, Callable[[], object]]):
        self._factories = dict(factories)
        self._built: dict[str, object] = {}
        self._failed: dict[str, BaseException] = {}
        self._events: dict[str, threading.Event] = {}
        self._lock = threading.Lock()

    def __getitem__(self, name: str) -> object:
        with self._lock:
            if name in self._built:
                return self._built[name]
            if name in self._failed:
                raise self._failed[name]
            if name not in self._factories:
                raise ExperimentError(
                    f"unknown plan resource {name!r}; "
                    f"available: {', '.join(sorted(self._factories)) or 'none'}"
                )
            event = self._events.get(name)
            builder = event is None
            if builder:
                event = self._events[name] = threading.Event()
        if not builder:
            event.wait()
            with self._lock:
                if name in self._built:
                    return self._built[name]
                raise self._failed[name]
        try:
            value = self._factories[name]()
        except BaseException as error:
            with self._lock:
                self._failed[name] = error
            event.set()
            raise
        with self._lock:
            self._built[name] = value
        event.set()
        return value

    def __contains__(self, name: str) -> bool:
        return name in self._factories
