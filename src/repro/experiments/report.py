"""Full reproduction report: run everything, write one markdown file.

``repro report --out results/`` (or :func:`generate_report`) runs every
registered experiment at the active scale, saves each result's CSV/JSON
series, and assembles a single ``REPORT.md`` with the rendered tables
and charts — a self-contained artifact for sharing a reproduction run.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments import (
    ExperimentResult,
    ScalePreset,
    active_preset,
    experiment_ids,
    run_experiment,
)

__all__ = ["generate_report", "REPORT_EXPERIMENTS"]

#: Experiments included in the full report ("fig3" covers its panels).
REPORT_EXPERIMENTS = (
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
)


def generate_report(
    directory: "str | Path",
    preset: ScalePreset | None = None,
    rng: int = 0,
    experiments: tuple[str, ...] = REPORT_EXPERIMENTS,
) -> Path:
    """Run ``experiments`` and write ``REPORT.md`` (plus per-result data).

    Returns the path of the written report.
    """
    preset = preset or active_preset()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"- scale preset: `{preset.name}`",
        f"- master seed: `{rng}`",
        f"- generated: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        "",
        "Regenerate any section with `repro run <id>`; see EXPERIMENTS.md "
        "for the paper-vs-measured discussion.",
        "",
    ]
    for experiment in experiments:
        if experiment not in experiment_ids():
            raise ValueError(f"unknown experiment {experiment!r}")
        started = time.time()
        results = run_experiment(experiment, preset=preset, rng=rng)
        elapsed = time.time() - started
        sections.append(f"## {experiment}  ({elapsed:.1f}s)")
        sections.append("")
        for result in results.values():
            result.save(directory)
            sections.append("```")
            sections.append(result.render())
            sections.append("```")
            sections.append("")
    report_path = directory / "REPORT.md"
    report_path.write_text("\n".join(sections))
    return report_path
