"""Shared (cached) heavy inputs for the Facebook experiments.

Table 2 and Figs. 5-7 all need the same synthetic world and simulated
crawls; building them once per (preset, seed) keeps the bench suite
fast without hiding any state inside the drivers. The crawls themselves
are drawn through the batched multi-walker engine
(:mod:`repro.sampling.batch`): each dataset's walks advance as one
vectorized frontier, with per-walk RNG streams preserving independence.
"""

from __future__ import annotations

import functools

from repro.experiments.config import ScalePreset
from repro.facebook.crawls import CrawlDataset, simulate_crawl_datasets
from repro.facebook.model import (
    FacebookModelConfig,
    FacebookWorld,
    build_facebook_world,
)
from repro.rng import derive_rng

__all__ = ["build_world_and_crawls", "year_partition"]


@functools.lru_cache(maxsize=4)
def _cached(preset_name: str, facebook_scale: int, walks_2009: int,
            walks_2010: int, samples_per_walk: int, rng: int):
    world = build_facebook_world(
        FacebookModelConfig(scale=facebook_scale), rng=derive_rng(rng, 70)
    )
    datasets = simulate_crawl_datasets(
        world,
        samples_per_walk=samples_per_walk,
        num_walks_2009=walks_2009,
        num_walks_2010=walks_2010,
        rng=derive_rng(rng, 71),
    )
    return world, datasets


def build_world_and_crawls(
    preset: ScalePreset, rng: int = 0
) -> tuple[FacebookWorld, dict[str, CrawlDataset]]:
    """The synthetic world plus all five Table 2 crawl datasets."""
    return _cached(
        preset.name,
        preset.facebook_scale,
        preset.walks_2009,
        preset.walks_2010,
        preset.samples_per_walk,
        rng,
    )


def year_partition(world: FacebookWorld, year: int):
    """The ``(partition, catch-all index)`` a crawl year is scored on.

    2009 crawls carry regional-network categories (catch-all:
    undeclared users); 2010 crawls carry college categories (catch-all:
    non-college users). Shared by every Facebook-world experiment.
    """
    if year == 2009:
        return world.regions_2009, world.undeclared_index
    return world.colleges_2010, world.none_college_index
