"""Table 1 — the empirical topologies and their summary statistics.

Regenerates the table with both the published numbers and the realised
statistics of our stand-in graphs, so the substitution error is always
visible.
"""

from __future__ import annotations

from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.rng import derive_rng

__all__ = ["run_table1"]


def run_table1(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> ExperimentResult:
    """Regenerate Table 1 (published vs realised stand-in statistics)."""
    preset = preset or active_preset()
    rows = []
    for di, name in enumerate(dataset_names()):
        graph, spec = load_dataset(
            name, scale=preset.dataset_scale, rng=derive_rng(rng, 10, di)
        )
        rows.append(
            (
                name,
                spec.num_nodes,
                spec.num_edges,
                round(spec.mean_degree, 1),
                graph.num_nodes,
                graph.num_edges,
                round(graph.mean_degree(), 1),
            )
        )
    headers = (
        "dataset",
        "|V| paper",
        "|E| paper",
        "k_V paper",
        "|V| ours",
        "|E| ours",
        "k_V ours",
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Empirical topologies (paper values vs stand-in realisations)",
        table=(headers, rows),
        notes={"dataset_scale": preset.dataset_scale, "scale": preset.name},
    )
