"""Table 1 — the empirical topologies and their summary statistics.

Regenerates the table with both the published numbers and the realised
statistics of our stand-in graphs, so the substitution error is always
visible. Compiles to one compute cell per dataset row; ``finalize``
assembles the table. The rows load their datasets directly and declare
no resource needs (DAG roots — independent by construction).
"""

from __future__ import annotations

from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import ComputeCell, PlanResources, SweepPlan
from repro.rng import derive_rng
from repro.runtime.plan import run_plan

__all__ = ["run_table1", "compile_table1"]


def compile_table1(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile Table 1 to one compute cell per dataset stand-in."""
    preset = preset or active_preset()
    names = dataset_names()
    cells = tuple(
        ComputeCell(
            key=f"row:{name}",
            compute=_row_builder(name, di, preset, rng),
            axes={"dataset": name},
        )
        for di, name in enumerate(names)
    )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        headers = (
            "dataset",
            "|V| paper",
            "|E| paper",
            "k_V paper",
            "|V| ours",
            "|E| ours",
            "k_V ours",
        )
        result = ExperimentResult(
            experiment_id="table1",
            title="Empirical topologies (paper values vs stand-in realisations)",
            table=(headers, [outputs[f"row:{name}"] for name in names]),
            notes={"dataset_scale": preset.dataset_scale, "scale": preset.name},
        )
        return {result.experiment_id: result}

    return SweepPlan(
        name="table1",
        cells=cells,
        finalize=finalize,
        context={"scale": preset.name, "seed": int(rng)},
    )


def run_table1(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> ExperimentResult:
    """Regenerate Table 1 (published vs realised stand-in statistics)."""
    return run_plan(compile_table1(preset=preset, rng=rng))["table1"]


def _row_builder(name: str, di: int, preset: ScalePreset, rng: int):
    def compute(resources: PlanResources) -> tuple:
        graph, spec = load_dataset(
            name, scale=preset.dataset_scale, rng=derive_rng(rng, 10, di)
        )
        return (
            name,
            spec.num_nodes,
            spec.num_edges,
            round(spec.mean_degree, 1),
            graph.num_nodes,
            graph.num_edges,
            round(graph.mean_degree(), 1),
        )

    return compute
