"""Table 2 — the Facebook crawl datasets.

Regenerates the crawl-collection summary on the synthetic world. The
"% categ. samples" column is *emergent* (it depends on the crawl
design meeting the category structure), so the paper's published
percentages are shown alongside for comparison.

Compiles to one compute cell per crawl collection over the shared
Facebook-world plan resource; ``finalize`` assembles the table.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.plan import ComputeCell, PlanResources, SweepPlan
from repro.experiments.shared import build_world_and_crawls
from repro.facebook.crawls import category_sample_fraction
from repro.runtime.plan import run_plan

__all__ = ["run_table2", "compile_table2"]

#: Published Table 2 percentages for reference.
_PAPER_FRACTIONS = {
    "MHRW09": 0.34,
    "RW09": 0.41,
    "UIS09": 0.34,
    "RW10": 0.09,
    "S-WRW10": 0.86,
}


def compile_table2(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> SweepPlan:
    """Compile Table 2 to one compute cell per crawl collection."""
    preset = preset or active_preset()
    resources = {"world": lambda: build_world_and_crawls(preset, rng)}
    names = tuple(_PAPER_FRACTIONS)
    cells = tuple(
        ComputeCell(
            key=f"row:{name}",
            compute=_row_builder(name),
            axes={"crawl": name},
            needs=("world",),
        )
        for name in names
    )

    def finalize(
        outputs: dict[str, object], resources: PlanResources
    ) -> dict[str, ExperimentResult]:
        world, _ = resources["world"]
        headers = (
            "crawl",
            "year",
            "walks",
            "samples/walk",
            "% categ (ours)",
            "% categ (paper)",
        )
        result = ExperimentResult(
            experiment_id="table2",
            title="Facebook crawl datasets (simulated, Table 2 layout)",
            table=(headers, [outputs[f"row:{name}"] for name in names]),
            notes={
                "users": world.graph.num_nodes,
                "regions": world.regions_2009.num_categories - 1,
                "colleges": world.colleges_2010.num_categories - 1,
                "scale": preset.name,
            },
        )
        return {result.experiment_id: result}

    return SweepPlan(
        name="table2",
        cells=cells,
        finalize=finalize,
        resources=resources,
        context={"scale": preset.name, "seed": int(rng)},
        # finalize reads world-level counts for the table notes.
        finalize_needs=("world",),
    )


def run_table2(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> ExperimentResult:
    """Regenerate Table 2 on the synthetic Facebook world."""
    return run_plan(compile_table2(preset=preset, rng=rng))["table2"]


def _row_builder(name: str):
    def compute(resources: PlanResources) -> tuple:
        world, datasets = resources["world"]
        dataset = datasets[name]
        measured = category_sample_fraction(world, dataset)
        return (
            name,
            2009 if dataset.year == 2009 else 2010,
            dataset.num_walks,
            dataset.samples_per_walk,
            f"{100 * measured:.0f}%",
            f"{100 * _PAPER_FRACTIONS[name]:.0f}%",
        )

    return compute
