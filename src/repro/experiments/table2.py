"""Table 2 — the Facebook crawl datasets.

Regenerates the crawl-collection summary on the synthetic world. The
"% categ. samples" column is *emergent* (it depends on the crawl
design meeting the category structure), so the paper's published
percentages are shown alongside for comparison.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import ScalePreset, active_preset
from repro.experiments.shared import build_world_and_crawls
from repro.facebook.crawls import category_sample_fraction

__all__ = ["run_table2"]

#: Published Table 2 percentages for reference.
_PAPER_FRACTIONS = {
    "MHRW09": 0.34,
    "RW09": 0.41,
    "UIS09": 0.34,
    "RW10": 0.09,
    "S-WRW10": 0.86,
}


def run_table2(
    preset: ScalePreset | None = None,
    rng: int = 0,
) -> ExperimentResult:
    """Regenerate Table 2 on the synthetic Facebook world."""
    preset = preset or active_preset()
    world, datasets = build_world_and_crawls(preset, rng)
    rows = []
    for name in ("MHRW09", "RW09", "UIS09", "RW10", "S-WRW10"):
        dataset = datasets[name]
        measured = category_sample_fraction(world, dataset)
        rows.append(
            (
                name,
                2009 if dataset.year == 2009 else 2010,
                dataset.num_walks,
                dataset.samples_per_walk,
                f"{100 * measured:.0f}%",
                f"{100 * _PAPER_FRACTIONS[name]:.0f}%",
            )
        )
    headers = (
        "crawl",
        "year",
        "walks",
        "samples/walk",
        "% categ (ours)",
        "% categ (paper)",
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Facebook crawl datasets (simulated, Table 2 layout)",
        table=(headers, rows),
        notes={
            "users": world.graph.num_nodes,
            "regions": world.regions_2009.num_categories - 1,
            "colleges": world.colleges_2010.num_categories - 1,
            "scale": preset.name,
        },
    )
