"""Synthetic Facebook substrate for the paper's Section 7."""

from repro.facebook.crawls import (
    CrawlDataset,
    category_sample_fraction,
    simulate_crawl_datasets,
)
from repro.facebook.geosocial import (
    country_partition,
    distance_weight_correlation,
    estimate_college_graph,
    estimate_country_graph,
    estimate_north_america_graph,
    north_america_partition,
)
from repro.facebook.model import (
    FacebookModelConfig,
    FacebookWorld,
    build_facebook_world,
)

__all__ = [
    "FacebookModelConfig",
    "FacebookWorld",
    "build_facebook_world",
    "CrawlDataset",
    "simulate_crawl_datasets",
    "category_sample_fraction",
    "country_partition",
    "north_america_partition",
    "estimate_country_graph",
    "estimate_north_america_graph",
    "estimate_college_graph",
    "distance_weight_correlation",
]
