"""Simulated Facebook crawl datasets (Table 2 of the paper).

The paper's inputs were five crawl collections:

========  =========  ======  ==============  ================
Dataset   Categories Crawl   Walks x length  % categ. samples
========  =========  ======  ==============  ================
2009      regions    MHRW09  28 x 81k        34%
2009      regions    RW09    28 x 81k        41%
2009      regions    UIS09   28 x 35k        34%
2010      colleges   RW10    25 x 40k         9%
2010      colleges   S-WRW10 25 x 40k        86%
========  =========  ======  ==============  ================

We regenerate the *structure* of these datasets on the synthetic world:
the same crawl designs, the same number of independent walks, and walk
lengths scaled to laptop size (the paper's own Fig. 6 sweeps |S| well
below full length anyway). The "% categ." column is an *emergent*
property here — S-WRW's stratification must raise it from RW's ~4-9%
to a large majority, which the Table 2 bench asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError
from repro.facebook.model import FacebookWorld
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample
from repro.sampling.independence import UniformIndependenceSampler
from repro.sampling.stratified import StratifiedWeightedWalkSampler
from repro.sampling.walks import MetropolisHastingsSampler, RandomWalkSampler

__all__ = ["CrawlDataset", "simulate_crawl_datasets", "category_sample_fraction"]

#: Paper walk counts (Table 2).
WALKS_2009 = 28
WALKS_2010 = 25
#: UIS09 collected ~2x fewer samples than the 2009 walks (35k vs 81k).
UIS_LENGTH_RATIO = 35.0 / 81.0


@dataclass(frozen=True)
class CrawlDataset:
    """One simulated crawl collection.

    Attributes
    ----------
    name:
        Paper-style dataset name (``"RW09"``, ``"S-WRW10"``, ...).
    year:
        2009 (regional categories) or 2010 (college categories).
    walks:
        Independent walks/batches, each a :class:`NodeSample`.
    """

    name: str
    year: int
    walks: tuple[NodeSample, ...]

    @property
    def num_walks(self) -> int:
        """Number of independent walks."""
        return len(self.walks)

    @property
    def samples_per_walk(self) -> int:
        """Draws per walk (uniform across walks by construction)."""
        return self.walks[0].size if self.walks else 0

    def combined(self) -> NodeSample:
        """All walks concatenated (used for final map estimates)."""
        merged = self.walks[0]
        for walk in self.walks[1:]:
            merged = merged.concat(walk)
        return merged


def simulate_crawl_datasets(
    world: FacebookWorld,
    samples_per_walk: int = 3000,
    num_walks_2009: int = WALKS_2009,
    num_walks_2010: int = WALKS_2010,
    rng: "np.random.Generator | int | None" = None,
    include: tuple[str, ...] = ("MHRW09", "RW09", "UIS09", "RW10", "S-WRW10"),
) -> dict[str, CrawlDataset]:
    """Simulate the five Table 2 crawl collections on a synthetic world.

    Parameters
    ----------
    world:
        A :func:`~repro.facebook.model.build_facebook_world` output.
    samples_per_walk:
        Scaled walk length (the paper's 81k/40k shrunk to laptop size).
    include:
        Subset of dataset names to generate (all by default).
    """
    if samples_per_walk < 10:
        raise SamplingError("samples_per_walk must be at least 10")
    gen = ensure_rng(rng)
    graph = world.graph
    datasets: dict[str, CrawlDataset] = {}

    def run(name, year, sampler_factory, walks, length):
        # Batched engine: all walks of a dataset advance as one frontier.
        # Identical trajectories to sampling each spawned stream in turn
        # (see repro.sampling.batch), at a fraction of the wall-clock.
        batch = sampler_factory().sample_many(length, walks, rng=gen)
        datasets[name] = CrawlDataset(name=name, year=year, walks=tuple(batch))

    if "MHRW09" in include:
        run(
            "MHRW09", 2009,
            lambda: MetropolisHastingsSampler(graph),
            num_walks_2009, samples_per_walk,
        )
    if "RW09" in include:
        run(
            "RW09", 2009,
            lambda: RandomWalkSampler(graph),
            num_walks_2009, samples_per_walk,
        )
    if "UIS09" in include:
        run(
            "UIS09", 2009,
            lambda: UniformIndependenceSampler(graph),
            num_walks_2009, max(int(samples_per_walk * UIS_LENGTH_RATIO), 10),
        )
    if "RW10" in include:
        run(
            "RW10", 2010,
            lambda: RandomWalkSampler(graph),
            num_walks_2010, samples_per_walk,
        )
    if "S-WRW10" in include:
        partition = world.colleges_2010
        weights = np.ones(partition.num_categories)
        # The paper sets equal college weights and (nearly) zero weight
        # for the irrelevant remainder (f~ = 0). A strictly zero weight
        # would trap the walk, so the "none" category gets a small total
        # weight; spread over ~96.5% of users its per-member importance
        # sits far below any college's, reproducing the Table 2 contrast
        # (9% vs 86% college samples) without freezing the walk inside
        # college subgraphs.
        weights[world.none_college_index] = 3.0
        # gamma = 0.6 reproduces the paper's Table 2 contrast (~86% of
        # S-WRW draws inside colleges vs ~9% for RW) while keeping the
        # walk mixing across colleges; full product weights (gamma = 1)
        # trap the walk inside small colleges for thousands of steps.
        run(
            "S-WRW10", 2010,
            lambda: StratifiedWeightedWalkSampler(
                graph, partition, category_weights=weights, gamma=0.6
            ),
            num_walks_2010, samples_per_walk,
        )
    return datasets


def category_sample_fraction(world: FacebookWorld, dataset: CrawlDataset) -> float:
    """Fraction of draws carrying a real category (Table 2's last column).

    For 2009 datasets: draws of *declared* users; for 2010: draws of
    college members.
    """
    if dataset.year == 2009:
        labels = world.regions_2009.labels
        catchall = world.undeclared_index
    else:
        labels = world.colleges_2010.labels
        catchall = world.none_college_index
    total = 0
    hits = 0
    for walk in dataset.walks:
        total += walk.size
        hits += int(np.sum(labels[walk.nodes] != catchall))
    return hits / total if total else 0.0
