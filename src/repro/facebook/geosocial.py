"""Geosocial category graphs (Section 7.3 / Fig. 7 of the paper).

Three deliverables, mirroring the paper's pipeline exactly:

* **country graph** (Fig. 7a) — regions merged per country; sizes from
  the UIS09 *induced* estimator (which the paper found best, Fig. 6a);
  weights from the *star* estimators of each 2009 crawl, averaged;
* **North America graph** (Fig. 7b) — US and Canada regions at county
  granularity, everything else lumped;
* **US college graph** (Fig. 7c) — sizes and weights from the *star*
  estimators on the S-WRW10 walks only (the paper dropped RW10), then
  averaged across walks.

The paper published these as www.geosocialmap.com; we export the same
weighted graphs as JSON (:func:`repro.graph.io.category_graph_to_json`).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.core.edge_weight import estimate_weights_star
from repro.exceptions import EstimationError
from repro.facebook.crawls import CrawlDataset
from repro.facebook.model import FacebookWorld
from repro.graph.category_graph import CategoryGraph
from repro.graph.partition import CategoryPartition
from repro.sampling.observation import observe_star

__all__ = [
    "country_partition",
    "north_america_partition",
    "estimate_country_graph",
    "estimate_north_america_graph",
    "estimate_college_graph",
    "distance_weight_correlation",
]


def country_partition(world: FacebookWorld) -> CategoryPartition:
    """Merge the 2009 regional categories into country categories."""
    groups: dict[str, list[str]] = {code: [] for code in world.country_names}
    for r in range(len(world.region_country)):
        code = world.country_names[world.region_country[r]]
        groups[code].append(f"{code}.r{r}")
    groups = {code: names for code, names in groups.items() if names}
    groups["Undeclared"] = ["Undeclared"]
    return world.regions_2009.merge(groups)


def north_america_partition(world: FacebookWorld) -> CategoryPartition:
    """US/Canada regions kept at county granularity; the rest lumped."""
    na_codes = ("US", "CA")
    groups: dict[str, list[str]] = {"elsewhere": ["Undeclared"]}
    for r in range(len(world.region_country)):
        code = world.country_names[world.region_country[r]]
        name = f"{code}.r{r}"
        if code in na_codes:
            groups[name] = [name]
        else:
            groups["elsewhere"].append(name)
    return world.regions_2009.merge(groups)


def estimate_country_graph(
    world: FacebookWorld,
    datasets: dict[str, CrawlDataset],
    max_walks: int | None = None,
) -> CategoryGraph:
    """Fig. 7a pipeline: country sizes via UIS09-induced, weights via
    star estimators averaged over the 2009 crawls."""
    partition = country_partition(world)
    return _estimate_merged_graph(
        world,
        partition,
        datasets,
        size_dataset="UIS09",
        weight_datasets=("UIS09", "MHRW09", "RW09"),
        max_walks=max_walks,
    )


def estimate_north_america_graph(
    world: FacebookWorld,
    datasets: dict[str, CrawlDataset],
    max_walks: int | None = None,
) -> CategoryGraph:
    """Fig. 7b pipeline (same steps as 7a, county-level partition)."""
    partition = north_america_partition(world)
    return _estimate_merged_graph(
        world,
        partition,
        datasets,
        size_dataset="UIS09",
        weight_datasets=("UIS09", "MHRW09", "RW09"),
        max_walks=max_walks,
    )


def estimate_college_graph(
    world: FacebookWorld,
    datasets: dict[str, CrawlDataset],
    max_walks: int | None = None,
) -> CategoryGraph:
    """Fig. 7c pipeline: college sizes and weights from S-WRW10 star
    estimators, averaged across walks."""
    if "S-WRW10" not in datasets:
        raise EstimationError("the college graph needs the 'S-WRW10' dataset")
    partition = world.colleges_2010
    n_pop = world.graph.num_nodes
    walks = datasets["S-WRW10"].walks[:max_walks]
    size_stack, weight_stack = [], []
    for walk in walks:
        observation = observe_star(world.graph, partition, walk)
        sizes = estimate_sizes_star(observation, n_pop)
        size_stack.append(sizes)
        weight_stack.append(estimate_weights_star(observation, sizes))
    sizes = _nanmean_quiet(np.stack(size_stack))
    weights = _nanmean_quiet(np.stack(weight_stack))
    with np.errstate(invalid="ignore"):
        cuts = weights * np.outer(sizes, sizes)
    return CategoryGraph(sizes, weights, names=partition.names, cuts=cuts)


def distance_weight_correlation(
    world: FacebookWorld, category_graph: CategoryGraph, positions: np.ndarray
) -> float:
    """Spearman-style rank correlation of edge weight vs geo distance.

    Negative values confirm the paper's Fig. 7 observation that physical
    distance suppresses tie probability. ``positions`` gives the geo
    coordinate of each category in ``category_graph``.
    """
    weights, distances = [], []
    for a, b, w in category_graph.edges():
        if not (np.isfinite(positions[a]) and np.isfinite(positions[b])):
            continue
        weights.append(w)
        distances.append(abs(positions[a] - positions[b]))
    if len(weights) < 3:
        raise EstimationError("not enough category-graph edges for a correlation")
    ranks_w = np.argsort(np.argsort(weights)).astype(float)
    ranks_d = np.argsort(np.argsort(distances)).astype(float)
    rw = ranks_w - ranks_w.mean()
    rd = ranks_d - ranks_d.mean()
    denom = np.sqrt(np.dot(rw, rw) * np.dot(rd, rd))
    if denom == 0:
        return 0.0
    return float(np.dot(rw, rd) / denom)


def _estimate_merged_graph(
    world: FacebookWorld,
    partition: CategoryPartition,
    datasets: dict[str, CrawlDataset],
    size_dataset: str,
    weight_datasets: tuple[str, ...],
    max_walks: int | None,
) -> CategoryGraph:
    """Shared Fig. 7a/7b machinery."""
    available = [name for name in weight_datasets if name in datasets]
    if size_dataset not in datasets or not available:
        raise EstimationError(
            f"need dataset {size_dataset!r} plus at least one of "
            f"{weight_datasets} to estimate this graph"
        )
    graph = world.graph
    n_pop = graph.num_nodes

    # Sizes: induced estimator on the UIS09 sample (paper Sec. 7.3.1).
    size_walks = datasets[size_dataset].walks[:max_walks]
    size_stack = [
        estimate_sizes_induced(
            observe_star(graph, partition, walk), n_pop
        )
        for walk in size_walks
    ]
    sizes = _nanmean_quiet(np.stack(size_stack))

    # Weights: star estimators fed the estimated sizes, averaged over
    # the crawl types (paper averages UIS, MHRW and RW estimates).
    weight_stack = []
    for name in available:
        for walk in datasets[name].walks[:max_walks]:
            observation = observe_star(graph, partition, walk)
            weight_stack.append(estimate_weights_star(observation, sizes))
    weights = _nanmean_quiet(np.stack(weight_stack))
    with np.errstate(invalid="ignore"):
        cuts = weights * np.outer(sizes, sizes)
    return CategoryGraph(sizes, weights, names=partition.names, cuts=cuts)

def _nanmean_quiet(stack: np.ndarray) -> np.ndarray:
    """nanmean that tolerates all-nan columns (never-sampled categories)."""
    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", message="Mean of empty slice")
        return np.nanmean(stack, axis=0)
