"""Synthetic Facebook-like population (substrate for Section 7).

The paper's Section 7 runs on 2009/2010 Facebook crawls (10.1 M sampled
users) that are neither redistributable nor reachable offline. We build
the closest synthetic equivalent that exercises the same code paths and
regimes (see DESIGN.md, "Substitutions"):

* a heavy-tailed friendship graph (power-law degrees);
* **geography**: every user has a latent region; regions belong to
  countries, countries to continents, all laid out on a 1-D geo axis.
  Edges are created by a hierarchical stub-matching scheme — a fraction
  of each user's stubs pair within the region, a fraction within the
  country (sorted by geo position + noise, so *nearby regions link
  more*), and the rest globally (sorted by country position + noise, so
  *nearby countries link more* — the continental cliques of Fig. 7a);
* **2009 regional categories**: only ``declared_fraction`` (34% in the
  paper, Table 2) of users declare their region; the rest fall into an
  "Undeclared" category;
* **2010 college categories**: ``college_fraction`` (3.5%) of users
  belong to one of many colleges (heavy-tailed sizes, each localized in
  one country) with extra dense intra-college friendships; everyone
  else is "none".

Everything about the resulting world is known exactly, so Section 7's
NRMSE curves can be computed against *true* values — something the
paper itself could not do (it used cross-sample averages as truth; we
report both).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GenerationError
from repro.generators.configuration import power_law_degree_sequence
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.operations import connected_components
from repro.graph.partition import CategoryPartition
from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges, edge_chunks
from repro.rng import ensure_rng

__all__ = [
    "FacebookModelConfig",
    "FacebookWorld",
    "build_facebook_world",
    "emit_arcs",
]

#: Synthetic country codes, ordered by continent blocks (the order *is*
#: the geography: neighbors on the list are neighbors on the geo axis).
_COUNTRY_CODES = (
    # North America
    "US", "CA", "MX",
    # South America
    "BR", "AR", "CL", "CO",
    # Europe (west -> east)
    "UK", "IE", "FR", "ES", "PT", "DE", "IT", "NL", "SE", "NO", "PL", "GR",
    # Middle East
    "TR", "IL", "SA", "AE", "JO", "LB",
    # South / South-East Asia
    "IN", "PK", "TH", "MY", "SG", "ID", "PH",
    # East Asia & Oceania
    "JP", "KR", "TW", "AU", "NZ",
)

_CONTINENT_OF = {
    "US": 0, "CA": 0, "MX": 0,
    "BR": 1, "AR": 1, "CL": 1, "CO": 1,
    "UK": 2, "IE": 2, "FR": 2, "ES": 2, "PT": 2, "DE": 2, "IT": 2,
    "NL": 2, "SE": 2, "NO": 2, "PL": 2, "GR": 2,
    "TR": 3, "IL": 3, "SA": 3, "AE": 3, "JO": 3, "LB": 3,
    "IN": 4, "PK": 4, "TH": 4, "MY": 4, "SG": 4, "ID": 4, "PH": 4,
    "JP": 5, "KR": 5, "TW": 5, "AU": 5, "NZ": 5,
}


@dataclass(frozen=True)
class FacebookModelConfig:
    """Knobs of the synthetic Facebook world.

    Defaults give a ~60k-user world that runs all Section 7 experiments
    in seconds; ``scale`` shrinks users/colleges together for tests.
    """

    num_users: int = 60_000
    num_regions: int = 220
    num_colleges: int = 280
    declared_fraction: float = 0.34     # Table 2: 34% of population
    college_fraction: float = 0.035     # Table 2: 3.5% of population
    mean_degree: float = 16.0
    degree_exponent: float = 2.4
    region_zipf: float = 1.08           # latent region popularity skew
    college_zipf: float = 1.15          # college size skew
    region_stub_fraction: float = 0.45  # share of stubs pairing in-region
    country_stub_fraction: float = 0.25 # share pairing in-country (geo-sorted)
    intra_college_degree: float = 6.0   # extra in-college edges per member
    scale: int = 1

    def effective_users(self) -> int:
        """User count after scaling (floor 1000 keeps structure meaningful)."""
        if self.scale < 1:
            raise GenerationError(f"scale must be >= 1, got {self.scale}")
        return max(self.num_users // self.scale, 1000)

    def effective_colleges(self) -> int:
        """College count after scaling (floor 20)."""
        return max(self.num_colleges // self.scale, 20)


@dataclass(frozen=True)
class FacebookWorld:
    """A fully known synthetic Facebook-like world.

    Attributes
    ----------
    graph:
        The friendship graph (restricted to its giant component).
    regions_2009:
        The 2009-style partition: declared users carry their region,
        everyone else the final category ``"Undeclared"``.
    colleges_2010:
        The 2010-style partition: college members carry their college,
        everyone else the final category ``"none"``.
    latent_region:
        True (latent) region of every user — drives geography even for
        undeclared users.
    region_country / region_position:
        Country index and geo-axis position per region.
    country_names:
        Country code per country index.
    college_country:
        Country index per college.
    """

    graph: Graph
    regions_2009: CategoryPartition
    colleges_2010: CategoryPartition
    latent_region: np.ndarray
    region_country: np.ndarray
    region_position: np.ndarray
    country_names: tuple[str, ...]
    college_country: np.ndarray
    config: FacebookModelConfig

    @property
    def undeclared_index(self) -> int:
        """Category index of ``"Undeclared"`` in ``regions_2009``."""
        return self.regions_2009.num_categories - 1

    @property
    def none_college_index(self) -> int:
        """Category index of ``"none"`` in ``colleges_2010``."""
        return self.colleges_2010.num_categories - 1

    def country_of_region_name(self) -> dict[str, str]:
        """Map region category name -> country code (for merging)."""
        return {
            f"{self.country_names[self.region_country[r]]}.r{r}": self.country_names[
                self.region_country[r]
            ]
            for r in range(len(self.region_country))
        }


class _WorldState:
    """Mutable scratchpad threading the build stages together.

    Holds everything the edge stream and the partition stage both need;
    ``college_of_user`` / ``college_country`` are filled in *during*
    the edge stream (college assignment is interleaved with the overlay
    edges in RNG draw order).
    """

    __slots__ = (
        "n",
        "num_countries",
        "country_position",
        "region_country",
        "region_position",
        "latent_region",
        "user_country",
        "degrees",
        "college_of_user",
        "college_country",
    )


def _world_state(cfg: FacebookModelConfig, gen: np.random.Generator) -> _WorldState:
    """Geography, latent regions, and degrees (pre-edge RNG stages)."""
    state = _WorldState()
    state.n = n = cfg.effective_users()

    # ------------------------------------------------------------------
    # Geography: countries with continent-blocked positions, regions
    # distributed US/CA-heavy (the paper's North-America county detail).
    # ------------------------------------------------------------------
    state.num_countries = len(_COUNTRY_CODES)
    state.country_position = np.array(
        [
            _CONTINENT_OF[code] * 50.0 + i * 1.5
            for i, code in enumerate(_COUNTRY_CODES)
        ]
    )
    state.region_country, state.region_position = _lay_out_regions(
        cfg.num_regions, state.num_countries, state.country_position, gen
    )
    num_regions = len(state.region_country)

    # Latent region per user: Zipf over regions.
    region_weights = 1.0 / np.arange(1, num_regions + 1) ** cfg.region_zipf
    region_weights /= region_weights.sum()
    state.latent_region = gen.choice(
        num_regions, size=n, p=region_weights
    ).astype(np.int64)
    state.user_country = state.region_country[state.latent_region]

    state.degrees = power_law_degree_sequence(
        n,
        cfg.degree_exponent,
        mean_degree=cfg.mean_degree,
        d_min=2,
        d_max=min(n - 1, int(20 * cfg.mean_degree)),
        rng=gen,
    )
    state.college_of_user = None
    state.college_country = None
    return state


def _edge_blocks(
    cfg: FacebookModelConfig, gen: np.random.Generator, state: _WorldState
) -> Iterator[np.ndarray]:
    """The world's construction edge blocks, in RNG draw order.

    Hierarchical stub matching (region / country / global) followed by
    the college overlay; college assignment happens between the global
    block and the overlay block, exactly where the one-shot build drew
    those numbers.
    """
    n = state.n
    region_stubs = np.rint(state.degrees * cfg.region_stub_fraction).astype(np.int64)
    country_stubs = np.rint(state.degrees * cfg.country_stub_fraction).astype(np.int64)
    global_stubs = state.degrees - region_stubs - country_stubs

    yield _pair_grouped(state.latent_region, region_stubs, gen)
    yield _pair_geo_sorted(
        state.user_country,
        country_stubs,
        positions=state.region_position[state.latent_region],
        noise_scale=1.0,
        gen=gen,
    )
    yield _pair_geo_sorted(
        np.zeros(n, dtype=np.int64),  # one global group
        global_stubs,
        positions=state.country_position[state.user_country],
        noise_scale=40.0,
        gen=gen,
    )

    # Colleges: localized memberships + dense intra-college overlay.
    state.college_of_user, state.college_country = _assign_colleges(
        cfg, n, state.user_country, state.num_countries, gen
    )
    yield _college_overlay(state.college_of_user, cfg, gen)


def build_facebook_world(
    config: FacebookModelConfig | None = None,
    rng: "np.random.Generator | int | None" = None,
) -> FacebookWorld:
    """Generate the synthetic world (graph + both category partitions)."""
    cfg = config or FacebookModelConfig()
    gen = ensure_rng(rng)
    state = _world_state(cfg, gen)
    n = state.n
    num_regions = len(state.region_country)

    builder = GraphBuilder(n)
    for block in _edge_blocks(cfg, gen, state):
        builder.add_edges(block)

    graph = builder.build()
    graph = _bridge_to_giant(graph, gen)

    # ------------------------------------------------------------------
    # Category partitions.
    # ------------------------------------------------------------------
    declared = gen.random(n) < cfg.declared_fraction
    region_labels = np.where(
        declared, state.latent_region, num_regions
    ).astype(np.int64)
    region_names = [
        f"{_COUNTRY_CODES[state.region_country[r]]}.r{r}"
        for r in range(num_regions)
    ] + ["Undeclared"]
    regions_2009 = CategoryPartition(
        region_labels, names=region_names, num_categories=num_regions + 1
    )

    college_country = state.college_country
    num_colleges = int(college_country.shape[0])
    college_labels = np.where(
        state.college_of_user >= 0, state.college_of_user, num_colleges
    ).astype(np.int64)
    college_names = [
        f"College{g}_{_COUNTRY_CODES[college_country[g]]}" for g in range(num_colleges)
    ] + ["none"]
    colleges_2010 = CategoryPartition(
        college_labels, names=college_names, num_categories=num_colleges + 1
    )

    return FacebookWorld(
        graph=graph,
        regions_2009=regions_2009,
        colleges_2010=colleges_2010,
        latent_region=state.latent_region,
        region_country=state.region_country,
        region_position=state.region_position,
        country_names=_COUNTRY_CODES,
        college_country=college_country,
        config=cfg,
    )


def emit_arcs(
    config: FacebookModelConfig | None = None,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: "np.random.Generator | int | None" = None,
) -> Iterator[np.ndarray]:
    """Stream the friendship graph's edges in blocks of ``chunk_size``.

    A graph built from the emitted chunks equals
    ``build_facebook_world(config, rng).graph`` bit-for-bit for the
    same seed; the partitions are not part of the stream. A shadow
    builder assembles the graph alongside the stream to locate the
    bridge edges that connect stray components — under an active
    ``memmap`` storage scope that shadow build spills to disk like any
    other, keeping peak memory bounded.
    """
    cfg = config or FacebookModelConfig()
    gen = ensure_rng(rng)
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")

    def stream() -> Iterator[np.ndarray]:
        state = _world_state(cfg, gen)
        shadow = GraphBuilder(state.n)
        for block in _edge_blocks(cfg, gen, state):
            shadow.add_edges(block)
            yield from chunk_edges(block, chunk_size)
        extra = _stray_bridges(shadow.build(), gen)
        if len(extra):
            yield from chunk_edges(extra, chunk_size)

    return stream()


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _lay_out_regions(
    requested: int,
    num_countries: int,
    country_position: np.ndarray,
    gen: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Distribute regions over countries; US/CA get county-level detail."""
    requested = max(requested, num_countries)
    counts = np.ones(num_countries, dtype=np.int64)
    extra = requested - num_countries
    # 45% of extra regions to the US, 10% to Canada, rest by Zipf.
    us_extra = int(0.45 * extra)
    ca_extra = int(0.10 * extra)
    counts[0] += us_extra
    counts[1] += ca_extra
    remaining = extra - us_extra - ca_extra
    if remaining > 0:
        weights = 1.0 / np.arange(1, num_countries - 1) ** 1.1
        weights /= weights.sum()
        allocation = gen.multinomial(remaining, weights)
        counts[2:] += allocation
    region_country = np.repeat(np.arange(num_countries, dtype=np.int64), counts)
    # Regions sit around their country's position, spaced by 0.02.
    offsets = np.concatenate([np.arange(c) * 0.02 for c in counts])
    region_position = country_position[region_country] + offsets
    return region_country, region_position


def _pair_grouped(
    group_of_user: np.ndarray, stub_counts: np.ndarray, gen: np.random.Generator
) -> np.ndarray:
    """Pair stubs uniformly within each group (region-level edges)."""
    owners = np.repeat(np.arange(len(stub_counts), dtype=np.int64), stub_counts)
    groups = group_of_user[owners]
    order = np.lexsort((gen.random(len(owners)), groups))
    owners = owners[order]
    groups = groups[order]
    return _pair_consecutive_same_group(owners, groups)


def _pair_geo_sorted(
    group_of_user: np.ndarray,
    stub_counts: np.ndarray,
    positions: np.ndarray,
    noise_scale: float,
    gen: np.random.Generator,
) -> np.ndarray:
    """Pair stubs within groups, sorted by geo position + Laplace noise.

    Sorting by noisy position and pairing consecutive stubs yields a
    connection probability that decays with geographic distance — the
    mechanism behind the paper's Fig. 7 distance effects.
    """
    owners = np.repeat(np.arange(len(stub_counts), dtype=np.int64), stub_counts)
    if len(owners) == 0:
        return np.empty((0, 2), dtype=np.int64)
    groups = group_of_user[owners]
    noisy = positions[owners] + gen.laplace(0.0, noise_scale, size=len(owners))
    order = np.lexsort((noisy, groups))
    return _pair_consecutive_same_group(owners[order], groups[order])


def _pair_consecutive_same_group(
    owners: np.ndarray, groups: np.ndarray
) -> np.ndarray:
    """Pair stubs (2i, 2i+1) within each group run; drop odd leftovers."""
    edges = []
    start = 0
    boundaries = np.concatenate(
        (np.flatnonzero(np.diff(groups)) + 1, [len(groups)])
    )
    for end in boundaries:
        run = owners[start:end]
        usable = len(run) - (len(run) % 2)
        if usable >= 2:
            pairs = run[:usable].reshape(-1, 2)
            keep = pairs[:, 0] != pairs[:, 1]
            edges.append(pairs[keep])
        start = end
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(edges)


def _assign_colleges(
    cfg: FacebookModelConfig,
    n: int,
    user_country: np.ndarray,
    num_countries: int,
    gen: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """College membership (-1 = none) and each college's country."""
    num_colleges = cfg.effective_colleges()
    members_total = int(cfg.college_fraction * n)
    member_users = gen.choice(n, size=members_total, replace=False)
    # College sizes: Zipf, at least 2 members.
    raw = 1.0 / np.arange(1, num_colleges + 1) ** cfg.college_zipf
    sizes = np.maximum((raw / raw.sum() * members_total).astype(np.int64), 2)
    # Localize each college: members sorted by country, colleges carved
    # out of contiguous country runs.
    member_users = member_users[np.argsort(user_country[member_users], kind="stable")]
    college_of_user = np.full(n, -1, dtype=np.int64)
    college_country = np.zeros(num_colleges, dtype=np.int64)
    cursor = 0
    order = gen.permutation(num_colleges)  # big colleges spread over countries
    for g in order:
        take = min(int(sizes[g]), members_total - cursor)
        if take <= 0:
            college_country[g] = int(gen.integers(0, num_countries))
            continue
        chunk = member_users[cursor : cursor + take]
        college_of_user[chunk] = g
        college_country[g] = int(np.bincount(user_country[chunk]).argmax())
        cursor += take
    return college_of_user, college_country


def _college_overlay(
    college_of_user: np.ndarray, cfg: FacebookModelConfig, gen: np.random.Generator
) -> np.ndarray:
    """Extra dense intra-college edges (mean intra degree per member)."""
    edges = []
    members_by_college: dict[int, np.ndarray] = {}
    assigned = np.flatnonzero(college_of_user >= 0)
    for g in np.unique(college_of_user[assigned]):
        members_by_college[int(g)] = assigned[college_of_user[assigned] == g]
    for members in members_by_college.values():
        size = len(members)
        if size < 2:
            continue
        target = int(cfg.intra_college_degree * size / 2)
        max_edges = size * (size - 1) // 2
        target = min(target, max_edges)
        if target <= 0:
            continue
        us = members[gen.integers(0, size, size=3 * target + 8)]
        vs = members[gen.integers(0, size, size=3 * target + 8)]
        ok = us != vs
        pairs = np.column_stack((us[ok], vs[ok]))[:target]
        edges.append(pairs)
    if not edges:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(edges)


def _stray_bridges(graph: Graph, gen: np.random.Generator) -> np.ndarray:
    """One random edge from each stray component to the giant one."""
    comp = connected_components(graph)
    num_components = int(comp.max()) + 1 if len(comp) else 0
    if num_components <= 1:
        return np.empty((0, 2), dtype=np.int64)
    counts = np.bincount(comp)
    giant = int(np.argmax(counts))
    giant_nodes = np.flatnonzero(comp == giant)
    extra = []
    for c in range(num_components):
        if c == giant:
            continue
        members = np.flatnonzero(comp == c)
        u = int(members[gen.integers(0, len(members))])
        v = int(giant_nodes[gen.integers(0, len(giant_nodes))])
        extra.append((u, v))
    return np.asarray(extra, dtype=np.int64)


def _bridge_to_giant(graph: Graph, gen: np.random.Generator) -> Graph:
    """Attach stray components to the giant one (walkers need connectivity)."""
    extra = _stray_bridges(graph, gen)
    if not len(extra):
        return graph
    builder = GraphBuilder(graph.num_nodes)
    # Windowed re-add instead of one O(|E|) edge_array materialization,
    # so the rebuild stays bounded under a memmap storage scope.
    for chunk in edge_chunks(graph):
        builder.add_edges(chunk)
    builder.add_edges(extra)
    return builder.build()
