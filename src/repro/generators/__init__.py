"""Synthetic graph generators.

The headline generator is :func:`planted_category_graph` — the paper's
Section 6.2.1 model. The rest (ER, BA, configuration model, SBM,
k-regular) are substrates used by the dataset stand-ins, the Facebook
model, and the ablation benches.

Every generator also exposes a chunked ``emit_*_arcs`` face that
streams bounded edge blocks for the out-of-core CSR builders in
:mod:`repro.graph.storage`. Both faces share one sampling core, so for
the same seed they draw the same random numbers and describe the same
edge set — graphs streamed to disk are bit-identical to graphs built
in RAM.
"""

from repro.generators.ba import barabasi_albert_graph, emit_ba_arcs
from repro.generators.configuration import (
    configuration_model_graph,
    emit_configuration_arcs,
    power_law_degree_sequence,
)
from repro.generators.er import (
    emit_gnm_arcs,
    emit_gnp_arcs,
    gnm,
    gnp,
    random_cross_edges,
)
from repro.generators.planted import (
    PAPER_CATEGORY_SIZES,
    PlantedModelConfig,
    emit_planted_arcs,
    planted_category_graph,
)
from repro.generators.regular import (
    emit_regular_arcs,
    random_regular_edges,
    random_regular_graph,
)
from repro.generators.sbm import (
    emit_sbm_arcs,
    planted_partition_graph,
    stochastic_block_model,
)

__all__ = [
    "PAPER_CATEGORY_SIZES",
    "PlantedModelConfig",
    "planted_category_graph",
    "emit_planted_arcs",
    "random_regular_graph",
    "random_regular_edges",
    "emit_regular_arcs",
    "gnp",
    "gnm",
    "emit_gnp_arcs",
    "emit_gnm_arcs",
    "random_cross_edges",
    "barabasi_albert_graph",
    "emit_ba_arcs",
    "configuration_model_graph",
    "emit_configuration_arcs",
    "power_law_degree_sequence",
    "stochastic_block_model",
    "emit_sbm_arcs",
    "planted_partition_graph",
]
