"""Synthetic graph generators.

The headline generator is :func:`planted_category_graph` — the paper's
Section 6.2.1 model. The rest (ER, BA, configuration model, SBM,
k-regular) are substrates used by the dataset stand-ins, the Facebook
model, and the ablation benches.
"""

from repro.generators.ba import barabasi_albert_graph
from repro.generators.configuration import (
    configuration_model_graph,
    power_law_degree_sequence,
)
from repro.generators.er import gnm, gnp, random_cross_edges
from repro.generators.planted import (
    PAPER_CATEGORY_SIZES,
    PlantedModelConfig,
    planted_category_graph,
)
from repro.generators.regular import random_regular_edges, random_regular_graph
from repro.generators.sbm import planted_partition_graph, stochastic_block_model

__all__ = [
    "PAPER_CATEGORY_SIZES",
    "PlantedModelConfig",
    "planted_category_graph",
    "random_regular_graph",
    "random_regular_edges",
    "gnp",
    "gnm",
    "random_cross_edges",
    "barabasi_albert_graph",
    "configuration_model_graph",
    "power_law_degree_sequence",
    "stochastic_block_model",
    "planted_partition_graph",
]
