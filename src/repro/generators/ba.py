"""Barabasi-Albert preferential attachment graphs.

Included as a substrate for ablations (heavy-tailed degree graphs with a
different tail mechanism than the configuration model) and for the
examples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng

__all__ = ["barabasi_albert_graph"]


def barabasi_albert_graph(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """BA graph: each arriving node attaches to ``m`` existing nodes.

    Attachment probability is proportional to degree, implemented with
    the repeated-nodes trick (sampling from the flat stub list), which
    is exact and O(n * m).
    """
    gen = ensure_rng(rng)
    if m < 1:
        raise GenerationError(f"m must be at least 1, got {m}")
    if n <= m:
        raise GenerationError(f"need n > m, got n={n}, m={m}")
    # Seed: a star on m + 1 nodes (connected, every node has degree >= 1).
    edges: list[tuple[int, int]] = [(i, m) for i in range(m)]
    stubs: list[int] = [i for e in edges for i in e]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(stubs[int(gen.integers(0, len(stubs)))])
        for t in targets:
            edges.append((new, t))
            stubs.append(new)
            stubs.append(t)
    return Graph.from_edges(n, np.asarray(edges, dtype=np.int64))
