"""Barabasi-Albert preferential attachment graphs.

Included as a substrate for ablations (heavy-tailed degree graphs with a
different tail mechanism than the configuration model) and for the
examples.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.storage import DEFAULT_CHUNK_ARCS
from repro.rng import ensure_rng

__all__ = ["barabasi_albert_graph", "emit_ba_arcs"]


def emit_ba_arcs(
    n: int,
    m: int,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream BA attachment edges in blocks of at most ``chunk_size``.

    The stub list is O(n * m) and inherent to preferential attachment;
    what streaming bounds is the *edge buffer*, which never exceeds
    ``chunk_size`` rows. Consuming the whole stream performs exactly
    the same RNG draws as :func:`barabasi_albert_graph`.
    """
    gen = ensure_rng(rng)
    if m < 1:
        raise GenerationError(f"m must be at least 1, got {m}")
    if n <= m:
        raise GenerationError(f"need n > m, got n={n}, m={m}")
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
    return _ba_blocks(n, m, chunk_size, gen)


def _ba_blocks(
    n: int, m: int, chunk_size: int, gen: np.random.Generator
) -> Iterator[np.ndarray]:
    # Seed: a star on m + 1 nodes (connected, every node has degree >= 1).
    buffer: list[tuple[int, int]] = [(i, m) for i in range(m)]
    stubs: list[int] = [i for e in buffer for i in e]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(stubs[int(gen.integers(0, len(stubs)))])
        for t in targets:
            buffer.append((new, t))
            stubs.append(new)
            stubs.append(t)
        if len(buffer) >= chunk_size:
            yield np.asarray(buffer, dtype=np.int64)
            buffer = []
    if buffer:
        yield np.asarray(buffer, dtype=np.int64)


def barabasi_albert_graph(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """BA graph: each arriving node attaches to ``m`` existing nodes.

    Attachment probability is proportional to degree, implemented with
    the repeated-nodes trick (sampling from the flat stub list), which
    is exact and O(n * m).
    """
    builder = GraphBuilder(n)
    for chunk in emit_ba_arcs(n, m, rng=rng):
        builder.add_edges(chunk)
    return builder.build()
