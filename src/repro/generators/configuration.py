"""Configuration-model graphs and heavy-tailed degree sequences.

The empirical graphs of the paper's Table 1 (two Facebook regional
networks, a Gnutella P2P snapshot, Epinions) are not redistributable, so
:mod:`repro.datasets` rebuilds graphs with matched size, edge count and
degree skew. The machinery lives here: power-law degree sequences with a
target mean, and a pairing-model construction that erases defects
(simple-graph projection), which is the standard approach for heavy
tails where exact repair is slow.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges
from repro.rng import ensure_rng

__all__ = [
    "configuration_model_graph",
    "emit_configuration_arcs",
    "power_law_degree_sequence",
]


def power_law_degree_sequence(
    n: int,
    exponent: float,
    mean_degree: float,
    d_min: int = 1,
    d_max: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Integer degree sequence ~ d^-exponent, rescaled to a target mean.

    Parameters
    ----------
    n:
        Sequence length.
    exponent:
        Power-law exponent (``> 1``); 2-3 is the OSN range.
    mean_degree:
        Target average degree; the raw sample is rescaled (preserving
        its shape) so the realised mean lands close to this value.
    d_min, d_max:
        Degree support bounds. ``d_max`` defaults to ``n - 1``.

    Returns
    -------
    int64 array with even sum (one degree is bumped when needed so the
    sequence is graphical for the pairing model).
    """
    gen = ensure_rng(rng)
    if n <= 0:
        raise GenerationError(f"n must be positive, got {n}")
    if exponent <= 1.0:
        raise GenerationError(f"exponent must exceed 1, got {exponent}")
    if d_max is None:
        d_max = max(n - 1, d_min)
    if not 1 <= d_min <= d_max:
        raise GenerationError(f"need 1 <= d_min <= d_max, got {d_min}, {d_max}")
    if mean_degree < d_min:
        raise GenerationError(
            f"mean_degree {mean_degree} below the minimum degree {d_min}"
        )
    # Continuous power-law sample via inverse CDF on [d_min, d_max].
    u = gen.random(n)
    a = 1.0 - exponent
    lo, hi = float(d_min), float(d_max)
    raw = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    # Rescale multiplicatively toward the target mean, keeping shape;
    # the floor at d_min biases the mean up, so solve by iteration.
    degrees = raw
    for _ in range(60):
        current = degrees.mean()
        if abs(current - mean_degree) / mean_degree < 1e-3:
            break
        degrees = np.clip(degrees * (mean_degree / current), lo, hi)
    out = np.clip(np.rint(degrees), d_min, d_max).astype(np.int64)
    if out.sum() % 2 == 1:
        bump = int(np.argmin(out))
        out[bump] += 1 if out[bump] < d_max else -1
    return out


def emit_configuration_arcs(
    degrees: np.ndarray,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream erased-pairing-model edges in blocks of ``chunk_size``.

    The stub array is O(sum(degrees)) and inherent to the pairing
    model; the emitted edge blocks are views into it, so no second
    edge-list copy is made. Same RNG trace as
    :func:`configuration_model_graph`.
    """
    gen = ensure_rng(rng)
    degrees = np.asarray(degrees, dtype=np.int64)
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
    if len(degrees) == 0:
        return iter(())
    if degrees.min() < 0:
        raise GenerationError("degrees must be non-negative")
    if degrees.max() >= len(degrees):
        raise GenerationError(
            "a degree equals or exceeds n - 1; the sequence cannot be simple"
        )
    if degrees.sum() % 2 != 0:
        raise GenerationError("degree sum must be even")
    return _configuration_blocks(degrees, chunk_size, gen)


def _configuration_blocks(
    degrees: np.ndarray, chunk_size: int, gen: np.random.Generator
) -> Iterator[np.ndarray]:
    stubs = np.repeat(np.arange(len(degrees), dtype=np.int64), degrees)
    gen.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    yield from chunk_edges(pairs[keep], chunk_size)


def configuration_model_graph(
    degrees: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Simple graph from a degree sequence via erased pairing model.

    Stubs are matched uniformly at random; self-loops and duplicate
    edges are *erased* (not repaired), so realised degrees can fall
    slightly below the requested ones — the standard trade-off for
    heavy-tailed sequences. The realised mean degree is typically within
    a few percent of the target for the graph sizes used here.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    builder = GraphBuilder(len(degrees))
    for chunk in emit_configuration_arcs(degrees, rng=rng):
        builder.add_edges(chunk)
    return builder.build()
