"""Erdos-Renyi random graphs: G(n, p) and G(n, m).

Each generator has two faces sharing one RNG trace: the classic
``gnp``/``gnm`` returning a built :class:`Graph`, and a chunked
``emit_gnp_arcs``/``emit_gnm_arcs`` yielding bounded edge blocks for the
out-of-core builders in :mod:`repro.graph.storage`. The one-shot
functions are implemented *on top of* the emit paths, so for the same
seed both faces draw the same random numbers and describe the same edge
set — a graph streamed to disk is bit-identical to one built in RAM.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges
from repro.rng import ensure_rng

__all__ = ["gnp", "gnm", "emit_gnp_arcs", "emit_gnm_arcs", "random_cross_edges"]


def emit_gnp_arcs(
    n: int,
    p: float,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream the edges of a G(n, p) draw in blocks of ``chunk_size``.

    Peak memory is O(chunk_size) regardless of ``|E|``: chosen pair
    ranks are buffered and unranked one block at a time. Consuming the
    whole stream performs exactly the same RNG draws as :func:`gnp`.
    """
    gen = ensure_rng(rng)
    if not 0.0 <= p <= 1.0:
        raise GenerationError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
    return _gnp_blocks(n, p, chunk_size, gen)


def _gnp_blocks(
    n: int, p: float, chunk_size: int, gen: np.random.Generator
) -> Iterator[np.ndarray]:
    if n < 2 or p == 0.0:
        return
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        rows, cols = np.triu_indices(n, k=1)
        yield from chunk_edges(
            np.column_stack((rows, cols)).astype(np.int64), chunk_size
        )
        return
    # Sample the flat indices of chosen pairs by geometric gap skipping,
    # flushing each buffer-full of ranks as an unranked edge block.
    chosen: list[int] = []
    log_q = np.log1p(-p)
    position = -1
    while True:
        gap = int(np.floor(np.log(1.0 - gen.random()) / log_q))
        position += gap + 1
        if position >= total_pairs:
            break
        chosen.append(position)
        if len(chosen) >= chunk_size:
            yield _edges_from_flat(np.asarray(chosen, dtype=np.int64), n)
            chosen = []
    if chosen:
        yield _edges_from_flat(np.asarray(chosen, dtype=np.int64), n)


def gnp(n: int, p: float, rng: np.random.Generator | int | None = None) -> Graph:
    """G(n, p): each of the ``n(n-1)/2`` pairs is an edge with prob. ``p``.

    Uses geometric skipping, so the cost is O(n + |E|) rather than O(n^2).
    """
    return _consume(n, emit_gnp_arcs(n, p, rng=rng))


def emit_gnm_arcs(
    n: int,
    m: int,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream the edges of a G(n, m) draw in blocks of ``chunk_size``.

    The ``m`` distinct pair ranks are materialized (inherent to
    sampling without replacement) but unranked and emitted one block at
    a time. Same RNG trace as :func:`gnm`.
    """
    gen = ensure_rng(rng)
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    total_pairs = n * (n - 1) // 2
    if not 0 <= m <= total_pairs:
        raise GenerationError(
            f"m must be in [0, {total_pairs}] for n={n}, got {m}"
        )
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
    return _gnm_blocks(n, m, total_pairs, chunk_size, gen)


def _gnm_blocks(
    n: int, m: int, total_pairs: int, chunk_size: int, gen: np.random.Generator
) -> Iterator[np.ndarray]:
    if m == 0:
        return
    flat = _gnm_flat(m, total_pairs, gen)
    for start in range(0, m, chunk_size):
        yield _edges_from_flat(flat[start : start + chunk_size], n)


def _gnm_flat(m: int, total_pairs: int, gen: np.random.Generator) -> np.ndarray:
    """``m`` distinct flat pair ranks (the shared G(n, m) sampling core)."""
    if total_pairs <= 4 * m:
        # Dense regime: permute all pair indices.
        return gen.permutation(total_pairs)[:m].astype(np.int64)
    # Sparse regime: rejection sample distinct flat indices.
    seen: set[int] = set()
    while len(seen) < m:
        needed = m - len(seen)
        draws = gen.integers(0, total_pairs, size=2 * needed + 8)
        for d in draws:
            seen.add(int(d))
            if len(seen) == m:
                break
    return np.fromiter(seen, dtype=np.int64, count=m)


def gnm(n: int, m: int, rng: np.random.Generator | int | None = None) -> Graph:
    """G(n, m): exactly ``m`` distinct edges chosen uniformly at random."""
    return _consume(n, emit_gnm_arcs(n, m, rng=rng))


def _edges_from_flat(flat: np.ndarray, n: int) -> np.ndarray:
    rows, cols = _unrank_pairs(flat, n)
    return np.column_stack((rows, cols))


def _consume(n: int, chunks: Iterator[np.ndarray]) -> Graph:
    """Build a graph from an emit stream (storage-mode aware)."""
    builder = GraphBuilder(n)
    for chunk in chunks:
        builder.add_edges(chunk)
    return builder.build()


def random_cross_edges(
    groups_a: np.ndarray,
    groups_b: np.ndarray,
    count: int,
    rng: np.random.Generator | int | None = None,
    forbid: "set[tuple[int, int]] | None" = None,
) -> np.ndarray:
    """``count`` distinct random edges with one endpoint in each group.

    Used by the planted model to wire categories together; ``forbid``
    lets callers exclude already-existing edges. Groups may overlap (the
    paper's "random edges between nodes in different categories" uses
    the whole node set on both sides and a forbid set of intra pairs is
    not needed because endpoints are drawn from *different* categories
    by the caller).
    """
    gen = ensure_rng(rng)
    groups_a = np.asarray(groups_a, dtype=np.int64)
    groups_b = np.asarray(groups_b, dtype=np.int64)
    if count < 0:
        raise GenerationError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    if len(groups_a) == 0 or len(groups_b) == 0:
        raise GenerationError("both endpoint groups must be non-empty")
    seen: set[tuple[int, int]] = set()
    forbid = forbid or set()
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    attempts = 0
    max_attempts = 100 * count + 1000
    while filled < count:
        attempts += 1
        if attempts > max_attempts:
            raise GenerationError(
                "could not place the requested number of distinct cross edges"
            )
        u = int(groups_a[gen.integers(0, len(groups_a))])
        v = int(groups_b[gen.integers(0, len(groups_b))])
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or key in forbid:
            continue
        seen.add(key)
        out[filled] = key
        filled += 1
    return out


def _unrank_pairs(flat: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat indices in ``[0, n(n-1)/2)`` to (row, col) with row < col.

    The pair (i, j), i < j, has flat rank ``i*n - i(i+3)/2 + j - 1``.
    Inverted in closed form via the quadratic formula (float64 is exact
    for the n <= ~1e6 range this library targets, with a correction step
    for safety).
    """
    flat = flat.astype(np.float64)
    b = 2 * n - 1
    i = np.floor((b - np.sqrt(b * b - 8 * flat)) / 2).astype(np.int64)
    # Correct any off-by-one from float rounding.
    def start(row: np.ndarray) -> np.ndarray:
        return row * n - (row * (row + 1)) // 2

    while np.any(start(i + 1) <= flat):
        i = np.where(start(i + 1) <= flat, i + 1, i)
    while np.any(start(i) > flat):
        i = np.where(start(i) > flat, i - 1, i)
    j = (flat - start(i)).astype(np.int64) + i + 1
    return i, j
