"""Erdos-Renyi random graphs: G(n, p) and G(n, m)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng

__all__ = ["gnp", "gnm", "random_cross_edges"]


def gnp(n: int, p: float, rng: np.random.Generator | int | None = None) -> Graph:
    """G(n, p): each of the ``n(n-1)/2`` pairs is an edge with prob. ``p``.

    Uses geometric skipping, so the cost is O(n + |E|) rather than O(n^2).
    """
    gen = ensure_rng(rng)
    if not 0.0 <= p <= 1.0:
        raise GenerationError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    if n < 2 or p == 0.0:
        return Graph.empty(n)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        rows, cols = np.triu_indices(n, k=1)
        return Graph.from_edges(n, np.column_stack((rows, cols)))
    # Sample the flat indices of chosen pairs by geometric gap skipping.
    chosen: list[int] = []
    log_q = np.log1p(-p)
    position = -1
    while True:
        gap = int(np.floor(np.log(1.0 - gen.random()) / log_q))
        position += gap + 1
        if position >= total_pairs:
            break
        chosen.append(position)
    if not chosen:
        return Graph.empty(n)
    flat = np.asarray(chosen, dtype=np.int64)
    rows, cols = _unrank_pairs(flat, n)
    return Graph.from_edges(n, np.column_stack((rows, cols)))


def gnm(n: int, m: int, rng: np.random.Generator | int | None = None) -> Graph:
    """G(n, m): exactly ``m`` distinct edges chosen uniformly at random."""
    gen = ensure_rng(rng)
    if n < 0:
        raise GenerationError(f"n must be non-negative, got {n}")
    total_pairs = n * (n - 1) // 2
    if not 0 <= m <= total_pairs:
        raise GenerationError(
            f"m must be in [0, {total_pairs}] for n={n}, got {m}"
        )
    if m == 0:
        return Graph.empty(n)
    if total_pairs <= 4 * m:
        # Dense regime: permute all pair indices.
        flat = gen.permutation(total_pairs)[:m].astype(np.int64)
    else:
        # Sparse regime: rejection sample distinct flat indices.
        seen: set[int] = set()
        while len(seen) < m:
            needed = m - len(seen)
            draws = gen.integers(0, total_pairs, size=2 * needed + 8)
            for d in draws:
                seen.add(int(d))
                if len(seen) == m:
                    break
        flat = np.fromiter(seen, dtype=np.int64, count=m)
    rows, cols = _unrank_pairs(flat, n)
    return Graph.from_edges(n, np.column_stack((rows, cols)))


def random_cross_edges(
    groups_a: np.ndarray,
    groups_b: np.ndarray,
    count: int,
    rng: np.random.Generator | int | None = None,
    forbid: "set[tuple[int, int]] | None" = None,
) -> np.ndarray:
    """``count`` distinct random edges with one endpoint in each group.

    Used by the planted model to wire categories together; ``forbid``
    lets callers exclude already-existing edges. Groups may overlap (the
    paper's "random edges between nodes in different categories" uses
    the whole node set on both sides and a forbid set of intra pairs is
    not needed because endpoints are drawn from *different* categories
    by the caller).
    """
    gen = ensure_rng(rng)
    groups_a = np.asarray(groups_a, dtype=np.int64)
    groups_b = np.asarray(groups_b, dtype=np.int64)
    if count < 0:
        raise GenerationError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    if len(groups_a) == 0 or len(groups_b) == 0:
        raise GenerationError("both endpoint groups must be non-empty")
    seen: set[tuple[int, int]] = set()
    forbid = forbid or set()
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    attempts = 0
    max_attempts = 100 * count + 1000
    while filled < count:
        attempts += 1
        if attempts > max_attempts:
            raise GenerationError(
                "could not place the requested number of distinct cross edges"
            )
        u = int(groups_a[gen.integers(0, len(groups_a))])
        v = int(groups_b[gen.integers(0, len(groups_b))])
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or key in forbid:
            continue
        seen.add(key)
        out[filled] = key
        filled += 1
    return out


def _unrank_pairs(flat: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map flat indices in ``[0, n(n-1)/2)`` to (row, col) with row < col.

    The pair (i, j), i < j, has flat rank ``i*n - i(i+3)/2 + j - 1``.
    Inverted in closed form via the quadratic formula (float64 is exact
    for the n <= ~1e6 range this library targets, with a correction step
    for safety).
    """
    flat = flat.astype(np.float64)
    b = 2 * n - 1
    i = np.floor((b - np.sqrt(b * b - 8 * flat)) / 2).astype(np.int64)
    # Correct any off-by-one from float rounding.
    def start(row: np.ndarray) -> np.ndarray:
        return row * n - (row * (row + 1)) // 2

    while np.any(start(i + 1) <= flat):
        i = np.where(start(i + 1) <= flat, i + 1, i)
    while np.any(start(i) > flat):
        i = np.where(start(i) > flat, i - 1, i)
    j = (flat - start(i)).astype(np.int64) + i + 1
    return i, j
