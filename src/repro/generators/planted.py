"""The paper's synthetic graph model (Section 6.2.1).

Quoting the construction:

* ``N = 88 850`` nodes partitioned into 10 categories with sizes from 50
  to 50 000 (the unique such geometric-ish ladder summing to N is
  50, 100, 200, 500, 1 000, 2 000, 5 000, 10 000, 20 000, 50 000);
* nodes in each category initially form a k-regular random graph, with
  ``k`` ranging 5..49 across experiments;
* ``N * k / 10`` random edges are added between nodes in *different*
  categories, giving ``|E| = 0.6 * N * k`` in total;
* finally, the category labels of a random fraction ``alpha`` of nodes
  are permuted — ``alpha = 0`` leaves categories aligned with the strong
  community structure, ``alpha = 1`` decouples them completely.

:func:`planted_category_graph` reproduces this exactly, plus a ``scale``
knob that shrinks every category by a constant factor for laptop-speed
tests and a ``connect`` flag that bridges any stray components (the
paper reports its instances were connected; small scaled instances may
not be).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GenerationError
from repro.generators.regular import random_regular_edges
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.operations import connected_components
from repro.graph.partition import CategoryPartition
from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges, edge_chunks
from repro.rng import ensure_rng

__all__ = [
    "PAPER_CATEGORY_SIZES",
    "PlantedModelConfig",
    "emit_planted_arcs",
    "planted_category_graph",
]

#: The 10 category sizes of Section 6.2.1 (sum = 88 850).
PAPER_CATEGORY_SIZES: tuple[int, ...] = (
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
)


@dataclass(frozen=True)
class PlantedModelConfig:
    """Parameters of the Section 6.2.1 synthetic model.

    Attributes
    ----------
    sizes:
        Category sizes; defaults to the paper's ladder.
    k:
        Intra-category regular degree (paper sweeps 5..49; default 20).
    alpha:
        Fraction of nodes whose labels are randomly permuted
        (community-tightness knob; default 0.5 as in most panels).
    inter_edge_fraction:
        Inter-category edges as a multiple of ``N * k``; the paper uses
        ``1/10``.
    scale:
        Integer shrink factor applied to every category size (min size
        clamps at ``k + 1`` so the regular graphs stay feasible).
    connect:
        Bridge stray components with extra inter-category edges so the
        graph is connected, matching the paper's instances.
    """

    sizes: tuple[int, ...] = PAPER_CATEGORY_SIZES
    k: int = 20
    alpha: float = 0.5
    inter_edge_fraction: float = 0.1
    scale: int = 1
    connect: bool = True

    def effective_sizes(self) -> tuple[int, ...]:
        """Category sizes after applying ``scale`` (and feasibility clamps)."""
        if self.scale < 1:
            raise GenerationError(f"scale must be >= 1, got {self.scale}")
        out = []
        for s in self.sizes:
            scaled = max(s // self.scale, self.k + 1)
            if (scaled * self.k) % 2 == 1:
                scaled += 1  # keep the pairing model feasible
            out.append(scaled)
        return tuple(out)

    def num_nodes(self) -> int:
        """Total node count after scaling."""
        return sum(self.effective_sizes())


def _resolve_config(
    config: PlantedModelConfig | None,
    *,
    k: int | None = None,
    alpha: float | None = None,
    sizes: tuple[int, ...] | None = None,
    scale: int | None = None,
) -> PlantedModelConfig:
    """Merge keyword overrides into a config (shared by both faces)."""
    base = config or PlantedModelConfig()
    overrides: dict = {}
    if k is not None:
        overrides["k"] = k
    if alpha is not None:
        overrides["alpha"] = alpha
    if sizes is not None:
        overrides["sizes"] = tuple(sizes)
    if scale is not None:
        overrides["scale"] = scale
    if overrides:
        base = PlantedModelConfig(
            sizes=overrides.get("sizes", base.sizes),
            k=overrides.get("k", base.k),
            alpha=overrides.get("alpha", base.alpha),
            inter_edge_fraction=base.inter_edge_fraction,
            scale=overrides.get("scale", base.scale),
            connect=base.connect,
        )
    return base


def planted_category_graph(
    config: PlantedModelConfig | None = None,
    *,
    k: int | None = None,
    alpha: float | None = None,
    sizes: tuple[int, ...] | None = None,
    scale: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[Graph, CategoryPartition]:
    """Generate a Section 6.2.1 graph and its category partition.

    Either pass a full :class:`PlantedModelConfig` or override individual
    fields by keyword. Returns ``(graph, partition)`` where the partition
    already includes the ``alpha`` label permutation.

    Examples
    --------
    >>> graph, partition = planted_category_graph(k=6, scale=100, rng=0)
    >>> partition.num_categories
    10
    """
    base = _resolve_config(config, k=k, alpha=alpha, sizes=sizes, scale=scale)
    return _generate(base, ensure_rng(rng))


def emit_planted_arcs(
    config: PlantedModelConfig | None = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    k: int | None = None,
    alpha: float | None = None,
    sizes: tuple[int, ...] | None = None,
    scale: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream the Section 6.2.1 model's edges in blocks of ``chunk_size``.

    A graph built from the emitted chunks equals
    ``planted_category_graph(...)[0]`` bit-for-bit for the same seed
    (the category partition is not part of the stream — rebuild it from
    the config when needed). When ``connect`` is set, a shadow builder
    assembles the graph alongside the stream to locate stray components
    and the bridge edges are appended as the final chunks; under an
    active ``memmap`` storage scope that shadow build spills to disk
    like any other, so peak memory stays bounded.
    """
    base = _resolve_config(config, k=k, alpha=alpha, sizes=sizes, scale=scale)
    gen = ensure_rng(rng)
    _validate(base)
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")

    def stream() -> Iterator[np.ndarray]:
        eff = base.effective_sizes()
        n = sum(eff)
        starts = np.concatenate(([0], np.cumsum(eff))).astype(np.int64)
        labels = np.repeat(np.arange(len(eff), dtype=np.int64), eff)
        shadow = GraphBuilder(n) if base.connect else None
        for block in _construction_blocks(base, eff, starts, labels, gen):
            if shadow is not None:
                shadow.add_edges(block)
            yield from chunk_edges(block, chunk_size)
        if shadow is not None:
            extra = _bridge_edges(shadow.build(), gen)
            if len(extra):
                yield from chunk_edges(extra, chunk_size)

    return stream()


def _validate(config: PlantedModelConfig) -> None:
    if config.k < 1:
        raise GenerationError(f"k must be positive, got {config.k}")
    if not 0.0 <= config.alpha <= 1.0:
        raise GenerationError(f"alpha must be in [0, 1], got {config.alpha}")
    if config.inter_edge_fraction < 0:
        raise GenerationError("inter_edge_fraction must be non-negative")


def _construction_blocks(
    config: PlantedModelConfig,
    sizes: tuple[int, ...],
    starts: np.ndarray,
    labels: np.ndarray,
    gen: np.random.Generator,
) -> Iterator[np.ndarray]:
    """The model's raw edge blocks (pre-bridging), in RNG draw order."""
    # 1. Intra-category k-regular random graphs.
    for idx, size in enumerate(sizes):
        edges = random_regular_edges(size, config.k, rng=gen)
        yield edges + starts[idx]
    # 2. N * k * fraction random edges between different categories.
    n = int(starts[-1])
    inter_count = int(round(n * config.k * config.inter_edge_fraction))
    yield _inter_category_edges(labels, inter_count, gen)


def _generate(
    config: PlantedModelConfig, gen: np.random.Generator
) -> tuple[Graph, CategoryPartition]:
    _validate(config)
    sizes = config.effective_sizes()
    n = sum(sizes)
    builder = GraphBuilder(n)
    starts = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    labels = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)

    for block in _construction_blocks(config, sizes, starts, labels, gen):
        builder.add_edges(block)

    graph = builder.build()

    # 3. Bridge stray components if requested.
    if config.connect:
        graph = _bridge_components(graph, gen)

    partition = CategoryPartition(
        labels, names=[f"C{size}" for size in _unique_names(sizes)]
    )

    # 4. Permute the labels of a fraction alpha of nodes.
    if config.alpha > 0:
        partition = partition.permute_fraction(config.alpha, rng=gen)
    return graph, partition


def _unique_names(sizes: tuple[int, ...]) -> list[str]:
    """Stable unique names keyed by size (sizes can repeat after scaling)."""
    seen: dict[int, int] = {}
    names = []
    for s in sizes:
        count = seen.get(s, 0)
        names.append(f"{s}" if count == 0 else f"{s}.{count}")
        seen[s] = count + 1
    return names


def _inter_category_edges(
    labels: np.ndarray, count: int, gen: np.random.Generator
) -> np.ndarray:
    """``count`` distinct edges whose endpoints carry different labels."""
    n = len(labels)
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    seen: set[tuple[int, int]] = set()
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    # Vectorised batches with rejection of intra pairs and duplicates.
    while filled < count:
        batch = max(1024, 2 * (count - filled))
        us = gen.integers(0, n, size=batch)
        vs = gen.integers(0, n, size=batch)
        ok = labels[us] != labels[vs]
        for u, v in zip(us[ok], vs[ok]):
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key in seen:
                continue
            seen.add(key)
            out[filled] = key
            filled += 1
            if filled == count:
                break
    return out


def _bridge_edges(graph: Graph, gen: np.random.Generator) -> np.ndarray:
    """One random edge from each stray component to the giant one."""
    comp = connected_components(graph)
    num_components = int(comp.max()) + 1 if len(comp) else 0
    if num_components <= 1:
        return np.empty((0, 2), dtype=np.int64)
    counts = np.bincount(comp)
    giant = int(np.argmax(counts))
    giant_nodes = np.flatnonzero(comp == giant)
    extra = []
    for c in range(num_components):
        if c == giant:
            continue
        members = np.flatnonzero(comp == c)
        u = int(members[gen.integers(0, len(members))])
        v = int(giant_nodes[gen.integers(0, len(giant_nodes))])
        extra.append((u, v))
    return np.asarray(extra, dtype=np.int64)


def _bridge_components(graph: Graph, gen: np.random.Generator) -> Graph:
    """Connect stray components to the giant one with single random edges."""
    extra = _bridge_edges(graph, gen)
    if not len(extra):
        return graph
    builder = GraphBuilder(graph.num_nodes)
    # Re-add the existing edges in bounded windows rather than through
    # one O(|E|) edge_array materialization — under a memmap storage
    # scope this keeps the rebuild's peak memory at the chunk size.
    for chunk in edge_chunks(graph):
        builder.add_edges(chunk)
    builder.add_edges(extra)
    return builder.build()
