"""Random k-regular graphs via the pairing (configuration) model.

The paper's synthetic model (Section 6.2.1) builds each category as a
k-regular random graph. We implement the standard pairing model with a
repair phase: stubs are matched uniformly at random; the few self-loops
and multi-edges that result are eliminated by degree-preserving double
edge swaps against randomly chosen good edges. For ``k`` up to ~50 and
category sizes up to 50 000 this is fast and produces a uniform-ish
simple k-regular graph, which is all the paper's experiments require.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng

__all__ = ["random_regular_graph", "random_regular_edges", "emit_regular_arcs"]

_MAX_REPAIR_ROUNDS = 200


def random_regular_edges(
    n: int, k: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Edge array of a random simple k-regular graph on ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    k:
        Degree of every node; requires ``0 <= k < n`` and ``n * k`` even.

    Returns
    -------
    ``(n * k / 2, 2)`` int64 array of edges.

    Raises
    ------
    GenerationError
        For infeasible ``(n, k)`` or when the repair phase cannot remove
        all defects (vanishingly rare for ``k << n``; can only realistically
        happen for near-complete graphs, which we handle separately).
    """
    gen = ensure_rng(rng)
    if k < 0 or k >= n:
        raise GenerationError(f"k-regular graph requires 0 <= k < n; got n={n}, k={k}")
    if (n * k) % 2 != 0:
        raise GenerationError(f"n * k must be even; got n={n}, k={k}")
    if k == 0:
        return np.empty((0, 2), dtype=np.int64)
    if k == n - 1:
        # Complete graph: deterministic, no pairing needed.
        rows, cols = np.triu_indices(n, k=1)
        return np.column_stack((rows, cols)).astype(np.int64)

    stubs = np.repeat(np.arange(n, dtype=np.int64), k)
    gen.shuffle(stubs)
    edges = stubs.reshape(-1, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    edges = np.column_stack((lo, hi))

    for _ in range(_MAX_REPAIR_ROUNDS):
        keys = edges[:, 0] * np.int64(n) + edges[:, 1]
        loops = edges[:, 0] == edges[:, 1]
        order = np.argsort(keys)
        sorted_keys = keys[order]
        dup_sorted = np.zeros(len(keys), dtype=bool)
        dup_sorted[1:] = sorted_keys[1:] == sorted_keys[:-1]
        dup = np.zeros(len(keys), dtype=bool)
        dup[order] = dup_sorted
        bad = np.flatnonzero(loops | dup)
        if len(bad) == 0:
            return edges
        good_keys = set(int(key) for key in keys[~(loops | dup)])
        # Swap each bad edge with a random partner edge: (a,b),(c,d) ->
        # (a,d),(c,b). Accept the swap only if both new edges are simple
        # and not already present.
        for idx in bad:
            a, b = edges[idx]
            for _attempt in range(50):
                j = int(gen.integers(0, len(edges)))
                if j == idx:
                    continue
                c, d = edges[j]
                if gen.random() < 0.5:
                    c, d = d, c
                e1 = (min(a, d), max(a, d))
                e2 = (min(c, b), max(c, b))
                k1 = e1[0] * n + e1[1]
                k2 = e2[0] * n + e2[1]
                if a == d or c == b or k1 == k2 or k1 in good_keys or k2 in good_keys:
                    continue
                edges[idx] = e1
                edges[j] = e2
                good_keys.add(k1)
                good_keys.add(k2)
                break
    raise GenerationError(
        f"could not repair pairing-model defects for n={n}, k={k}; "
        "the parameters are too close to a complete graph"
    )


def emit_regular_arcs(
    n: int,
    k: int,
    chunk_size: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream the edges of a random k-regular graph in bounded blocks.

    The pairing model's repair phase needs the whole edge array (swaps
    may touch any edge), so the array is materialized — O(n * k / 2)
    rows, which is exactly the graph being built — and sliced into
    blocks afterwards. Same RNG trace as :func:`random_regular_edges`.
    """
    from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges

    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_ARCS
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")
    edges = random_regular_edges(n, k, rng)
    return chunk_edges(edges, chunk_size)


def random_regular_graph(
    n: int, k: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """A random simple k-regular :class:`Graph` (see
    :func:`random_regular_edges`)."""
    return Graph.from_edges(n, random_regular_edges(n, k, rng))
