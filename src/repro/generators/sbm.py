"""Stochastic block model (planted partition) graphs.

Used as a substrate with *tunable* community strength for ablation
benches, and to plant geography-flavored communities into the empirical
stand-in graphs. The paper's own synthetic model (Section 6.2.1) is the
related but distinct construction in :mod:`repro.generators.planted`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.partition import CategoryPartition
from repro.graph.storage import DEFAULT_CHUNK_ARCS, chunk_edges
from repro.rng import ensure_rng

__all__ = ["stochastic_block_model", "emit_sbm_arcs", "planted_partition_graph"]


def _validated_sizes_probs(
    sizes: Sequence[int], prob_matrix: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if len(sizes_arr) == 0 or sizes_arr.min() <= 0:
        raise GenerationError("block sizes must be positive")
    prob_matrix = np.asarray(prob_matrix, dtype=float)
    c = len(sizes_arr)
    if prob_matrix.shape != (c, c):
        raise GenerationError(
            f"prob_matrix must be ({c}, {c}), got {prob_matrix.shape}"
        )
    if not np.allclose(prob_matrix, prob_matrix.T):
        raise GenerationError("prob_matrix must be symmetric")
    if prob_matrix.min() < 0 or prob_matrix.max() > 1:
        raise GenerationError("probabilities must lie in [0, 1]")
    return sizes_arr, prob_matrix


def _sbm_blocks(
    sizes_arr: np.ndarray, prob_matrix: np.ndarray, gen: np.random.Generator
) -> Iterator[np.ndarray]:
    """One edge array per non-empty block pair, in (a, a) / (a, b) order."""
    c = len(sizes_arr)
    starts = np.concatenate(([0], np.cumsum(sizes_arr)))
    for a in range(c):
        na = int(sizes_arr[a])
        # Intra-block: G(na, p) pairs.
        p = float(prob_matrix[a, a])
        total_pairs = na * (na - 1) // 2
        if p > 0 and total_pairs > 0:
            count = int(gen.binomial(total_pairs, p))
            flat = gen.choice(total_pairs, size=min(count, total_pairs), replace=False)
            rows, cols = _unrank_block_pairs(flat.astype(np.int64), na)
            yield np.column_stack((rows + starts[a], cols + starts[a]))
        for b in range(a + 1, c):
            p = float(prob_matrix[a, b])
            nb = int(sizes_arr[b])
            total = na * nb
            if p == 0 or total == 0:
                continue
            count = int(gen.binomial(total, p))
            flat = gen.choice(total, size=min(count, total), replace=False).astype(
                np.int64
            )
            rows = flat // nb + starts[a]
            cols = flat % nb + starts[b]
            yield np.column_stack((rows, cols))


def stochastic_block_model(
    sizes: Sequence[int],
    prob_matrix: np.ndarray,
    rng: np.random.Generator | int | None = None,
    names: Sequence[str] | None = None,
) -> tuple[Graph, CategoryPartition]:
    """SBM with block sizes ``sizes`` and edge probabilities ``prob_matrix``.

    ``prob_matrix[a, b]`` is the probability of an edge between a node of
    block ``a`` and a node of block ``b``; the matrix must be symmetric.
    Sampling uses binomial counts per block pair plus rejection-free
    placement, so sparse blocks cost O(edges), not O(pairs).
    """
    gen = ensure_rng(rng)
    sizes_arr, prob_matrix = _validated_sizes_probs(sizes, prob_matrix)
    n = int(sizes_arr.sum())
    builder = GraphBuilder(n)
    for block in _sbm_blocks(sizes_arr, prob_matrix, gen):
        builder.add_edges(block)
    partition = CategoryPartition.from_blocks(sizes_arr, names=names)
    return builder.build(), partition


def emit_sbm_arcs(
    sizes: Sequence[int],
    prob_matrix: np.ndarray,
    chunk_size: int = DEFAULT_CHUNK_ARCS,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stream SBM edges in blocks of at most ``chunk_size``.

    Block pairs are sampled in the same order — and with the same RNG
    draws — as :func:`stochastic_block_model`; each block-pair edge
    array is re-sliced to the chunk bound before being yielded.
    """
    gen = ensure_rng(rng)
    sizes_arr, prob_matrix = _validated_sizes_probs(sizes, prob_matrix)
    if chunk_size < 1:
        raise GenerationError(f"chunk_size must be >= 1, got {chunk_size}")

    def blocks() -> Iterator[np.ndarray]:
        for block in _sbm_blocks(sizes_arr, prob_matrix, gen):
            yield from chunk_edges(block, chunk_size)

    return blocks()


def planted_partition_graph(
    num_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[Graph, CategoryPartition]:
    """Symmetric SBM: ``num_blocks`` equal blocks, two probabilities."""
    if num_blocks <= 0 or block_size <= 0:
        raise GenerationError("num_blocks and block_size must be positive")
    probs = np.full((num_blocks, num_blocks), p_out, dtype=float)
    np.fill_diagonal(probs, p_in)
    return stochastic_block_model(
        [block_size] * num_blocks, probs, rng=rng
    )


def _unrank_block_pairs(flat: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Unrank flat upper-triangle indices for an n-node block."""
    from repro.generators.er import _unrank_pairs

    return _unrank_pairs(flat, n)
