"""Graph substrate: CSR container, partitions, category graphs, I/O.

The out-of-core storage plane lives in :mod:`repro.graph.storage`:
``save_csr``/``open_csr`` persist and map CSR planes on disk,
``StreamingCSRBuilder`` builds them from bounded edge chunks, and the
``graph_storage("memmap")`` scope (or ``REPRO_GRAPH_STORAGE=memmap``)
reroutes every :class:`GraphBuilder` through it.
"""

from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.category_graph import CategoryGraph, cut_matrix, true_category_graph
from repro.graph.convert import from_networkx, to_networkx
from repro.graph.io import (
    category_graph_to_json,
    load_npz,
    read_edge_list,
    read_labels,
    save_npz,
    write_edge_list,
    write_labels,
)
from repro.graph.operations import (
    DegreeStats,
    connected_components,
    degree_histogram,
    degree_stats,
    induced_subgraph,
    is_connected,
    largest_component,
)
from repro.graph.partition import CategoryPartition
from repro.graph.planes import (
    DerivedPlaneStore,
    PlaneWriter,
    clear_plane_memo,
    plane_store_at,
    plane_store_for,
    source_fingerprint,
)
from repro.graph.storage import (
    MemmapCSR,
    StreamingCSRBuilder,
    active_storage_mode,
    chunk_edges,
    edge_chunks,
    graph_storage,
    open_csr,
    save_csr,
    storage_root,
    stream_graph,
)
from repro.graph.union import UnionCSR, union_csr

__all__ = [
    "DerivedPlaneStore",
    "MemmapCSR",
    "PlaneWriter",
    "StreamingCSRBuilder",
    "clear_plane_memo",
    "plane_store_at",
    "plane_store_for",
    "source_fingerprint",
    "active_storage_mode",
    "chunk_edges",
    "edge_chunks",
    "graph_storage",
    "open_csr",
    "save_csr",
    "storage_root",
    "stream_graph",
    "Graph",
    "GraphBuilder",
    "CategoryGraph",
    "CategoryPartition",
    "UnionCSR",
    "union_csr",
    "cut_matrix",
    "true_category_graph",
    "connected_components",
    "is_connected",
    "largest_component",
    "induced_subgraph",
    "degree_histogram",
    "degree_stats",
    "DegreeStats",
    "read_edge_list",
    "write_edge_list",
    "read_labels",
    "write_labels",
    "save_npz",
    "load_npz",
    "category_graph_to_json",
    "to_networkx",
    "from_networkx",
]
