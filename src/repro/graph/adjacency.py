"""Compressed-sparse-row (CSR) undirected graph container.

This is the performance substrate of the library: an immutable, simple
(no self-loops, no multi-edges), undirected graph over integer node ids
``0..N-1``, stored as two NumPy arrays:

* ``indptr``  — shape ``(N + 1,)``; node ``v``'s neighbors live in
  ``indices[indptr[v]:indptr[v + 1]]``.
* ``indices`` — shape ``(2 * |E|,)``; each undirected edge appears twice,
  once per endpoint; each adjacency run is sorted ascending.

Random walks, star observations, and exact category-graph computation all
reduce to array slicing on this structure, which keeps the paper's
N = 88 850 synthetic sweeps laptop-fast.

Build instances with :class:`repro.graph.builder.GraphBuilder` or the
``Graph.from_*`` constructors; direct ``__init__`` validates its inputs.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import GraphError

__all__ = ["Graph"]


class Graph:
    """Immutable undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of shape ``(num_nodes + 1,)``, non-decreasing,
        ``indptr[0] == 0``.
    indices:
        ``int64`` array of neighbor ids; ``len(indices) == indptr[-1]``
        and equals twice the number of undirected edges.
    validate:
        When true (default), verify CSR invariants (symmetry, sortedness,
        no self-loops, no duplicates). Constructors that already
        guarantee the invariants pass ``False``.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges", "_arc_sources")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, validate: bool = True):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        self._arc_sources = None
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional arrays")
        if len(indptr) == 0 or indptr[0] != 0:
            raise GraphError("indptr must start with 0 and be non-empty")
        if indptr[-1] != len(indices):
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({len(indices)})"
            )
        if len(indices) % 2 != 0:
            raise GraphError("undirected CSR must have an even number of directed arcs")
        self._indptr = indptr
        self._indices = indices
        self._num_edges = len(indices) // 2
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_nodes
        if np.any(np.diff(self._indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if len(self._indices) and (
            self._indices.min() < 0 or self._indices.max() >= n
        ):
            raise GraphError("indices reference node ids outside [0, num_nodes)")
        rev = self.arc_sources
        # Sorted runs and no duplicates / self-loops, via one np.diff
        # over the full indices array masked at run boundaries.
        if len(self._indices):
            loops = self._indices == rev
            if np.any(loops):
                raise GraphError(
                    f"self-loop at node {int(rev[int(np.argmax(loops))])}"
                )
        if len(self._indices) > 1:
            steps = np.diff(self._indices)
            within_run = rev[1:] == rev[:-1]
            unsorted = within_run & (steps <= 0)
            if np.any(unsorted):
                v = int(rev[1:][int(np.argmax(unsorted))])
                raise GraphError(f"adjacency of node {v} is not strictly sorted")
        # Symmetry: total in-degree equals total out-degree per node is
        # implied if every arc has a reverse arc.
        order_fwd = np.lexsort((self._indices, rev))
        order_rev = np.lexsort((rev, self._indices))
        if not (
            np.array_equal(rev[order_fwd], self._indices[order_rev])
            and np.array_equal(self._indices[order_fwd], rev[order_rev])
        ):
            raise GraphError("adjacency is not symmetric (missing reverse arcs)")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """Read-only view of the CSR offsets array."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """Read-only view of the CSR neighbor array."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        self._check_node(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every node, as an ``int64`` array of shape ``(N,)``."""
        return np.diff(self._indptr)

    @property
    def arc_sources(self) -> np.ndarray:
        """Source node of every directed arc, aligned with ``indices``.

        ``(arc_sources[i], indices[i])`` enumerates all ``2|E|`` arcs.
        Computed once and cached (the graph is immutable); validation and
        the observation builders share it. Under ``graph_storage("memmap")``
        the derivation goes through the plane store of
        :mod:`repro.graph.planes` — built chunked on disk, reopened as a
        read-only mapping, and reused by every run over a bit-identical
        substrate. Read-only view.
        """
        if self._arc_sources is None:
            from repro.graph.planes import derived_arc_sources

            self._arc_sources = derived_arc_sources(self._indptr)
        view = self._arc_sources.view()
        view.flags.writeable = False
        return view

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (read-only array view)."""
        self._check_node(v)
        view = self._indices[self._indptr[v] : self._indptr[v + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    def gather_neighborhoods(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated adjacency runs of ``nodes``, in one gather.

        Returns ``(neighbors, lengths)`` where ``neighbors`` is the
        concatenation of each node's (sorted) adjacency run in the order
        the nodes were given — run ``i`` occupies
        ``neighbors[lengths[:i].sum() : lengths[:i].sum() + lengths[i]]``
        — and ``lengths`` is each run's degree. Repeated nodes repeat
        their runs. This is the frontier-expansion primitive of the
        batched traversal kernels (:mod:`repro.sampling.traversal`): one
        fancy-indexed gather over the whole frontier instead of a
        Python-level slice per node, and it reads identically from
        in-RAM and memmap-backed planes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 1:
            raise GraphError("gather_neighborhoods needs a 1-D node array")
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise GraphError(
                "gather_neighborhoods received node ids outside the graph"
            )
        starts = self._indptr[nodes]
        lengths = self._indptr[nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lengths
        # Position j of run i maps to arc starts[i] + j: shift a flat
        # arange by each run's (start - cumulative-output-offset).
        first = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(lengths[:-1], out=first[1:])
        arcs = np.repeat(starts - first, lengths) + np.arange(total, dtype=np.int64)
        return self._indices[arcs], lengths

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` exists.

        Binary search over the (sorted) shorter adjacency run: O(log d).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        du = self._indptr[u + 1] - self._indptr[u]
        dv = self._indptr[v + 1] - self._indptr[v]
        if dv < du:
            u, v = v, u
        run = self._indices[self._indptr[u] : self._indptr[u + 1]]
        pos = np.searchsorted(run, v)
        return pos < len(run) and run[pos] == v

    def volume(self, nodes: np.ndarray | None = None) -> int:
        """Sum of degrees of ``nodes`` (Eq. 1 of the paper).

        With ``nodes=None`` this is ``vol(V) = 2 |E|``.
        """
        if nodes is None:
            return 2 * self._num_edges
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise GraphError("volume() received node ids outside the graph")
        # Two O(|nodes|) gathers; never materializes all N degrees.
        return int(np.sum(self._indptr[nodes + 1] - self._indptr[nodes]))

    def mean_degree(self) -> float:
        """Average node degree ``k_V = 2|E| / N``; 0.0 for the empty graph."""
        if self.num_nodes == 0:
            return 0.0
        return 2.0 * self._num_edges / self.num_nodes

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_nodes):
            run = self._indices[self._indptr[u] : self._indptr[u + 1]]
            for v in run[np.searchsorted(run, u, side="right") :]:
                yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(|E|, 2)`` array with ``u < v``.

        Vectorised; preferred over :meth:`edges` for bulk work.
        """
        n = self.num_nodes
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        mask = src < self._indices
        return np.column_stack((src[mask], self._indices[mask]))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: "np.ndarray | list[tuple[int, int]]"
    ) -> "Graph":
        """Build a graph from an edge list.

        Self-loops are rejected; duplicate edges are merged (the graph is
        simple). ``edges`` may be any ``(m, 2)``-shaped array-like.
        """
        from repro.graph.builder import GraphBuilder  # local import avoids a cycle

        builder = GraphBuilder(num_nodes)
        builder.add_edges(edges)
        return builder.build()

    @classmethod
    def empty(cls, num_nodes: int) -> "Graph":
        """An edgeless graph on ``num_nodes`` nodes."""
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        return cls(
            np.zeros(num_nodes + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not 0 <= v < self.num_nodes:
            raise GraphError(f"node {v} outside [0, {self.num_nodes})")

    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:  # immutable, so hashable
        return hash((self._indptr.tobytes(), self._indices.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
