"""Incremental construction of :class:`repro.graph.adjacency.Graph`.

:class:`GraphBuilder` accumulates edges (as NumPy chunks, so bulk adds
are cheap), then :meth:`GraphBuilder.build` deduplicates, symmetrises and
emits a validated CSR graph in one vectorised pass.

The builder is also the library's *storage seam*: when the ambient
storage mode (:func:`repro.graph.storage.active_storage_mode` —
``graph_storage("memmap")`` scopes or ``REPRO_GRAPH_STORAGE=memmap``)
selects the out-of-core plane, every added chunk is forwarded to a
:class:`~repro.graph.storage.StreamingCSRBuilder` that spills sorted
runs to disk, and :meth:`build` returns a graph whose CSR planes are
``np.memmap`` views of the on-disk store — bit-identical to the in-RAM
build, with peak RSS bounded by the chunk size instead of ``|E|``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates undirected edges and produces an immutable Graph.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids must lie in ``[0, num_nodes)``.

    Notes
    -----
    * Duplicate edges are silently merged (the result is a simple graph).
    * Self-loops raise :class:`GraphError` eagerly — they are always a
      bug in this library's domain (friendship/overlay graphs).
    * The storage mode is captured at construction time, so a builder
      created inside a ``graph_storage("memmap")`` scope spills its
      chunks out-of-core even if the scope exits before ``build()``.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._chunks: list[np.ndarray] = []
        self._num_added = 0
        from repro.graph import storage  # deferred: avoids an import cycle

        self._streaming = (
            storage.StreamingCSRBuilder(self._num_nodes)
            if storage.active_storage_mode() == "memmap"
            else None
        )

    @property
    def num_nodes(self) -> int:
        """Node count the final graph will have."""
        return self._num_nodes

    def add_edge(self, u: int, v: int) -> None:
        """Add a single undirected edge ``{u, v}``."""
        self.add_edges(np.array([[u, v]], dtype=np.int64))

    def add_edges(self, edges: "np.ndarray | list[tuple[int, int]]") -> None:
        """Add a batch of undirected edges from an ``(m, 2)`` array-like."""
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {arr.shape}")
        if arr.min() < 0 or arr.max() >= self._num_nodes:
            raise GraphError(
                f"edge endpoints must lie in [0, {self._num_nodes}); "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        if np.any(arr[:, 0] == arr[:, 1]):
            bad = int(arr[arr[:, 0] == arr[:, 1]][0, 0])
            raise GraphError(f"self-loop at node {bad} is not allowed")
        self._num_added += len(arr)
        if self._streaming is not None:
            self._streaming.add_edges(arr)
        else:
            self._chunks.append(arr)

    def edge_count_upper_bound(self) -> int:
        """Number of edge records added so far (before deduplication)."""
        return self._num_added

    def build(self) -> Graph:
        """Deduplicate, symmetrise and emit the CSR graph.

        In-RAM mode this is one vectorised pass; in memmap mode the
        spilled runs are external-merged into an on-disk CSR and the
        returned graph's planes are read-only file mappings. Both paths
        produce the same bytes.
        """
        n = self._num_nodes
        if self._streaming is not None:
            return self._streaming.build().graph()
        if not self._chunks:
            return Graph.empty(n)
        raw = np.concatenate(self._chunks)
        # Canonicalise each edge as (min, max) and deduplicate.
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        keys = lo * np.int64(n) + hi
        unique_keys = np.unique(keys)
        lo = unique_keys // n
        hi = unique_keys % n
        # Symmetrise: each edge contributes two directed arcs.
        src = np.concatenate((lo, hi))
        dst = np.concatenate((hi, lo))
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        # Invariants hold by construction; skip the O(N·d) re-validation.
        return Graph(indptr, dst, validate=False)
