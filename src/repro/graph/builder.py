"""Incremental construction of :class:`repro.graph.adjacency.Graph`.

:class:`GraphBuilder` accumulates edges (as NumPy chunks, so bulk adds
are cheap), then :meth:`GraphBuilder.build` deduplicates, symmetrises and
emits a validated CSR graph in one vectorised pass.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates undirected edges and produces an immutable Graph.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids must lie in ``[0, num_nodes)``.

    Notes
    -----
    * Duplicate edges are silently merged (the result is a simple graph).
    * Self-loops raise :class:`GraphError` eagerly — they are always a
      bug in this library's domain (friendship/overlay graphs).
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._chunks: list[np.ndarray] = []

    @property
    def num_nodes(self) -> int:
        """Node count the final graph will have."""
        return self._num_nodes

    def add_edge(self, u: int, v: int) -> None:
        """Add a single undirected edge ``{u, v}``."""
        self.add_edges(np.array([[u, v]], dtype=np.int64))

    def add_edges(self, edges: "np.ndarray | list[tuple[int, int]]") -> None:
        """Add a batch of undirected edges from an ``(m, 2)`` array-like."""
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {arr.shape}")
        if arr.min() < 0 or arr.max() >= self._num_nodes:
            raise GraphError(
                f"edge endpoints must lie in [0, {self._num_nodes}); "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        if np.any(arr[:, 0] == arr[:, 1]):
            bad = int(arr[arr[:, 0] == arr[:, 1]][0, 0])
            raise GraphError(f"self-loop at node {bad} is not allowed")
        self._chunks.append(arr)

    def edge_count_upper_bound(self) -> int:
        """Number of edge records added so far (before deduplication)."""
        return sum(len(c) for c in self._chunks)

    def build(self) -> Graph:
        """Deduplicate, symmetrise and emit the CSR graph."""
        n = self._num_nodes
        if not self._chunks:
            return Graph.empty(n)
        raw = np.concatenate(self._chunks)
        # Canonicalise each edge as (min, max) and deduplicate.
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        keys = lo * np.int64(n) + hi
        unique_keys = np.unique(keys)
        lo = unique_keys // n
        hi = unique_keys % n
        # Symmetrise: each edge contributes two directed arcs.
        src = np.concatenate((lo, hi))
        dst = np.concatenate((hi, lo))
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        # Invariants hold by construction; skip the O(N·d) re-validation.
        return Graph(indptr, dst, validate=False)
