"""The category graph ``G_C`` (Section 2.2, Fig. 1 of the paper).

Given a graph ``G`` and a partition of its nodes into categories, the
category graph has one node per category and, for each unordered pair of
distinct categories ``{A, B}`` with at least one cross edge, a weighted
edge. The canonical weight is Eq. (3):

    w(A, B) = |E_{A,B}| / (|A| * |B|)

— the probability that a uniformly chosen member of ``A`` is adjacent to
a uniformly chosen member of ``B``.

:class:`CategoryGraph` stores the full matrices (edge-cut counts and
weights) so both ground truth (from a fully observed graph, via
:func:`true_category_graph`) and estimates (from
:mod:`repro.core.category_graph_estimator`) share one representation.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import PartitionError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition

__all__ = ["CategoryGraph", "true_category_graph", "cut_matrix"]


class CategoryGraph:
    """Weighted graph over categories.

    Parameters
    ----------
    sizes:
        ``(C,)`` category sizes ``|A|`` (true or estimated; float for
        estimates).
    weights:
        ``(C, C)`` symmetric matrix of Eq. (3) weights; the diagonal is
        not part of the paper's definition (self-loops are excluded) and
        is stored as ``nan`` by convention.
    names:
        Optional category names.
    cuts:
        Optional ``(C, C)`` matrix of edge-cut sizes ``|E_{A,B}|``
        (exact integers for ground truth, floats for estimates).
    """

    __slots__ = ("_sizes", "_weights", "_names", "_cuts")

    def __init__(
        self,
        sizes: np.ndarray,
        weights: np.ndarray,
        names: tuple[str, ...] | None = None,
        cuts: np.ndarray | None = None,
    ):
        sizes = np.asarray(sizes, dtype=float)
        weights = np.asarray(weights, dtype=float)
        c = len(sizes)
        if weights.shape != (c, c):
            raise PartitionError(
                f"weights must be ({c}, {c}) to match {c} categories; got {weights.shape}"
            )
        if not np.allclose(weights, weights.T, equal_nan=True):
            raise PartitionError("weights matrix must be symmetric")
        self._sizes = sizes
        self._weights = weights
        self._names = tuple(names) if names is not None else tuple(f"C{i}" for i in range(c))
        if len(self._names) != c:
            raise PartitionError(f"expected {c} names, got {len(self._names)}")
        if cuts is not None:
            cuts = np.asarray(cuts, dtype=float)
            if cuts.shape != (c, c):
                raise PartitionError(f"cuts must be ({c}, {c}); got {cuts.shape}")
        self._cuts = cuts

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        """Number of categories ``|C|``."""
        return len(self._sizes)

    @property
    def names(self) -> tuple[str, ...]:
        """Category names."""
        return self._names

    @property
    def sizes(self) -> np.ndarray:
        """Category sizes ``|A|`` (float when estimated)."""
        return self._sizes

    @property
    def weights(self) -> np.ndarray:
        """Full ``(C, C)`` weight matrix; diagonal is ``nan``."""
        return self._weights

    @property
    def cuts(self) -> np.ndarray | None:
        """Edge-cut matrix ``|E_{A,B}|`` when available, else ``None``."""
        return self._cuts

    def size(self, category: "int | str") -> float:
        """Size of one category (by index or name)."""
        return float(self._sizes[self._resolve(category)])

    def weight(self, a: "int | str", b: "int | str") -> float:
        """Eq. (3) weight ``w(A, B)`` for two distinct categories."""
        ia, ib = self._resolve(a), self._resolve(b)
        if ia == ib:
            raise PartitionError("w(A, A) is undefined: the category graph has no self-loops")
        return float(self._weights[ia, ib])

    def has_edge(self, a: "int | str", b: "int | str") -> bool:
        """True when ``w(A, B) > 0`` (i.e. the cut is non-empty)."""
        value = self.weight(a, b)
        return bool(np.isfinite(value) and value > 0)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate weighted edges ``(a, b, w)`` with ``a < b`` and ``w > 0``."""
        c = self.num_categories
        for a in range(c):
            for b in range(a + 1, c):
                w = self._weights[a, b]
                if np.isfinite(w) and w > 0:
                    yield (a, b, float(w))

    def num_edges(self) -> int:
        """Number of category-graph edges (pairs with positive weight)."""
        upper = np.triu(np.nan_to_num(self._weights, nan=0.0), k=1)
        return int(np.count_nonzero(upper > 0))

    def top_edges(self, k: int) -> list[tuple[str, str, float]]:
        """The ``k`` heaviest edges as ``(name_a, name_b, w)``, descending."""
        ranked = sorted(self.edges(), key=lambda e: -e[2])[: max(k, 0)]
        return [(self._names[a], self._names[b], w) for a, b, w in ranked]

    def _resolve(self, category: "int | str") -> int:
        if isinstance(category, str):
            try:
                return self._names.index(category)
            except ValueError:
                raise PartitionError(f"unknown category name: {category!r}") from None
        idx = int(category)
        if not 0 <= idx < self.num_categories:
            raise PartitionError(f"category {idx} outside [0, {self.num_categories})")
        return idx

    def __repr__(self) -> str:
        return (
            f"CategoryGraph(num_categories={self.num_categories}, "
            f"num_edges={self.num_edges()})"
        )


def cut_matrix(graph: Graph, partition: CategoryPartition) -> np.ndarray:
    """Exact edge-cut counts ``|E_{A,B}|`` for every category pair.

    Returns a symmetric ``(C, C)`` ``int64`` matrix. The diagonal holds
    the number of *intra*-category edges (not used by Eq. (3), which
    excludes self-loops, but cheap to compute and useful for modularity
    and the Facebook substrate).
    """
    if graph.num_nodes != partition.num_nodes:
        raise PartitionError(
            f"partition covers {partition.num_nodes} nodes but graph has "
            f"{graph.num_nodes}"
        )
    c = partition.num_categories
    edges = graph.edge_array()
    cuts = np.zeros((c, c), dtype=np.int64)
    if len(edges):
        la = partition.labels[edges[:, 0]]
        lb = partition.labels[edges[:, 1]]
        np.add.at(cuts, (la, lb), 1)
        np.add.at(cuts, (lb, la), 1)
        # Intra-category edges were double-counted by the two add.at calls.
        diag = np.bincount(la[la == lb], minlength=c)
        np.fill_diagonal(cuts, diag)
    return cuts


def true_category_graph(graph: Graph, partition: CategoryPartition) -> CategoryGraph:
    """Ground-truth category graph via Eq. (3) from a fully known graph."""
    cuts = cut_matrix(graph, partition)
    sizes = partition.sizes().astype(float)
    denom = np.outer(sizes, sizes)
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(denom > 0, cuts / denom, np.nan)
    np.fill_diagonal(weights, np.nan)
    return CategoryGraph(sizes, weights, names=partition.names, cuts=cuts)
