"""Bridges between :class:`repro.graph.adjacency.Graph` and NetworkX.

NetworkX is used only at the edges of the library (interoperability and
cross-checking in tests); all hot paths run on the CSR container.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(
    graph: Graph, partition: CategoryPartition | None = None
) -> nx.Graph:
    """Convert to an ``nx.Graph``; category names go to a ``category``
    node attribute when a partition is given."""
    out = nx.Graph()
    out.add_nodes_from(range(graph.num_nodes))
    out.add_edges_from(map(tuple, graph.edge_array()))
    if partition is not None:
        if partition.num_nodes != graph.num_nodes:
            raise GraphError(
                "partition node count does not match graph node count"
            )
        names = partition.names
        nx.set_node_attributes(
            out,
            {v: names[c] for v, c in enumerate(partition.labels)},
            name="category",
        )
    return out


def from_networkx(nx_graph: nx.Graph) -> tuple[Graph, CategoryPartition | None]:
    """Convert from an ``nx.Graph``.

    Nodes are relabelled ``0..N-1`` in sorted order when possible, else
    in insertion order. If every node carries a ``category`` attribute, a
    partition is reconstructed from it. Self-loops are dropped.
    """
    if nx_graph.is_directed() or nx_graph.is_multigraph():
        raise GraphError("only simple undirected NetworkX graphs are supported")
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass  # mixed-type node labels: keep insertion order
    index = {node: i for i, node in enumerate(nodes)}
    edges = [
        (index[u], index[v]) for u, v in nx_graph.edges() if u != v
    ]
    graph = Graph.from_edges(
        len(nodes), np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    )
    categories = nx.get_node_attributes(nx_graph, "category")
    partition = None
    if categories and len(categories) == len(nodes):
        mapping = {index[node]: str(cat) for node, cat in categories.items()}
        partition = CategoryPartition.from_mapping(len(nodes), mapping)
    return graph, partition
