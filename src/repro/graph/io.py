"""Graph and partition persistence.

Three formats:

* **edge list** — whitespace-separated ``u v`` per line, ``#`` comments
  (the SNAP convention used by the paper's empirical datasets);
* **label file** — one category name per node, line ``v name``;
* **NPZ bundle** — fast binary round-trip of a graph plus optional
  partition, used by the dataset cache.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_labels",
    "write_labels",
    "save_npz",
    "load_npz",
    "category_graph_to_json",
]


def read_edge_list(path: "str | Path", num_nodes: int | None = None) -> Graph:
    """Read a whitespace-separated edge list.

    Node ids must be non-negative integers. ``num_nodes`` defaults to
    ``max(id) + 1``. Lines starting with ``#`` and blank lines are
    skipped; self-loops are dropped (SNAP dumps occasionally contain
    them) rather than rejected.
    """
    path = Path(path)
    rows: list[tuple[int, int]] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {text!r}")
            u, v = int(parts[0]), int(parts[1])
            if u != v:
                rows.append((u, v))
    if not rows:
        return Graph.empty(num_nodes or 0)
    arr = np.asarray(rows, dtype=np.int64)
    inferred = int(arr.max()) + 1
    if num_nodes is None:
        num_nodes = inferred
    elif num_nodes < inferred:
        raise GraphError(
            f"num_nodes={num_nodes} but the file references node {inferred - 1}"
        )
    return Graph.from_edges(num_nodes, arr)


def write_edge_list(graph: Graph, path: "str | Path", header: str | None = None) -> None:
    """Write ``u v`` lines (``u < v``), with an optional ``#`` header."""
    path = Path(path)
    with path.open("w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in graph.edge_array():
            handle.write(f"{u} {v}\n")


def read_labels(path: "str | Path", num_nodes: int) -> CategoryPartition:
    """Read a ``v name`` label file into a partition."""
    path = Path(path)
    mapping: dict[int, str] = {}
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split(maxsplit=1)
            if len(parts) != 2:
                raise GraphError(f"{path}:{lineno}: expected 'v name', got {text!r}")
            mapping[int(parts[0])] = parts[1]
    return CategoryPartition.from_mapping(num_nodes, mapping)


def write_labels(partition: CategoryPartition, path: "str | Path") -> None:
    """Write the partition as ``v name`` lines."""
    path = Path(path)
    names = partition.names
    with path.open("w") as handle:
        for v, label in enumerate(partition.labels):
            handle.write(f"{v} {names[label]}\n")


def save_npz(
    path: "str | Path", graph: Graph, partition: CategoryPartition | None = None
) -> None:
    """Binary round-trip bundle (graph CSR + optional partition).

    Category names are stored as a fixed-width unicode array, never as
    pickled objects, so the bundle loads with ``allow_pickle=False`` —
    opening an untrusted ``.npz`` cannot execute anything.
    """
    payload: dict[str, np.ndarray] = {
        "indptr": np.asarray(graph.indptr),
        "indices": np.asarray(graph.indices),
    }
    if partition is not None:
        payload["labels"] = np.asarray(partition.labels)
        payload["names"] = np.asarray(partition.names, dtype="U")
    np.savez_compressed(Path(path), **payload)


def load_npz(path: "str | Path") -> tuple[Graph, CategoryPartition | None]:
    """Load a bundle written by :func:`save_npz`.

    Pickle execution is disabled; bundles from older versions that
    stored ``names`` as an object array fall back to a guarded re-read
    of that one member.
    """
    path = Path(path)
    with np.load(path) as data:
        graph = Graph(data["indptr"], data["indices"], validate=False)
        partition = None
        if "labels" in data:
            try:
                names = [str(s) for s in data["names"]]
            except ValueError:
                names = _legacy_object_names(path)
            partition = CategoryPartition(data["labels"], names=names)
    return graph, partition


def _legacy_object_names(path: Path) -> list[str]:
    """Compat fallback for pre-fix bundles with object-dtype ``names``.

    Only the ``names`` member is re-read with pickling enabled, and
    only after the pickle-free load of the same file already failed on
    it — a deliberate opt-in for old caches, not the default path.
    """
    with np.load(path, allow_pickle=True) as data:
        return [str(s) for s in data["names"]]


def category_graph_to_json(category_graph, min_weight: float = 0.0) -> str:
    """Serialise a :class:`~repro.graph.category_graph.CategoryGraph`.

    The JSON schema mirrors what a geosocialmap-style front-end needs:
    a ``nodes`` list (name + size) and a ``links`` list (source, target,
    weight), with links below ``min_weight`` dropped.
    """
    nodes = [
        {"name": name, "size": float(size)}
        for name, size in zip(category_graph.names, category_graph.sizes)
    ]
    links = [
        {
            "source": category_graph.names[a],
            "target": category_graph.names[b],
            "weight": w,
        }
        for a, b, w in category_graph.edges()
        if w >= min_weight
    ]
    return json.dumps({"nodes": nodes, "links": links}, indent=2)
