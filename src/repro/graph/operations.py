"""Structural operations on :class:`~repro.graph.adjacency.Graph`.

Connected components, induced subgraphs, degree statistics, and the
connectivity checks that random-walk samplers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "induced_subgraph",
    "degree_histogram",
    "DegreeStats",
    "degree_stats",
]


def connected_components(graph: Graph) -> np.ndarray:
    """Component id per node (ids are ``0..num_components-1``).

    Iterative BFS over the CSR arrays — no recursion, linear time.
    """
    n = graph.num_nodes
    comp = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    current = 0
    stack: list[int] = []
    for start in range(n):
        if comp[start] != -1:
            continue
        comp[start] = current
        stack.append(start)
        while stack:
            v = stack.pop()
            for u in indices[indptr[v] : indptr[v + 1]]:
                if comp[u] == -1:
                    comp[u] = current
                    stack.append(int(u))
        current += 1
    return comp


def is_connected(graph: Graph) -> bool:
    """True when the graph has exactly one connected component.

    The empty graph is considered connected (vacuously).
    """
    if graph.num_nodes == 0:
        return True
    comp = connected_components(graph)
    return int(comp.max()) == 0


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest component.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    id in ``graph`` of node ``i`` in the subgraph.
    """
    if graph.num_nodes == 0:
        return graph, np.empty(0, dtype=np.int64)
    comp = connected_components(graph)
    counts = np.bincount(comp)
    keep = np.flatnonzero(comp == int(np.argmax(counts)))
    return induced_subgraph(graph, keep), keep


def induced_subgraph(graph: Graph, nodes: np.ndarray) -> Graph:
    """Subgraph induced on ``nodes``; ids are compacted to ``0..len-1``.

    ``nodes`` must be unique. The mapping follows the order of ``nodes``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(np.unique(nodes)) != len(nodes):
        raise GraphError("induced_subgraph requires unique node ids")
    if len(nodes) and (nodes.min() < 0 or nodes.max() >= graph.num_nodes):
        raise GraphError("induced_subgraph received ids outside the graph")
    remap = np.full(graph.num_nodes, -1, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes))
    edges = graph.edge_array()
    if len(edges):
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        kept = np.column_stack((remap[edges[mask, 0]], remap[edges[mask, 1]]))
    else:
        kept = np.empty((0, 2), dtype=np.int64)
    return Graph.from_edges(len(nodes), kept)


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    degs = graph.degrees()
    if len(degs) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)


@dataclass(frozen=True)
class DegreeStats:
    """Summary degree statistics of a graph."""

    mean: float
    median: float
    minimum: int
    maximum: int
    std: float

    def __str__(self) -> str:
        return (
            f"degree mean={self.mean:.2f} median={self.median:.1f} "
            f"min={self.minimum} max={self.maximum} std={self.std:.2f}"
        )


def degree_stats(graph: Graph) -> DegreeStats:
    """Compute :class:`DegreeStats`; raises on the empty graph."""
    degs = graph.degrees()
    if len(degs) == 0:
        raise GraphError("degree_stats is undefined for the empty graph")
    return DegreeStats(
        mean=float(degs.mean()),
        median=float(np.median(degs)),
        minimum=int(degs.min()),
        maximum=int(degs.max()),
        std=float(degs.std()),
    )
