"""Category partitions of a node set (Section 2.2 of the paper).

A :class:`CategoryPartition` assigns every node of a graph to exactly one
category. Categories have stable integer indices ``0..C-1`` and optional
human-readable names (country codes, college names, ...). The partition
is the second half of the paper's input: together with a
:class:`~repro.graph.adjacency.Graph` it defines the category graph
``G_C`` whose weights the estimators target.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import PartitionError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng

__all__ = ["CategoryPartition"]


class CategoryPartition:
    """Immutable assignment of nodes to categories.

    Parameters
    ----------
    labels:
        ``int`` array of shape ``(num_nodes,)``; ``labels[v]`` is the
        category index of node ``v``. Indices must cover ``0..C-1``
        contiguously is *not* required — empty categories are allowed
        when ``num_categories`` is passed explicitly.
    names:
        Optional sequence of category names, one per category index.
    num_categories:
        Optional explicit category count (``>= labels.max() + 1``);
        inferred from the labels when omitted.
    """

    __slots__ = ("_labels", "_names", "_num_categories", "_sizes", "_arc_label_cache")

    def __init__(
        self,
        labels: np.ndarray | Sequence[int],
        names: Sequence[str] | None = None,
        num_categories: int | None = None,
    ):
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise PartitionError("labels must be a one-dimensional array")
        if len(labels) and labels.min() < 0:
            raise PartitionError("category labels must be non-negative")
        inferred = int(labels.max()) + 1 if len(labels) else 0
        if num_categories is None:
            num_categories = inferred
        elif num_categories < inferred:
            raise PartitionError(
                f"num_categories={num_categories} but labels reference "
                f"category {inferred - 1}"
            )
        if names is not None:
            names = tuple(str(s) for s in names)
            if len(names) != num_categories:
                raise PartitionError(
                    f"expected {num_categories} names, got {len(names)}"
                )
            if len(set(names)) != len(names):
                raise PartitionError("category names must be unique")
        self._labels = labels
        self._labels.flags.writeable = False
        self._names = names
        self._num_categories = int(num_categories)
        self._sizes = np.bincount(labels, minlength=num_categories).astype(np.int64)
        self._sizes.flags.writeable = False
        self._arc_label_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls, num_nodes: int, mapping: Mapping[int, str]
    ) -> "CategoryPartition":
        """Build from a ``{node: category_name}`` mapping.

        Every node in ``[0, num_nodes)`` must be present. Category
        indices are assigned in sorted name order (deterministic).
        """
        if set(mapping) != set(range(num_nodes)):
            raise PartitionError("mapping must cover exactly the nodes 0..num_nodes-1")
        names = sorted(set(mapping.values()))
        index = {name: i for i, name in enumerate(names)}
        labels = np.fromiter(
            (index[mapping[v]] for v in range(num_nodes)), dtype=np.int64, count=num_nodes
        )
        return cls(labels, names=names)

    @classmethod
    def single_category(cls, num_nodes: int, name: str = "all") -> "CategoryPartition":
        """The trivial partition placing every node in one category."""
        return cls(np.zeros(num_nodes, dtype=np.int64), names=[name])

    @classmethod
    def from_blocks(cls, sizes: Sequence[int], names: Sequence[str] | None = None) -> "CategoryPartition":
        """Contiguous blocks: first ``sizes[0]`` nodes are category 0, etc."""
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        if len(sizes_arr) and sizes_arr.min() < 0:
            raise PartitionError("block sizes must be non-negative")
        labels = np.repeat(np.arange(len(sizes_arr), dtype=np.int64), sizes_arr)
        return cls(labels, names=names, num_categories=len(sizes_arr))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        """Read-only label array (``labels[v]`` = category of node v)."""
        return self._labels

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the partition."""
        return len(self._labels)

    @property
    def num_categories(self) -> int:
        """Number of categories ``|C|`` (including any empty ones)."""
        return self._num_categories

    @property
    def names(self) -> tuple[str, ...]:
        """Category names; synthesised ``C0..C{n-1}`` when none were given."""
        if self._names is not None:
            return self._names
        return tuple(f"C{i}" for i in range(self._num_categories))

    def arc_labels(self, graph: Graph) -> np.ndarray:
        """Category of the destination of every arc of ``graph``.

        ``labels[graph.indices]``, cached for the most recent graph —
        replicated observation passes over one substrate reuse it
        instead of re-gathering per replicate. Under
        ``graph_storage("memmap")`` the gather runs chunked through the
        derived-plane store of :mod:`repro.graph.planes` and the result
        is a file-backed mapping. Read-only view.
        """
        cache = self._arc_label_cache
        if cache is None or cache[0] is not graph:
            from repro.graph.planes import derived_arc_labels

            values = derived_arc_labels(self._labels, graph.indices)
            if values.flags.writeable:
                values.flags.writeable = False
            self._arc_label_cache = (graph, values)
        return self._arc_label_cache[1]

    def category_of(self, v: int) -> int:
        """Category index of node ``v``."""
        if not 0 <= v < len(self._labels):
            raise PartitionError(f"node {v} outside [0, {len(self._labels)})")
        return int(self._labels[v])

    def index_of(self, name: str) -> int:
        """Category index for a category name."""
        try:
            return self.names.index(name)
        except ValueError:
            raise PartitionError(f"unknown category name: {name!r}") from None

    def members(self, category: int) -> np.ndarray:
        """Node ids belonging to ``category`` (ascending)."""
        self._check_category(category)
        return np.flatnonzero(self._labels == category)

    def sizes(self) -> np.ndarray:
        """``|A|`` for every category, shape ``(C,)``."""
        return self._sizes

    def size(self, category: int) -> int:
        """``|A|`` for one category."""
        self._check_category(category)
        return int(self._sizes[category])

    def relative_sizes(self) -> np.ndarray:
        """``f_A = |A| / |V|`` for every category (Eq. 2)."""
        if self.num_nodes == 0:
            return np.zeros(self._num_categories)
        return self._sizes / self.num_nodes

    def volumes(self, graph: Graph) -> np.ndarray:
        """``vol(A)`` for every category (Eq. 1), shape ``(C,)``."""
        self._check_graph(graph)
        vols = np.zeros(self._num_categories, dtype=np.int64)
        np.add.at(vols, self._labels, graph.degrees())
        return vols

    def relative_volumes(self, graph: Graph) -> np.ndarray:
        """``f^vol_A = vol(A) / vol(V)`` for every category (Eq. 2)."""
        total = graph.volume()
        if total == 0:
            return np.zeros(self._num_categories)
        return self.volumes(graph) / total

    def mean_degrees(self, graph: Graph) -> np.ndarray:
        """``k_A`` (average degree inside each category, Section 4.1.2).

        Empty categories get ``nan``.
        """
        self._check_graph(graph)
        vols = self.volumes(graph).astype(float)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self._sizes > 0, vols / self._sizes, np.nan)

    # ------------------------------------------------------------------
    # Transformations (all return new partitions)
    # ------------------------------------------------------------------
    def permute_fraction(
        self, alpha: float, rng: np.random.Generator | int | None = None
    ) -> "CategoryPartition":
        """Randomly permute the labels of a fraction ``alpha`` of nodes.

        This is the paper's community-tightness knob (Section 6.2.1):
        ``alpha=0`` keeps categories aligned with communities; ``alpha=1``
        decouples them entirely. Category sizes are preserved exactly
        because labels are *permuted*, not resampled.
        """
        if not 0.0 <= alpha <= 1.0:
            raise PartitionError(f"alpha must be in [0, 1], got {alpha}")
        gen = ensure_rng(rng)
        labels = self._labels.copy()
        count = int(round(alpha * len(labels)))
        if count >= 2:
            chosen = gen.choice(len(labels), size=count, replace=False)
            shuffled = gen.permutation(chosen)
            labels[chosen] = self._labels[shuffled]
        return CategoryPartition(labels, names=self._names, num_categories=self._num_categories)

    def merge(
        self, groups: Mapping[str, Iterable[int]] | Mapping[str, Iterable[str]]
    ) -> "CategoryPartition":
        """Merge categories into super-categories (e.g. regions → country).

        Parameters
        ----------
        groups:
            ``{new_name: iterable of old category indices or names}``.
            Every old category must appear in exactly one group.
        """
        assignment = np.full(self._num_categories, -1, dtype=np.int64)
        new_names = sorted(groups)
        for new_idx, new_name in enumerate(new_names):
            for old in groups[new_name]:
                old_idx = self.index_of(old) if isinstance(old, str) else int(old)
                self._check_category(old_idx)
                if assignment[old_idx] != -1:
                    raise PartitionError(
                        f"category {old_idx} assigned to two groups"
                    )
                assignment[old_idx] = new_idx
        if np.any(assignment == -1):
            missing = int(np.flatnonzero(assignment == -1)[0])
            raise PartitionError(f"category {missing} not assigned to any group")
        return CategoryPartition(
            assignment[self._labels], names=new_names, num_categories=len(new_names)
        )

    def keep_top(self, k: int, rest_name: str = "rest") -> "CategoryPartition":
        """Keep the ``k`` largest categories; lump the rest into one.

        Mirrors the paper's Section 6.3.1 construction (50 largest
        communities become categories; everything else becomes the 51st).
        Kept categories are re-indexed ``0..k-1`` by decreasing size; the
        lumped category, when non-empty, gets index ``k``.
        """
        if k <= 0:
            raise PartitionError(f"k must be positive, got {k}")
        order = np.argsort(-self._sizes, kind="stable")
        top = order[: min(k, self._num_categories)]
        mapping = np.full(self._num_categories, len(top), dtype=np.int64)
        mapping[top] = np.arange(len(top))
        has_rest = len(top) < self._num_categories and bool(
            np.any(self._sizes[order[len(top) :]] > 0)
        )
        names = [self.names[i] for i in top]
        if has_rest or len(top) < self._num_categories:
            names.append(rest_name)
            total = len(top) + 1
        else:
            total = len(top)
        return CategoryPartition(mapping[self._labels], names=names, num_categories=total)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_category(self, c: int) -> None:
        if not 0 <= c < self._num_categories:
            raise PartitionError(f"category {c} outside [0, {self._num_categories})")

    def _check_graph(self, graph: Graph) -> None:
        if graph.num_nodes != self.num_nodes:
            raise PartitionError(
                f"partition covers {self.num_nodes} nodes but graph has "
                f"{graph.num_nodes}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoryPartition):
            return NotImplemented
        return (
            self._num_categories == other._num_categories
            and np.array_equal(self._labels, other._labels)
            and self.names == other.names
        )

    def __hash__(self) -> int:
        return hash((self._labels.tobytes(), self._num_categories, self.names))

    def __repr__(self) -> str:
        return (
            f"CategoryPartition(num_nodes={self.num_nodes}, "
            f"num_categories={self._num_categories})"
        )
