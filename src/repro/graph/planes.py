"""Derived-plane store: manifest-keyed spill + cross-run reuse.

The out-of-core CSR plane (:mod:`repro.graph.storage`) bounded the
*base* arrays, but every array derived from them — ``arc_sources``,
``arc_labels``, the union-multigraph merge, alias tables, per-run
weight cumulatives — still materialized in RAM at first use, which is
exactly the memory (and startup-time) wall of a weighted-walk sweep at
web scale. This module closes that gap with a content-addressed store
for derived arrays in the same plane format:

* one directory per derived result under ``<cache>/<derivation>/<key>``
  holding raw ``.npy`` planes plus a ``manifest.json`` (dtype / shape /
  SHA-256 per plane, atomically committed after the planes);
* the ``<key>`` is the SHA-256 of (derivation name, derivation version,
  parameters, and the *fingerprints of the source arrays*), so a key is
  valid iff its inputs are bit-identical — no mtimes, no paths;
* source arrays that are themselves on-disk planes fingerprint for free
  via the SHA-256 their sibling manifest already records; RAM sources
  fall back to a streaming content hash.

Because the key is pure content, a *second run* (or a resumed plan)
over the same substrate re-derives nothing: the streaming CSR builder
reproduces bit-identical base planes, their manifest digests match, and
every derivation is a cache hit (``planes.hit`` in the telemetry
counters; ``planes.built`` counts cold constructions).

Construction is chunked: a builder receives a :class:`PlaneWriter`,
creates its output planes as ``w+`` memmaps, and fills them block by
block, so peak RSS during derivation is bounded by the chunk size, not
the plane size. Results reopen as read-only ``np.memmap`` views that
the plane-tokenizing pickler of :mod:`repro.runtime.sharedmem` ships to
pool workers as ``mmap:`` tokens — zero publish bytes, no copies.

Enablement: the store engages when the ambient storage mode is
``memmap`` (``graph_storage("memmap")`` / ``REPRO_GRAPH_STORAGE`` /
``REPRO_SCALE=web``) or when a source array is already file-backed
(which is how spawned pool workers, who inherit env vars but not the
parent's scope stack, land in the same cache). RAM-mode runs with RAM
sources keep today's in-memory behavior. The cache directory resolves
``REPRO_PLANE_CACHE``, then ``REPRO_STORAGE_DIR``'s ``planes/``
subdirectory, then a ``planes/`` sibling of the first file-backed
source, then ``storage_root()/planes``; derivations smaller than
``REPRO_PLANE_THRESHOLD`` bytes (default 64 KiB) stay in RAM, and
``REPRO_PLANE_STORE=off`` disables the store outright.

A torn or tampered manifest — simulated deterministically by the
``corrupt-manifest:file=derived`` directive of
:mod:`repro.runtime.faults` — never crashes a run: the directory is
quarantined (renamed aside, ``planes.quarantined`` counter) and the
derivation rebuilt from its sources.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import threading
from collections.abc import Callable, Iterator, Sequence
from pathlib import Path

import numpy as np
from numpy.lib import format as _npy_format

from repro.exceptions import StorageError
from repro.graph.storage import (
    DEFAULT_CHUNK_ARCS,
    MANIFEST_NAME,
    STORAGE_FORMAT,
    _digest_file,
    _write_manifest,
    active_storage_mode,
    storage_root,
)

__all__ = [
    "DEFAULT_PLANE_THRESHOLD",
    "DerivedPlaneStore",
    "PlaneWriter",
    "build_arc_labels",
    "build_arc_sources",
    "clear_plane_memo",
    "derived_arc_labels",
    "derived_arc_sources",
    "node_blocks",
    "plane_store_at",
    "plane_store_for",
    "plane_threshold",
    "source_fingerprint",
]

_LOG = logging.getLogger("repro.graph.planes")

#: Below this many output bytes a derivation stays in RAM (override via
#: ``REPRO_PLANE_THRESHOLD``) — micro-planes cost more in syscalls and
#: cache-directory litter than they save.
DEFAULT_PLANE_THRESHOLD = 1 << 16

#: Bytes hashed per block when content-fingerprinting a RAM source.
_HASH_BLOCK_BYTES = 1 << 22


def plane_threshold() -> int:
    """Minimum derived-plane size (bytes) that spills to disk."""
    env = os.environ.get("REPRO_PLANE_THRESHOLD", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            raise StorageError(
                f"REPRO_PLANE_THRESHOLD must be an integer, got {env!r}"
            ) from None
    return DEFAULT_PLANE_THRESHOLD


# ----------------------------------------------------------------------
# Source fingerprints
# ----------------------------------------------------------------------
def _file_source(array: np.ndarray) -> "Path | None":
    """The backing ``.npy`` path when ``array`` is a whole mapped plane.

    Walks the ``base`` chain to an ``np.memmap`` (the sharedmem
    pickler's trick) and accepts only a view covering the *entire*
    mapping — a sub-window is not the plane the sibling manifest
    hashed. Copy-on-write mappings are rejected: their pages may have
    diverged from the file.
    """
    if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
        return None
    base = array
    while base is not None and not isinstance(base, np.memmap):
        base = getattr(base, "base", None)
    if base is None or getattr(base, "filename", None) is None:
        return None
    if getattr(base, "mode", "r") == "c":
        return None
    start = array.__array_interface__["data"][0]
    base_start = base.__array_interface__["data"][0]
    if start != base_start or array.nbytes != base.nbytes:
        return None
    return Path(os.fspath(base.filename))


def _manifest_digest(array: np.ndarray, path: Path) -> "str | None":
    """``array``'s SHA-256 from the manifest next to its backing file."""
    manifest_path = path.parent / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    planes = manifest.get("planes") if isinstance(manifest, dict) else None
    if not isinstance(planes, dict):
        return None
    for meta in planes.values():
        if (
            isinstance(meta, dict)
            and meta.get("file") == path.name
            and meta.get("dtype") == array.dtype.str
            and tuple(meta.get("shape", ())) == array.shape
            and isinstance(meta.get("sha256"), str)
        ):
            return meta["sha256"]
    return None


def _content_digest(array: np.ndarray) -> str:
    """Streaming SHA-256 of a RAM source's raw bytes (bounded blocks)."""
    digest = hashlib.sha256()
    flat = array.reshape(-1) if array.flags.c_contiguous else np.ravel(array)
    block = max(1, _HASH_BLOCK_BYTES // max(flat.itemsize, 1))
    for start in range(0, len(flat), block):
        digest.update(np.ascontiguousarray(flat[start : start + block]).tobytes())
    return digest.hexdigest()


def source_fingerprint(array) -> dict:
    """Content identity of a source array, as a JSON-serializable dict.

    A file-backed plane resolves its SHA-256 from the sibling manifest
    (no data read); anything else is hashed by content. Two
    bit-identical *on-disk* planes — e.g. the same substrate streamed by
    two separate runs into different directories — fingerprint equal,
    which is what makes derived-plane keys survive across runs.
    """
    array = np.asanyarray(array)
    path = _file_source(array)
    digest = _manifest_digest(array, path) if path is not None else None
    if digest is not None:
        kind = "plane"
    else:
        kind, digest = "content", _content_digest(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "kind": kind,
        "sha256": digest,
    }


def _store_key(
    derivation: str, version: int, params: dict, fingerprints: list
) -> str:
    payload = json.dumps(
        {
            "derivation": derivation,
            "version": int(version),
            "params": params,
            "sources": fingerprints,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


# ----------------------------------------------------------------------
# Writer + open/quarantine machinery
# ----------------------------------------------------------------------
class PlaneWriter:
    """Builder-side handle creating output planes in a staging directory.

    :meth:`create` returns a writable array the chunked builder fills
    in place; plane-sized outputs are ``w+`` memmaps, so the build never
    holds a full plane in RAM. The store finalizes (flush, digest,
    manifest) and atomically renames the staging directory into place.
    """

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._arrays: dict[str, np.ndarray] = {}

    def create(self, name: str, dtype, shape) -> np.ndarray:
        if name in self._arrays:
            raise StorageError(f"plane {name!r} already created")
        if not name or "/" in name or name.startswith("."):
            raise StorageError(f"invalid plane name {name!r}")
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        if int(np.prod(shape)) == 0:
            # mmap rejects zero-length mappings on some platforms; an
            # empty plane is np.save'd whole at finalize time instead.
            array: np.ndarray = np.empty(shape, dtype=dtype)
        else:
            array = _npy_format.open_memmap(
                self._directory / f"{name}.npy",
                mode="w+",
                dtype=dtype,
                shape=shape,
            )
        self._arrays[name] = array
        return array

    def _finalize(self) -> dict:
        """Flush, digest, and describe every created plane."""
        if not self._arrays:
            raise StorageError("derived-plane build created no planes")
        entries = {}
        for name, array in self._arrays.items():
            path = self._directory / f"{name}.npy"
            if isinstance(array, np.memmap):
                array.flush()
            else:
                np.save(path, array)
            entries[name] = {
                "file": f"{name}.npy",
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": _digest_file(path),
            }
        self._arrays = {}
        return entries


def _open_derived(directory: Path, derivation: str, version: int) -> dict:
    """Map a committed derived-plane directory (read-only views).

    Raises :class:`StorageError` on a missing/torn/mismatched manifest
    or a plane that disagrees with its manifest entry — the caller
    quarantines and rebuilds.
    """
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no derived-plane manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise StorageError(
            f"torn or corrupt derived-plane manifest at {manifest_path} "
            f"({error})"
        ) from None
    if (
        not isinstance(manifest, dict)
        or manifest.get("format") != STORAGE_FORMAT
        or manifest.get("kind") != "derived"
        or manifest.get("derivation") != derivation
        or manifest.get("version") != version
    ):
        raise StorageError(
            f"derived-plane manifest at {manifest_path} does not describe "
            f"{derivation!r} v{version}"
        )
    plane_meta = manifest.get("planes")
    if not isinstance(plane_meta, dict) or not plane_meta:
        raise StorageError(
            f"truncated derived-plane manifest at {manifest_path} "
            "(missing plane entries)"
        )
    planes = {}
    for name, meta in plane_meta.items():
        try:
            file = directory / meta["file"]
            dtype, shape = meta["dtype"], tuple(meta["shape"])
        except (KeyError, TypeError):
            raise StorageError(
                f"truncated derived-plane manifest at {manifest_path} "
                f"(incomplete entry for plane {name!r})"
            ) from None
        try:
            if int(np.prod(shape)) == 0:
                mapped = np.load(file)
            else:
                mapped = _npy_format.open_memmap(file, mode="r")
        except (OSError, ValueError) as error:
            raise StorageError(
                f"cannot map derived plane {file} ({error})"
            ) from None
        if mapped.dtype.str != dtype or mapped.shape != shape:
            raise StorageError(
                f"derived plane {file} is {mapped.dtype.str}{mapped.shape}, "
                f"manifest says {dtype}{shape}"
            )
        view = mapped.view(np.ndarray)
        view.flags.writeable = False
        planes[name] = view
    return planes


def _planes_nbytes(planes: dict) -> int:
    return int(sum(array.nbytes for array in planes.values()))


class DerivedPlaneStore:
    """Content-addressed store of derived plane directories.

    One instance per cache root (see :func:`plane_store_at`); opened
    results are memoized in-process so repeated derivations over the
    same sources cost one dict lookup — the memo holds address space
    (mapped files), not RAM.
    """

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)
        self._memo: dict[tuple[str, str], dict] = {}
        self._lock = threading.Lock()

    def key_of(
        self,
        derivation: str,
        *,
        sources: Sequence,
        version: int = 1,
        params: "dict | None" = None,
    ) -> str:
        """The cache key these inputs resolve to (test/introspection aid)."""
        fingerprints = [source_fingerprint(source) for source in sources]
        return _store_key(derivation, version, dict(params or {}), fingerprints)

    def get_or_build(
        self,
        derivation: str,
        *,
        sources: Sequence,
        build: Callable[[PlaneWriter], None],
        version: int = 1,
        params: "dict | None" = None,
    ) -> dict:
        """Open the derived planes for these inputs, building on miss.

        ``build(writer)`` must create every output plane via
        :meth:`PlaneWriter.create` and fill it; the result is reopened
        read-only and returned as a ``{name: array}`` dict of
        file-backed views. Bit-identical inputs always resolve to the
        same directory — across calls, samplers, processes, and runs.
        """
        from repro.runtime import telemetry  # deferred: keeps graph light

        params = dict(params or {})
        fingerprints = [source_fingerprint(source) for source in sources]
        key = _store_key(derivation, version, params, fingerprints)
        memo_key = (derivation, key)
        with self._lock:
            cached = self._memo.get(memo_key)
        if cached is not None:
            telemetry.counter("planes.hit", 1)
            telemetry.counter("planes.hit_bytes", _planes_nbytes(cached))
            return cached
        directory = self.root / derivation / key
        planes = None
        built = False
        for _attempt in range(3):
            planes = self._try_open(directory, derivation, version)
            if planes is not None:
                break
            planes = self._build(
                directory, derivation, version, params, fingerprints, build
            )
            if planes is not None:
                built = True
                break
        if planes is None:
            raise StorageError(
                f"could not build derived plane {derivation}/{key} under "
                f"{self.root} (repeatedly corrupt?)"
            )
        if built:
            telemetry.counter("planes.built", 1)
            telemetry.counter("planes.built_bytes", _planes_nbytes(planes))
        else:
            telemetry.counter("planes.hit", 1)
            telemetry.counter("planes.hit_bytes", _planes_nbytes(planes))
        with self._lock:
            winner = self._memo.setdefault(memo_key, planes)
        return winner

    def clear_memo(self) -> None:
        """Drop in-process memoized planes (the disk cache is untouched)."""
        with self._lock:
            self._memo.clear()

    # -- internals ----------------------------------------------------
    def _try_open(
        self, directory: Path, derivation: str, version: int
    ) -> "dict | None":
        """Open a committed key directory; quarantine it when corrupt."""
        if not directory.exists():
            return None
        try:
            return _open_derived(directory, derivation, version)
        except StorageError as error:
            self._quarantine(directory, error)
            return None

    def _quarantine(self, directory: Path, error: StorageError) -> None:
        from repro.runtime import telemetry

        for suffix in range(100):
            target = directory.with_name(
                directory.name + ".corrupt" + (f"-{suffix}" if suffix else "")
            )
            try:
                os.rename(directory, target)
                break
            except FileNotFoundError:
                break  # a concurrent builder already moved it aside
            except OSError:
                continue  # target exists from an earlier quarantine
        telemetry.counter("planes.quarantined", 1)
        _LOG.warning(
            "quarantined corrupt derived-plane directory %s (%s); "
            "rebuilding from source planes",
            directory,
            error,
        )

    def _build(
        self,
        directory: Path,
        derivation: str,
        version: int,
        params: dict,
        fingerprints: list,
        build: Callable[[PlaneWriter], None],
    ) -> "dict | None":
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(
                prefix=f".build-{directory.name[:12]}-", dir=directory.parent
            )
        )
        try:
            writer = PlaneWriter(staging)
            build(writer)
            entries = writer._finalize()
            manifest = {
                "format": STORAGE_FORMAT,
                "kind": "derived",
                "derivation": derivation,
                "version": int(version),
                "params": params,
                "sources": fingerprints,
                "planes": entries,
            }
            _write_manifest(staging, manifest, file_kind="derived")
            try:
                os.rename(staging, directory)
            except OSError:
                # Lost the commit race: a concurrent process finished
                # this key first. Discard our staging copy and open the
                # winner's (the outer retry loop handles a corrupt one).
                return self._try_open(directory, derivation, version)
            try:
                return _open_derived(directory, derivation, version)
            except StorageError as error:
                # Our own commit reads back corrupt (torn manifest —
                # the corrupt-manifest fault path): quarantine it and
                # let the retry loop rebuild.
                self._quarantine(directory, error)
                return None
        finally:
            shutil.rmtree(staging, ignore_errors=True)


# ----------------------------------------------------------------------
# Ambient store resolution
# ----------------------------------------------------------------------
_STORES: dict[Path, DerivedPlaneStore] = {}
_STORES_LOCK = threading.Lock()


def plane_store_at(root: "str | os.PathLike") -> DerivedPlaneStore:
    """The (process-cached) store rooted at ``root``."""
    root = Path(root)
    with _STORES_LOCK:
        store = _STORES.get(root)
        if store is None:
            store = _STORES[root] = DerivedPlaneStore(root)
        return store


def clear_plane_memo() -> None:
    """Drop every store's in-process memo (cold-vs-warm benchmarking)."""
    with _STORES_LOCK:
        stores = list(_STORES.values())
    for store in stores:
        store.clear_memo()


def _resolve_root(file_sources: list) -> Path:
    env = os.environ.get("REPRO_PLANE_CACHE", "").strip()
    if env:
        return Path(env)
    storage_env = os.environ.get("REPRO_STORAGE_DIR", "").strip()
    if storage_env:
        return Path(storage_env) / "planes"
    for path in file_sources:
        if path is not None:
            return path.parent / "planes"
    return storage_root() / "planes"


def plane_store_for(*sources, nbytes: "int | None" = None):
    """The ambient derived-plane store for these sources, or ``None``.

    ``None`` means "derive in RAM like always": the store is off
    (``REPRO_PLANE_STORE=off``), the derivation is smaller than
    :func:`plane_threshold`, or the run is a RAM-mode run whose sources
    are RAM arrays. Pass the *estimated output bytes* as ``nbytes`` so
    micro-derivations skip the disk round trip.
    """
    if os.environ.get("REPRO_PLANE_STORE", "").strip().lower() in (
        "off",
        "0",
        "disabled",
    ):
        return None
    if nbytes is not None and nbytes < plane_threshold():
        return None
    arrays = [np.asanyarray(source) for source in sources]
    file_sources = [_file_source(array) for array in arrays]
    if active_storage_mode() != "memmap" and not any(
        path is not None for path in file_sources
    ):
        return None
    return plane_store_at(_resolve_root(file_sources))


# ----------------------------------------------------------------------
# Chunk iteration + the structural derivations
# ----------------------------------------------------------------------
def node_blocks(
    indptr: np.ndarray, chunk_arcs: int = DEFAULT_CHUNK_ARCS
) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(first, stop, lo, hi)`` node ranges of ≤ ``chunk_arcs`` arcs.

    Whole adjacency runs only — every chunked builder in this family is
    bit-identical to its one-shot twin *because* runs never straddle a
    block boundary. A run longer than ``chunk_arcs`` gets a block of its
    own (at least one node always advances).
    """
    if chunk_arcs < 1:
        raise StorageError(f"chunk_arcs must be >= 1, got {chunk_arcs}")
    n = len(indptr) - 1
    node = 0
    while node < n:
        stop = (
            int(np.searchsorted(indptr, int(indptr[node]) + chunk_arcs, "right"))
            - 1
        )
        stop = min(max(stop, node + 1), n)
        yield node, stop, int(indptr[node]), int(indptr[stop])
        node = stop


def build_arc_sources(
    writer: PlaneWriter,
    indptr: np.ndarray,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
) -> None:
    """Chunked out-of-core twin of ``np.repeat(arange(N), diff(indptr))``."""
    indptr = np.asanyarray(indptr)
    out = writer.create("arc_sources", np.int64, (int(indptr[-1]),))
    for first, stop, lo, hi in node_blocks(indptr, chunk_arcs):
        out[lo:hi] = np.repeat(
            np.arange(first, stop, dtype=np.int64),
            np.diff(np.asarray(indptr[first : stop + 1])),
        )


def derived_arc_sources(
    indptr: np.ndarray, chunk_arcs: int = DEFAULT_CHUNK_ARCS
) -> np.ndarray:
    """Source node of every arc for ``indptr``, via the plane store.

    Shared by :class:`~repro.graph.adjacency.Graph` and
    :class:`~repro.graph.union.UnionCSR` — the derivation is keyed on
    the offsets array alone, so a union CSR and a simple graph with
    identical ``indptr`` share one plane.
    """
    indptr = np.asanyarray(indptr)
    num_arcs = int(indptr[-1]) if len(indptr) else 0
    store = plane_store_for(indptr, nbytes=num_arcs * 8)
    if store is None:
        return np.repeat(
            np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
        )
    planes = store.get_or_build(
        "arc-sources",
        sources=(indptr,),
        build=lambda writer: build_arc_sources(writer, indptr, chunk_arcs),
    )
    return planes["arc_sources"]


def build_arc_labels(
    writer: PlaneWriter,
    labels: np.ndarray,
    indices: np.ndarray,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
) -> None:
    """Chunked out-of-core twin of the ``labels[indices]`` gather."""
    if chunk_arcs < 1:
        raise StorageError(f"chunk_arcs must be >= 1, got {chunk_arcs}")
    labels = np.asanyarray(labels)
    out = writer.create("arc_labels", labels.dtype, (len(indices),))
    for start in range(0, len(indices), chunk_arcs):
        block = np.asarray(indices[start : start + chunk_arcs])
        out[start : start + len(block)] = labels[block]


def derived_arc_labels(
    labels: np.ndarray,
    indices: np.ndarray,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
) -> np.ndarray:
    """Destination-category label of every arc, via the plane store."""
    labels = np.asanyarray(labels)
    indices = np.asanyarray(indices)
    store = plane_store_for(
        labels, indices, nbytes=len(indices) * labels.dtype.itemsize
    )
    if store is None:
        return labels[indices]
    planes = store.get_or_build(
        "arc-labels",
        sources=(labels, indices),
        build=lambda writer: build_arc_labels(writer, labels, indices, chunk_arcs),
    )
    return planes["arc_labels"]
