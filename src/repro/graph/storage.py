"""Out-of-core CSR storage plane (``np.memmap``-backed graphs).

Every substrate used to be an in-RAM CSR that the executor re-published
into ``/dev/shm`` per run — a hard wall around 10^8-10^9 arcs. This
module swaps the *storage plane* underneath the existing
:class:`~repro.graph.adjacency.Graph` contract without touching any
sampling kernel: the kernels only ever *gather* from ``indptr`` /
``indices``, so a read-only file mapping serves them the same bytes an
in-RAM array would.

On-disk layout (one directory per graph)::

    <dir>/indptr.npy      raw .npy-headered int64 plane, shape (N + 1,)
    <dir>/indices.npy     raw .npy-headered int64 plane, shape (2|E|,)
    <dir>/weights.npy     optional float64 per-arc plane
    <dir>/manifest.json   {"format", "num_nodes", "num_arcs",
                           "planes": {name: {file, dtype, shape, sha256}}}

The manifest is written atomically (tmp + rename) *after* the planes, so
a directory with a readable manifest always references fully-written
planes; a torn or truncated manifest — simulated deterministically by
the ``corrupt-manifest`` fault directive of :mod:`repro.runtime.faults`
— raises a named :class:`~repro.exceptions.StorageError` instead of
feeding garbage downstream.

Three ways in:

* :func:`save_csr` / :func:`open_csr` — persist and map existing planes.
* :class:`StreamingCSRBuilder` — build the on-disk CSR from edge chunks
  without ever materializing the edge list: canonical edge keys are
  spilled as sorted runs, external-merged, and symmetrised by a second
  streamed merge, so peak RSS is O(chunk + N) regardless of |E|.
* :func:`graph_storage` / ``REPRO_GRAPH_STORAGE=memmap`` — the ambient
  construction seam: :meth:`repro.graph.builder.GraphBuilder.build`
  consults :func:`active_storage_mode` and routes every graph built in
  scope through the streaming builder, returning a ``Graph`` whose
  planes are memmap views. Byte-identity contract: the memmap-backed
  graph is bit-identical to the in-RAM build, so every downstream sweep
  is too.

Workers never copy these planes: the plane-tokenizing pickler of
:mod:`repro.runtime.sharedmem` recognizes file-backed arrays and ships
an ``mmap`` token (path + dtype + shape + offset) instead of a shared
memory block, so each worker maps the same file.

Arrays *derived* from these planes (``arc_sources``, union-CSR merges,
alias tables, walk cumulatives) spill to the same format through the
content-addressed store of :mod:`repro.graph.planes`, which reuses this
module's manifest machinery and digests.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import shutil
import tempfile
import threading
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from pathlib import Path

import numpy as np
from numpy.lib import format as _npy_format

from repro.exceptions import GraphError, StorageError

__all__ = [
    "DEFAULT_CHUNK_ARCS",
    "MANIFEST_NAME",
    "MemmapCSR",
    "STORAGE_FORMAT",
    "StreamingCSRBuilder",
    "active_storage_mode",
    "chunk_edges",
    "edge_chunks",
    "graph_storage",
    "open_csr",
    "save_csr",
    "storage_root",
    "stream_graph",
]

MANIFEST_NAME = "manifest.json"

#: On-disk format version embedded in every manifest.
STORAGE_FORMAT = 1

#: Default arcs per in-RAM block of the streaming builder / chunk APIs.
DEFAULT_CHUNK_ARCS = 1 << 20

#: Recognized storage modes (see :func:`active_storage_mode`).
MODES = ("ram", "memmap")

#: Block size (int64 elements) of the external-merge streams.
_MERGE_BLOCK = 1 << 20


# ----------------------------------------------------------------------
# Ambient storage mode (the construction seam)
# ----------------------------------------------------------------------
#: Innermost-wins stack of ``(mode, directory)`` scopes. Shared across
#: threads on purpose: the DAG plan scheduler builds substrates from
#: worker threads inside the scope the plan runner entered.
_MODE_STACK: list[tuple[str, "Path | None"]] = []

_DEFAULT_ROOT: "Path | None" = None
_ROOT_LOCK = threading.Lock()


def _check_mode(mode: str) -> str:
    if mode not in MODES:
        raise StorageError(
            f"unknown graph storage mode {mode!r}; use one of {', '.join(MODES)}"
        )
    return mode


@contextmanager
def graph_storage(mode: str, directory: "str | os.PathLike | None" = None):
    """Scope the ambient graph storage mode for the enclosed block.

    ``graph_storage("memmap")`` routes every
    :meth:`~repro.graph.builder.GraphBuilder.build` in scope through the
    out-of-core path; ``directory`` optionally pins where the plane
    files land (default: ``REPRO_STORAGE_DIR`` or a process-lifetime
    temp directory removed at exit). Scopes nest innermost-wins and are
    consulted before the ``REPRO_GRAPH_STORAGE`` environment variable.
    """
    entry = (_check_mode(mode), Path(directory) if directory is not None else None)
    _MODE_STACK.append(entry)
    try:
        yield
    finally:
        _MODE_STACK.remove(entry)


def active_storage_mode() -> str:
    """The ambient storage mode: scope, then environment, then ``"ram"``."""
    if _MODE_STACK:
        return _MODE_STACK[-1][0]
    env = os.environ.get("REPRO_GRAPH_STORAGE", "").strip().lower()
    if env:
        return _check_mode(env)
    return "ram"


def storage_root() -> Path:
    """Where on-disk CSR directories are created by default.

    Resolution order: the innermost :func:`graph_storage` scope that
    pinned a directory, then ``REPRO_STORAGE_DIR``, then one
    process-lifetime temp directory (removed at interpreter exit —
    worker processes map its files by absolute path while the parent
    lives, which is all the executor needs).
    """
    for _mode, directory in reversed(_MODE_STACK):
        if directory is not None:
            directory.mkdir(parents=True, exist_ok=True)
            return directory
    env = os.environ.get("REPRO_STORAGE_DIR", "").strip()
    if env:
        path = Path(env)
        path.mkdir(parents=True, exist_ok=True)
        return path
    global _DEFAULT_ROOT
    with _ROOT_LOCK:
        if _DEFAULT_ROOT is None:
            _DEFAULT_ROOT = Path(tempfile.mkdtemp(prefix="repro-storage-"))
            atexit.register(shutil.rmtree, _DEFAULT_ROOT, ignore_errors=True)
        return _DEFAULT_ROOT


# ----------------------------------------------------------------------
# Manifest + planes
# ----------------------------------------------------------------------
def _digest_file(path: Path, block: int = 1 << 22) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(block)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _write_manifest(
    directory: Path, manifest: dict, *, file_kind: str = "manifest"
) -> None:
    """Atomically commit a plane manifest (tmp + rename).

    ``file_kind`` names the manifest family for the ``corrupt-manifest``
    fault directive: ``"manifest"`` for base-CSR stores,``"derived"``
    for the derived-plane store of :mod:`repro.graph.planes` — a
    ``corrupt-manifest:file=derived`` spec tears only the latter.
    """
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, path)
    from repro.runtime import faults  # deferred: keeps this module light

    if faults.take("corrupt-manifest", file=file_kind) is not None:
        # Tear the manifest after its atomic write, the same way the
        # corrupt-checkpoint directive tears checkpoint payloads: the
        # next open_csr must fail loudly, never feed garbage downstream.
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])


class MemmapCSR:
    """An on-disk CSR opened as read-only memory maps.

    Attributes are the mapped planes (``indptr``, ``indices``, and
    ``weights`` when present); :meth:`graph` wraps them in a
    :class:`~repro.graph.adjacency.Graph` without copying. Closing just
    drops this object's handles — surviving array views keep the
    mapping alive through their ``base`` chain and the OS reclaims the
    pages when the last one dies.
    """

    __slots__ = ("directory", "manifest", "_planes")

    def __init__(self, directory: Path, manifest: dict, planes: dict):
        self.directory = directory
        self.manifest = manifest
        self._planes = planes

    @property
    def indptr(self) -> np.ndarray:
        return self._planes["indptr"]

    @property
    def indices(self) -> np.ndarray:
        return self._planes["indices"]

    @property
    def weights(self) -> "np.ndarray | None":
        return self._planes.get("weights")

    @property
    def num_nodes(self) -> int:
        return int(self.manifest["num_nodes"])

    @property
    def num_arcs(self) -> int:
        return int(self.manifest["num_arcs"])

    def graph(self):
        """The mapped planes as a :class:`~repro.graph.adjacency.Graph`.

        Invariants were checked when the store was built, so validation
        (an O(arcs) pass that would fault every page in) is skipped.
        """
        from repro.graph.adjacency import Graph

        return Graph(self.indptr, self.indices, validate=False)

    def close(self) -> None:
        """Drop this object's plane handles (mappings die with the views)."""
        self._planes = {}

    def __enter__(self) -> "MemmapCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemmapCSR(num_nodes={self.num_nodes}, "
            f"num_arcs={self.num_arcs}, directory={str(self.directory)!r})"
        )


def save_csr(
    directory: "str | os.PathLike",
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: "np.ndarray | None" = None,
) -> MemmapCSR:
    """Persist CSR planes to ``directory`` and reopen them mapped.

    Planes are written as raw ``.npy``-headered files, then the JSON
    manifest (dtype/shape/SHA-256 per plane) is committed atomically —
    a crash mid-save leaves a directory :func:`open_csr` rejects rather
    than a silently half-written graph.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if indptr.ndim != 1 or len(indptr) == 0:
        raise StorageError("indptr must be a non-empty one-dimensional array")
    if int(indptr[-1]) != len(indices):
        raise StorageError(
            f"indptr[-1] ({int(indptr[-1])}) must equal len(indices) "
            f"({len(indices)})"
        )
    planes = {"indptr": indptr, "indices": indices}
    if weights is not None:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if weights.shape != indices.shape:
            raise StorageError(
                f"weights shape {weights.shape} must match indices "
                f"shape {indices.shape}"
            )
        planes["weights"] = weights
    entries = {}
    for name, array in planes.items():
        path = directory / f"{name}.npy"
        np.save(path, array)
        entries[name] = {
            "file": f"{name}.npy",
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "sha256": _digest_file(path),
        }
    manifest = {
        "format": STORAGE_FORMAT,
        "num_nodes": len(indptr) - 1,
        "num_arcs": len(indices),
        "planes": entries,
    }
    _write_manifest(directory, manifest)
    return open_csr(directory)


def open_csr(directory: "str | os.PathLike", *, verify: bool = False) -> MemmapCSR:
    """Map an on-disk CSR written by :func:`save_csr` (or the builder).

    The manifest is validated before any plane is touched: a missing,
    torn, or truncated manifest raises :class:`StorageError` naming the
    path, as does a plane whose dtype/shape disagree with its manifest
    entry. ``verify=True`` additionally re-hashes every plane against
    its recorded SHA-256 (a full read — worth it when provenance
    matters, skipped on the hot path).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no CSR manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise StorageError(
            f"torn or corrupt CSR manifest at {manifest_path} ({error}); "
            "the store was interrupted mid-write — rebuild it"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != STORAGE_FORMAT:
        raise StorageError(
            f"unsupported CSR manifest format at {manifest_path}: "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
        )
    plane_meta = manifest.get("planes")
    if not isinstance(plane_meta, dict) or not {"indptr", "indices"} <= set(
        plane_meta
    ):
        raise StorageError(
            f"truncated CSR manifest at {manifest_path} "
            "(missing plane entries); rebuild the store"
        )
    planes = {}
    for name, meta in plane_meta.items():
        try:
            file = directory / meta["file"]
            dtype, shape = meta["dtype"], tuple(meta["shape"])
            sha256 = meta["sha256"]
        except (KeyError, TypeError):
            raise StorageError(
                f"truncated CSR manifest at {manifest_path} "
                f"(incomplete entry for plane {name!r}); rebuild the store"
            ) from None
        try:
            if int(np.prod(shape)) == 0:
                # mmap rejects zero-length mappings on some platforms;
                # an empty plane is cheaper to read than to map anyway.
                mapped = np.load(file)
            else:
                mapped = _npy_format.open_memmap(file, mode="r")
        except (OSError, ValueError) as error:
            raise StorageError(
                f"cannot map CSR plane {file} ({error})"
            ) from None
        if mapped.dtype.str != dtype or mapped.shape != shape:
            raise StorageError(
                f"CSR plane {file} is {mapped.dtype.str}{mapped.shape}, "
                f"manifest says {dtype}{shape}"
            )
        if verify and _digest_file(file) != sha256:
            raise StorageError(
                f"CSR plane {file} fails its manifest SHA-256 check"
            )
        planes[name] = mapped
    return MemmapCSR(directory, manifest, planes)


# ----------------------------------------------------------------------
# Chunk helpers
# ----------------------------------------------------------------------
def chunk_edges(edges: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield ``edges`` re-sliced into blocks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise StorageError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(edges), chunk_size):
        yield edges[start : start + chunk_size]


def edge_chunks(
    graph, chunk_size: int = DEFAULT_CHUNK_ARCS
) -> Iterator[np.ndarray]:
    """Stream a graph's undirected edges (``u < v``) in bounded blocks.

    The out-of-core twin of
    :meth:`~repro.graph.adjacency.Graph.edge_array`: arc windows are
    gathered ``chunk_size`` at a time, so a memmap-backed graph is
    re-emitted without ever residing in RAM.
    """
    if chunk_size < 1:
        raise StorageError(f"chunk_size must be >= 1, got {chunk_size}")
    indptr = graph.indptr
    indices = graph.indices
    n = graph.num_nodes
    node = 0
    while node < n:
        stop = int(np.searchsorted(indptr, int(indptr[node]) + chunk_size, "right")) - 1
        stop = min(max(stop, node + 1), n)
        lo, hi = int(indptr[node]), int(indptr[stop])
        if hi > lo:
            window = np.asarray(indices[lo:hi])
            src = np.repeat(
                np.arange(node, stop, dtype=np.int64),
                np.diff(np.asarray(indptr[node : stop + 1])),
            )
            mask = src < window
            if mask.any():
                yield np.column_stack((src[mask], window[mask]))
        node = stop


# ----------------------------------------------------------------------
# Streaming builder (external sort + merge)
# ----------------------------------------------------------------------
class StreamingCSRBuilder:
    """Build an on-disk CSR from edge chunks without the full edge list.

    Chunks are canonicalised to ``lo * n + hi`` keys, deduplicated
    per-block and spilled as sorted runs; :meth:`build` external-merges
    the runs into the unique canonical edge stream, derives the reverse
    arcs by a second external sort, and streams the final two-way merge
    straight into the ``indices`` plane. The result is bit-identical to
    :meth:`repro.graph.builder.GraphBuilder.build` — same dedup, same
    ``(src, dst)`` arc order, same dtypes — with peak RSS of
    O(chunk + N) instead of O(|E|).
    """

    def __init__(
        self,
        num_nodes: int,
        directory: "str | os.PathLike | None" = None,
        chunk_arcs: int = DEFAULT_CHUNK_ARCS,
    ):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if chunk_arcs < 2:
            raise StorageError(f"chunk_arcs must be >= 2, got {chunk_arcs}")
        self._num_nodes = int(num_nodes)
        self._directory = Path(directory) if directory is not None else None
        self._chunk_arcs = int(chunk_arcs)
        self._pending: list[np.ndarray] = []
        self._pending_len = 0
        self._runs: list[Path] = []
        self._spill_dir: "Path | None" = None
        self._built = False

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def _spill_root(self) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(
                tempfile.mkdtemp(prefix="spill-", dir=storage_root())
            )
        return self._spill_dir

    def add_edges(self, edges: "np.ndarray | list[tuple[int, int]]") -> None:
        """Add a batch of undirected edges from an ``(m, 2)`` array-like."""
        if self._built:
            raise StorageError("builder already finalized")
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {arr.shape}")
        if arr.min() < 0 or arr.max() >= self._num_nodes:
            raise GraphError(
                f"edge endpoints must lie in [0, {self._num_nodes}); "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        if np.any(arr[:, 0] == arr[:, 1]):
            bad = int(arr[arr[:, 0] == arr[:, 1]][0, 0])
            raise GraphError(f"self-loop at node {bad} is not allowed")
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        self._pending.append(lo * np.int64(self._num_nodes) + hi)
        self._pending_len += len(arr)
        if self._pending_len >= self._chunk_arcs:
            self._spill()

    def add_chunks(self, chunks: Iterable[np.ndarray]) -> None:
        """Consume an iterable of edge chunks (an ``emit_arcs`` stream)."""
        for chunk in chunks:
            self.add_edges(chunk)

    def _spill(self) -> None:
        if not self._pending:
            return
        keys = np.unique(np.concatenate(self._pending))
        self._pending = []
        self._pending_len = 0
        path = self._spill_root() / f"run-{len(self._runs):06d}.npy"
        np.save(path, keys)
        self._runs.append(path)

    # -- external merge machinery ------------------------------------
    @staticmethod
    def _merge_runs(a_path: Path, b_path: Path, out_path: Path) -> None:
        """Two-way merge of sorted runs (duplicates kept; sizes exact)."""
        a = np.load(a_path, mmap_mode="r")
        b = np.load(b_path, mmap_mode="r")
        out = _npy_format.open_memmap(
            out_path, mode="w+", dtype=np.int64, shape=(len(a) + len(b),)
        )
        ia = ib = io_ = 0
        while ia < len(a) and ib < len(b):
            block_a = np.asarray(a[ia : ia + _MERGE_BLOCK])
            block_b = np.asarray(b[ib : ib + _MERGE_BLOCK])
            # Emit everything in block_a up to block_b's remaining max
            # and vice versa: both bounded cursors advance each round.
            # Everything <= the smaller block maximum can be emitted now
            # (later elements of both runs are >= it); the block owning
            # that maximum is consumed whole, so both cursors progress.
            limit = min(block_a[-1], block_b[-1])
            take_a = int(np.searchsorted(block_a, limit, "right"))
            take_b = int(np.searchsorted(block_b, limit, "right"))
            merged = np.concatenate((block_a[:take_a], block_b[:take_b]))
            merged.sort(kind="stable")
            out[io_ : io_ + len(merged)] = merged
            io_ += len(merged)
            ia += take_a
            ib += take_b
        for rest, cursor in ((a, ia), (b, ib)):
            while cursor < len(rest):
                block = np.asarray(rest[cursor : cursor + _MERGE_BLOCK])
                out[io_ : io_ + len(block)] = block
                io_ += len(block)
                cursor += len(block)
        out.flush()
        del out

    def _collapse_runs(self) -> "Path | None":
        """Pairwise-merge spilled runs down to one sorted run on disk."""
        runs = list(self._runs)
        self._runs = []
        generation = 0
        while len(runs) > 1:
            merged: list[Path] = []
            for i in range(0, len(runs) - 1, 2):
                out = self._spill_root() / f"merge-{generation}-{i // 2:06d}.npy"
                self._merge_runs(runs[i], runs[i + 1], out)
                runs[i].unlink()
                runs[i + 1].unlink()
                merged.append(out)
            if len(runs) % 2 == 1:
                merged.append(runs[-1])
            runs = merged
            generation += 1
        return runs[0] if runs else None

    def build(self, directory: "str | os.PathLike | None" = None) -> MemmapCSR:
        """External-merge the spilled runs into the on-disk CSR."""
        if self._built:
            raise StorageError("builder already finalized")
        self._built = True
        self._spill()
        target = Path(directory) if directory is not None else self._directory
        if target is None:
            target = Path(tempfile.mkdtemp(prefix="csr-", dir=storage_root()))
        n = self._num_nodes
        run = self._collapse_runs()
        try:
            if run is None:
                return save_csr(
                    target,
                    np.zeros(n + 1, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
            canon_path, num_edges = self._dedup_run(run)
            reverse_path = self._reverse_sorted(canon_path, num_edges)
            return self._write_planes(target, canon_path, reverse_path, num_edges)
        finally:
            if self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_dir = None

    def _dedup_run(self, run: Path) -> tuple[Path, int]:
        """Drop cross-run duplicates from the merged sorted key stream."""
        source = np.load(run, mmap_mode="r")
        out_path = self._spill_root() / "canonical.bin"
        count = 0
        last = -1
        with out_path.open("wb") as handle:
            for start in range(0, len(source), _MERGE_BLOCK):
                block = np.asarray(source[start : start + _MERGE_BLOCK])
                mask = np.empty(len(block), dtype=bool)
                mask[0] = block[0] != last
                mask[1:] = block[1:] != block[:-1]
                kept = block[mask]
                handle.write(kept.tobytes())
                count += len(kept)
                last = int(block[-1])
        run.unlink()
        return out_path, count

    def _reverse_sorted(self, canon_path: Path, num_edges: int) -> Path:
        """The reverse-arc keys (``hi * n + lo``), externally sorted."""
        n = np.int64(self._num_nodes)
        canon = np.memmap(canon_path, dtype=np.int64, mode="r", shape=(num_edges,))
        runs: list[Path] = []
        for start in range(0, num_edges, self._chunk_arcs):
            block = np.asarray(canon[start : start + self._chunk_arcs])
            rev = (block % n) * n + block // n
            rev.sort(kind="stable")
            path = self._spill_root() / f"rev-{len(runs):06d}.npy"
            np.save(path, rev)
            runs.append(path)
        del canon
        self._runs = runs
        out = self._collapse_runs()
        if out is None:
            out = self._spill_root() / "rev-empty.npy"
            np.save(out, np.empty(0, dtype=np.int64))
        return out

    def _write_planes(
        self, target: Path, canon_path: Path, reverse_path: Path, num_edges: int
    ) -> MemmapCSR:
        """Stream the forward/reverse merge into the final planes."""
        n = self._num_nodes
        num_arcs = 2 * num_edges
        target.mkdir(parents=True, exist_ok=True)
        forward = np.memmap(
            canon_path, dtype=np.int64, mode="r", shape=(num_edges,)
        )
        reverse = np.load(reverse_path, mmap_mode="r")
        indices_path = target / "indices.npy"
        indices = _npy_format.open_memmap(
            indices_path, mode="w+", dtype=np.int64, shape=(num_arcs,)
        )
        counts = np.zeros(n + 1, dtype=np.int64)
        ia = ib = io_ = 0
        while io_ < num_arcs:
            block_a = np.asarray(forward[ia : ia + _MERGE_BLOCK])
            block_b = np.asarray(reverse[ib : ib + _MERGE_BLOCK])
            if len(block_a) and len(block_b):
                limit = min(block_a[-1], block_b[-1])
                take_a = int(np.searchsorted(block_a, limit, "right"))
                take_b = int(np.searchsorted(block_b, limit, "right"))
                merged = np.concatenate((block_a[:take_a], block_b[:take_b]))
                merged.sort(kind="stable")
            elif len(block_a):
                merged, take_a, take_b = block_a, len(block_a), 0
            else:
                merged, take_a, take_b = block_b, 0, len(block_b)
            # Arc key k encodes (src, dst) = (k // n, k % n); forward
            # keys have src < dst, reverse keys src > dst — disjoint, so
            # the merged stream is the lexsorted (src, dst) arc order.
            src = merged // n
            indices[io_ : io_ + len(merged)] = merged % n
            counts[1:] += np.bincount(src, minlength=n)
            io_ += len(merged)
            ia += take_a
            ib += take_b
        indices.flush()
        del indices
        indptr = np.cumsum(counts, out=counts)
        indptr_path = target / "indptr.npy"
        np.save(indptr_path, indptr)
        entries = {
            name: {
                "file": f"{name}.npy",
                "dtype": "<i8",
                "shape": [length],
                "sha256": _digest_file(path),
            }
            for name, path, length in (
                ("indptr", indptr_path, n + 1),
                ("indices", indices_path, num_arcs),
            )
        }
        manifest = {
            "format": STORAGE_FORMAT,
            "num_nodes": n,
            "num_arcs": num_arcs,
            "planes": entries,
        }
        _write_manifest(target, manifest)
        return open_csr(target)


def stream_graph(
    chunks: Iterable[np.ndarray],
    num_nodes: int,
    directory: "str | os.PathLike | None" = None,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
) -> MemmapCSR:
    """Build an on-disk CSR straight from an edge-chunk stream.

    The one-call form of :class:`StreamingCSRBuilder` for the
    generators' ``emit_arcs`` paths::

        csr = stream_graph(emit_gnp_arcs(n, p, rng=0), num_nodes=n)
        graph = csr.graph()
    """
    builder = StreamingCSRBuilder(num_nodes, directory, chunk_arcs)
    builder.add_chunks(chunks)
    return builder.build()
