"""Union-multigraph CSR over several relations on one node set.

The multigraph random walk of Gjoka et al. [19] crawls the *union* of
several relations (friendship, co-membership, event attendance, ...)
over the same users, keeping parallel edges: a pair connected in two
relations is twice as likely to be traversed. :class:`UnionCSR` merges
the relations' individual CSR arrays into one multigraph CSR so that
next-hop selection becomes a single gather instead of a per-relation
scan — the representation behind both the sequential
:class:`~repro.sampling.multigraph.MultigraphRandomWalkSampler` and its
batched frontier kernel (:mod:`repro.sampling.batch`).

Layout contract
---------------
Node ``v``'s arcs are the concatenation, **in relation order**, of each
relation's (sorted) adjacency run. Stub ``k`` of node ``v`` therefore is
``indices[indptr[v] + k]`` — exactly the arc the relation-scan
formulation of the multigraph walk resolves stub ``k`` to, which is what
makes the union-CSR walk bit-for-bit identical to the scan walk for the
same random variates.

Instances are cached: :func:`union_csr` memoizes on the (immutable,
hashable) relation graphs, so the R replicate samplers of a sweep share
one merged representation. The cache holds its values *weakly* — an
entry lives exactly as long as some sampler (or other caller) still
references the merged arrays, so a long-running session that cycles
through many substrates never pins dead merges for the process
lifetime.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency import Graph
from repro.graph.planes import (
    DEFAULT_CHUNK_ARCS,
    PlaneWriter,
    derived_arc_sources,
    node_blocks,
    plane_store_for,
)

__all__ = ["UnionCSR", "build_union_planes", "union_csr"]


def build_union_planes(
    writer: PlaneWriter,
    graphs: Sequence[Graph],
    indptr: np.ndarray,
    chunk_arcs: int = DEFAULT_CHUNK_ARCS,
) -> None:
    """Chunked out-of-core twin of the in-RAM union scatter merge.

    Fills ``indices`` / ``arc_relations`` planes one node block at a
    time: per block, each relation's arc window is gathered and placed
    behind the runs of the relations before it — the same values the
    one-shot scatter produces, computed in O(chunk) RAM. Blocks hold
    whole nodes (see :func:`repro.graph.planes.node_blocks`), so this is
    a pure evaluation-order change and the planes are bit-identical.
    """
    indptr = np.asanyarray(indptr)
    num_arcs = int(indptr[-1])
    out_indices = writer.create("indices", np.int64, (num_arcs,))
    out_relations = writer.create("arc_relations", np.int64, (num_arcs,))
    for first, stop, lo, hi in node_blocks(indptr, chunk_arcs):
        block_indices = np.empty(hi - lo, dtype=np.int64)
        block_relations = np.empty(hi - lo, dtype=np.int64)
        # Within-block destination offset of each node's next run.
        offset = np.asarray(indptr[first:stop]) - lo
        for rel, graph in enumerate(graphs):
            glo, ghi = int(graph.indptr[first]), int(graph.indptr[stop])
            deg = np.diff(np.asarray(graph.indptr[first : stop + 1]))
            if ghi > glo:
                arcs = np.asarray(graph.indices[glo:ghi])
                within = (
                    np.arange(len(arcs), dtype=np.int64)
                    + glo
                    - np.repeat(np.asarray(graph.indptr[first:stop]), deg)
                )
                dest = np.repeat(offset, deg) + within
                block_indices[dest] = arcs
                block_relations[dest] = rel
            offset = offset + deg
        out_indices[lo:hi] = block_indices
        out_relations[lo:hi] = block_relations


class UnionCSR:
    """Immutable multigraph CSR merging several relations.

    Parameters
    ----------
    graphs:
        One or more :class:`Graph` instances over the *same* node set.
        Parallel edges are kept (multigraph semantics).

    Prefer :func:`union_csr` over direct construction — it caches the
    merge per relation tuple.
    """

    __slots__ = (
        "_graphs",
        "_indptr",
        "_indices",
        "_arc_relations",
        "_total_degrees",
        "_arc_sources",
        "__weakref__",  # the union_csr cache references instances weakly
    )

    def __init__(self, graphs: Sequence[Graph]):
        graphs = tuple(graphs)
        if len(graphs) < 1:
            raise GraphError("need at least one relation graph")
        if not all(isinstance(g, Graph) for g in graphs):
            raise GraphError("all relations must be Graph instances")
        num_nodes = graphs[0].num_nodes
        if any(g.num_nodes != num_nodes for g in graphs):
            raise GraphError("all relations must share one node set")
        per_degrees = np.array([g.degrees() for g in graphs], dtype=np.int64)
        total_degrees = per_degrees.sum(axis=0)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(total_degrees, out=indptr[1:])
        num_arcs = int(indptr[-1])
        # The merged planes are the O(arcs) cost of a union; under the
        # memmap storage plane (or file-backed relations) they build
        # chunked through the derived-plane store instead — bit-identical
        # planes, O(chunk) peak RAM, reused across runs by content key.
        store = plane_store_for(
            *(g.indptr for g in graphs),
            *(g.indices for g in graphs),
            nbytes=num_arcs * 16,
        )
        if store is not None:
            merged = store.get_or_build(
                "union-csr",
                params={"num_relations": len(graphs)},
                sources=tuple(g.indptr for g in graphs)
                + tuple(g.indices for g in graphs),
                build=lambda writer: build_union_planes(writer, graphs, indptr),
            )
            indices = merged["indices"]
            arc_relations = merged["arc_relations"]
        else:
            indices = np.empty(num_arcs, dtype=np.int64)
            arc_relations = np.empty(num_arcs, dtype=np.int64)
            # Scatter each relation's arcs behind the arcs of the
            # relations before it: `offset[v]` tracks where node v's
            # next run lands.
            offset = indptr[:-1].copy()
            for rel, graph in enumerate(graphs):
                deg = per_degrees[rel]
                if not deg.any():
                    continue
                within = np.arange(
                    len(graph.indices), dtype=np.int64
                ) - np.repeat(graph.indptr[:-1], deg)
                dest = np.repeat(offset, deg) + within
                indices[dest] = graph.indices
                arc_relations[dest] = rel
                offset += deg
        self._arc_sources = None
        self._graphs = graphs
        self._indptr = indptr
        self._indices = indices
        self._arc_relations = arc_relations
        self._total_degrees = total_degrees

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N`` (shared by all relations)."""
        return len(self._indptr) - 1

    @property
    def num_relations(self) -> int:
        """Number of merged relations."""
        return len(self._graphs)

    @property
    def num_arcs(self) -> int:
        """Total directed arcs (sum over relations; twice the edges)."""
        return len(self._indices)

    @property
    def graphs(self) -> tuple[Graph, ...]:
        """The merged relation graphs, in merge order."""
        return self._graphs

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR offsets; run ``v`` spans ``indptr[v]:indptr[v+1]``."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """Read-only multigraph neighbor array (parallel arcs kept)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def arc_relations(self) -> np.ndarray:
        """Relation id of every arc, aligned with :attr:`indices`."""
        view = self._arc_relations.view()
        view.flags.writeable = False
        return view

    @property
    def total_degrees(self) -> np.ndarray:
        """Per-node degree summed over relations (the stationary weight)."""
        view = self._total_degrees.view()
        view.flags.writeable = False
        return view

    def arc_sources(self) -> np.ndarray:
        """Source node of every arc, aligned with :attr:`indices`.

        Computed once and cached like :attr:`Graph.arc_sources` (it used
        to re-run an O(arcs) ``np.repeat`` per call), routed through the
        derived-plane store — keyed on the merged ``indptr`` alone, so a
        union and a simple graph with identical offsets share one plane.
        Read-only view.
        """
        if self._arc_sources is None:
            self._arc_sources = derived_arc_sources(self._indptr)
        view = self._arc_sources.view()
        view.flags.writeable = False
        return view

    def arc_multiplicities(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct directed arcs and their multiplicities.

        Returns ``(arcs, counts)`` where ``arcs`` is ``(m, 2)`` with rows
        ``(u, v)`` and ``counts[i]`` is how many relations carry that
        arc. Because every relation is symmetric, the multiplicity of
        ``(u, v)`` always equals the multiplicity of ``(v, u)``.
        """
        pairs = np.column_stack((self.arc_sources(), self._indices))
        if len(pairs) == 0:
            return pairs, np.empty(0, dtype=np.int64)
        arcs, counts = np.unique(pairs, axis=0, return_counts=True)
        return arcs, counts

    def __repr__(self) -> str:
        return (
            f"UnionCSR(num_nodes={self.num_nodes}, "
            f"num_relations={self.num_relations}, num_arcs={self.num_arcs})"
        )


#: Weak-valued memo: keys are relation tuples, values the merged CSRs.
#: An entry (and the key tuple's strong references to its graphs) is
#: dropped automatically once no caller holds the UnionCSR anymore —
#: unlike the previous ``lru_cache``, which pinned up to 32 merges for
#: the process lifetime.
_UNION_CACHE: "weakref.WeakValueDictionary[tuple[Graph, ...], UnionCSR]" = (
    weakref.WeakValueDictionary()
)


def union_csr(graphs: Sequence[Graph]) -> UnionCSR:
    """The (cached) union-multigraph CSR of ``graphs``.

    Memoized on the relation tuple — :class:`Graph` is immutable and
    hashable — so repeated samplers over the same relations share one
    merged representation instead of re-merging per construction. The
    memo is weak-valued: it never extends a merge's lifetime, it only
    deduplicates merges that are simultaneously alive.
    """
    graphs = tuple(graphs)
    if not all(isinstance(g, Graph) for g in graphs):
        raise GraphError("all relations must be Graph instances")
    merged = _UNION_CACHE.get(graphs)
    if merged is None:
        merged = UnionCSR(graphs)
        _UNION_CACHE[graphs] = merged
    return merged
