"""Stdlib logging hygiene for the ``repro`` package.

Library rule: every module logs through the ``repro`` logger hierarchy
(``logging.getLogger("repro.runtime.pool")`` etc.) and the package root
carries a :class:`logging.NullHandler`, so importing :mod:`repro` never
configures logging behind an application's back and never prints the
"No handlers could be found" nag.

Applications (and the ``repro`` CLI) opt into console output with
:func:`configure_logging`, driven by ``--verbose`` or the ``REPRO_LOG``
environment variable (a level name such as ``debug``/``INFO`` or a
numeric level). Degradation paths keep their ``warnings.warn`` calls —
those are API contract, tests assert on them — and *additionally* log,
so a long-running service with logging configured sees recovery events
in its stream.
"""

from __future__ import annotations

import logging
import os

from repro.exceptions import ReproError

ROOT_NAME = "repro"

#: Levels accepted by name in ``REPRO_LOG`` / ``configure_logging``.
_LEVELS = {
    "CRITICAL": logging.CRITICAL,
    "ERROR": logging.ERROR,
    "WARNING": logging.WARNING,
    "INFO": logging.INFO,
    "DEBUG": logging.DEBUG,
}

# Library-side hygiene: a NullHandler on the package root, attached at
# first import of any repro module that logs.
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())

_HANDLER: logging.Handler | None = None


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger inside the ``repro`` hierarchy.

    ``get_logger("repro.runtime.pool")`` (the usual ``__name__`` form)
    and ``get_logger("runtime.pool")`` name the same logger.
    """
    if not name or name == ROOT_NAME:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") or name == ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def resolve_level(spec: int | str) -> int:
    """Parse a level name or number; raises :class:`ReproError`."""
    if isinstance(spec, int):
        return spec
    text = str(spec).strip()
    if text.upper() in _LEVELS:
        return _LEVELS[text.upper()]
    try:
        return int(text)
    except ValueError:
        raise ReproError(
            f"unknown log level {spec!r}; expected one of "
            f"{', '.join(level.lower() for level in _LEVELS)} or a number"
        ) from None


def configure_logging(
    level: int | str | None = None, *, verbose: bool = False
) -> int | None:
    """Attach one stderr handler to the ``repro`` logger hierarchy.

    Resolution order: explicit ``level`` > ``verbose`` (DEBUG) >
    ``REPRO_LOG`` environment variable. With none of those set this is
    a no-op returning ``None`` (the NullHandler stays alone and the
    library emits nothing). Idempotent: repeated calls re-level the
    single handler instead of stacking duplicates.
    """
    global _HANDLER
    if level is None:
        if verbose:
            level = logging.DEBUG
        else:
            env = os.environ.get("REPRO_LOG", "").strip()
            if not env:
                return None
            level = env
    resolved = resolve_level(level)
    root = logging.getLogger(ROOT_NAME)
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler()
        _HANDLER.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
            )
        )
        root.addHandler(_HANDLER)
    root.setLevel(resolved)
    return resolved
