"""Model-based follow-ups (the paper's Section 9 applications)."""

from repro.models.gravity import (
    GravityFit,
    fit_gravity_model,
    pair_distance_feature,
)

__all__ = ["GravityFit", "fit_gravity_model", "pair_distance_feature"]
