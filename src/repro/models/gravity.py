"""Gravity-style modeling of category mixing (paper Section 9).

The paper's "Potential applications": *"given additional features
associated with each category (e.g., ... location ...), one can model
the inter-category mixing rates as a function of category features
(e.g., the effect of geographical distance on tie probability). This
permits both hypothesis testing for putative theories of tie formation
and ex ante prediction of interaction rates among new or unobserved
categories."*

This module implements that follow-up on top of the estimators:

* :func:`fit_gravity_model` — weighted least squares on
  ``log w(A, B) = beta_0 + sum_k beta_k * x_k(A, B)`` over the observed
  (estimated) category-graph edges; the canonical feature is
  geographic distance;
* permutation hypothesis test for each coefficient (shuffle the
  feature across pairs; design-based, no distributional assumptions);
* :meth:`GravityFit.predict` — ex ante mixing-rate prediction for new
  category pairs from their features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.category_graph import CategoryGraph
from repro.rng import ensure_rng

__all__ = ["GravityFit", "fit_gravity_model", "pair_distance_feature"]


@dataclass(frozen=True)
class GravityFit:
    """A fitted log-linear mixing model.

    Attributes
    ----------
    coefficients:
        ``(1 + K,)`` — intercept first, then one slope per feature.
    feature_names:
        Names for the slope coefficients.
    residual_std:
        Standard deviation of log-scale residuals.
    r_squared:
        Fraction of log-weight variance explained.
    p_values:
        Permutation p-values per slope (two-sided), same order as
        ``feature_names``; ``nan`` when the test was skipped.
    num_pairs:
        Number of category pairs used in the fit.
    """

    coefficients: np.ndarray
    feature_names: tuple[str, ...]
    residual_std: float
    r_squared: float
    p_values: np.ndarray
    num_pairs: int

    @property
    def intercept(self) -> float:
        """The ``beta_0`` term."""
        return float(self.coefficients[0])

    def slope(self, name: str) -> float:
        """Slope coefficient for a named feature."""
        try:
            idx = self.feature_names.index(name)
        except ValueError:
            raise EstimationError(f"unknown feature {name!r}") from None
        return float(self.coefficients[1 + idx])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted mixing rates ``w`` for rows of pair features.

        Parameters
        ----------
        features:
            ``(m, K)`` feature rows (same order as ``feature_names``).
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != len(self.feature_names):
            raise EstimationError(
                f"expected {len(self.feature_names)} features per row, "
                f"got {features.shape[1]}"
            )
        design = np.column_stack((np.ones(len(features)), features))
        return np.exp(design @ self.coefficients)

    def summary(self) -> str:
        """Human-readable coefficient table."""
        lines = [
            f"gravity fit over {self.num_pairs} pairs  "
            f"(R^2 = {self.r_squared:.3f}, residual sd = {self.residual_std:.3f})",
            f"  intercept: {self.intercept:+.4f}",
        ]
        for i, name in enumerate(self.feature_names):
            p = self.p_values[i]
            p_text = f"p = {p:.4f}" if np.isfinite(p) else "p = n/a"
            lines.append(
                f"  {name}: {self.coefficients[1 + i]:+.4f}  ({p_text})"
            )
        return "\n".join(lines)


def fit_gravity_model(
    category_graph: CategoryGraph,
    features: dict[str, np.ndarray],
    min_weight: float = 0.0,
    permutations: int = 500,
    rng: "np.random.Generator | int | None" = 0,
) -> GravityFit:
    """Fit ``log w(A,B) ~ features`` over the category graph's edges.

    Parameters
    ----------
    category_graph:
        Estimated (or true) category graph; only pairs with finite
        weight strictly above ``min_weight`` enter the fit (log scale).
    features:
        ``{name: (C, C) symmetric matrix}`` of pair features — e.g. the
        output of :func:`pair_distance_feature`.
    permutations:
        Permutation-test resamples per feature; ``0`` skips the test.

    Notes
    -----
    Fitting runs on estimated weights, so measurement noise attenuates
    slopes toward zero (classical errors-in-variables); the permutation
    test stays valid because it permutes features, not weights.
    """
    if not features:
        raise EstimationError("fit_gravity_model needs at least one feature")
    pairs = [
        (a, b)
        for a, b, w in category_graph.edges()
        if w > min_weight
    ]
    if len(pairs) < len(features) + 2:
        raise EstimationError(
            f"only {len(pairs)} usable pairs for {len(features)} features"
        )
    names = tuple(features)
    rows = np.asarray(pairs, dtype=np.int64)
    y = np.log(
        np.asarray([category_graph.weights[a, b] for a, b in pairs])
    )
    x = np.column_stack(
        [np.asarray(features[name], dtype=float)[rows[:, 0], rows[:, 1]] for name in names]
    )
    if not np.all(np.isfinite(x)):
        raise EstimationError("features contain non-finite values on used pairs")
    design = np.column_stack((np.ones(len(y)), x))
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ coef
    residuals = y - fitted
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residuals**2)) / total if total > 0 else 0.0

    p_values = np.full(len(names), np.nan)
    if permutations > 0:
        gen = ensure_rng(rng)
        for k in range(len(names)):
            observed = abs(coef[1 + k])
            exceed = 0
            for _ in range(permutations):
                shuffled = design.copy()
                shuffled[:, 1 + k] = gen.permutation(design[:, 1 + k])
                perm_coef, *_ = np.linalg.lstsq(shuffled, y, rcond=None)
                if abs(perm_coef[1 + k]) >= observed:
                    exceed += 1
            p_values[k] = (exceed + 1) / (permutations + 1)

    return GravityFit(
        coefficients=coef,
        feature_names=names,
        residual_std=float(residuals.std(ddof=min(len(coef), len(y) - 1))),
        r_squared=r_squared,
        p_values=p_values,
        num_pairs=len(pairs),
    )


def pair_distance_feature(positions: np.ndarray) -> np.ndarray:
    """``(C, C)`` absolute-distance feature from per-category positions.

    Categories with ``nan`` positions produce ``nan`` rows/columns; the
    fit rejects pairs with non-finite features, so exclude such
    categories from the graph or accept their exclusion from the fit.
    """
    positions = np.asarray(positions, dtype=float)
    return np.abs(positions[:, None] - positions[None, :])
