"""Random-number-generation helpers.

The library never touches NumPy's global random state. Every stochastic
function accepts either an explicit :class:`numpy.random.Generator`, an
integer seed, or ``None`` (fresh OS entropy), normalised via
:func:`ensure_rng`. Derived streams for parallel replications come from
:func:`spawn_rngs`, which uses ``SeedSequence`` spawning so replications
are independent and reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn_seeds", "spawn_rngs", "derive_rng"]

# Anything acceptable as a source of randomness in public APIs.
RngLike = "np.random.Generator | int | None"


def ensure_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be a numpy Generator, an int seed, or None; got {type(rng).__name__}"
    )


def spawn_seeds(rng: np.random.Generator | int | None, count: int) -> list[int]:
    """The integer seeds behind :func:`spawn_rngs`, without the generators.

    Replication harnesses that ship work to other processes send these
    plain integers instead of generator objects: stream ``i`` is always
    ``np.random.default_rng(seeds[i])``, so a worker reconstructs the
    exact replicate stream regardless of which shard it was assigned.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rngs(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators derived from ``rng``.

    Used by replication harnesses so that replication ``i`` is
    reproducible regardless of how many replications run or in what
    order.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]


def derive_rng(rng: np.random.Generator | int | None, *tags: int) -> np.random.Generator:
    """Derive a generator deterministically keyed by integer ``tags``.

    ``derive_rng(seed, 3, 7)`` always yields the same stream for the same
    seed and tags, independent of call order — handy for keying a stream
    to (replication index, panel index).
    """
    if isinstance(rng, np.random.Generator):
        # Generators carry no recoverable seed; draw a seed from them once.
        base_seed = int(rng.integers(0, 2**31 - 1))
    elif rng is None:
        base_seed = int(np.random.default_rng().integers(0, 2**31 - 1))
    else:
        base_seed = int(rng)
    seq = np.random.SeedSequence(entropy=base_seed, spawn_key=tuple(int(t) for t in tags))
    return np.random.default_rng(seq)
