"""``repro.runtime`` — process-parallel sweep and plan execution.

The layer between the sampling/estimation kernels and the experiments
harness. Every experiment compiles to a declarative
:class:`~repro.experiments.plan.SweepPlan` — a grid of scenario cells
(substrate x partition x design x budget ladder x replications, fresh
or pre-drawn) plus a finalize step — and :func:`run_plan` executes it:
:class:`ProcessSweepExecutor` runs each replicated NRMSE sweep cell
across worker processes (fresh-draw sweeps via
:meth:`~ProcessSweepExecutor.run`, pre-drawn crawl sweeps via
:meth:`~ProcessSweepExecutor.run_from_samples`), publishing the plan's
shared substrate once through shared memory
(:mod:`repro.runtime.sharedmem` — one pool per plan run, deduplicated
across cells), bounding variate memory via the batched engine's chunked
step windows, and checkpointing every completed ladder rung plus the
compressed per-replicate observations
(:mod:`repro.runtime.checkpoint`) so paper-scale runs survive being
killed. Select the executor per call
(``run_nrmse_sweep(executor="process", workers=4)``), per scope
(:func:`runtime_options`), per environment (``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` — how CI runs whole suites under the parallel path),
or per plan (``repro experiment fig6 --workers 4``). Both replicated
entry points — :func:`~repro.stats.replication.run_nrmse_sweep` and
:func:`~repro.stats.replication.run_nrmse_sweep_from_samples` — resolve
the ambient configuration identically.

The determinism contract
------------------------
Plan output is **bit-identical** to the serial engine, for every worker
count, by construction rather than by tolerance:

1. **Streams are named by seed, not by schedule.** The master generator
   spawns one integer seed per replicate
   (:func:`repro.rng.spawn_seeds`) exactly as the serial harness
   spawns its generators; replicate ``i`` *is*
   ``default_rng(seeds[i])`` wherever it executes. Pre-drawn cells
   skip sampling entirely: their replicate crawls are inputs, shipped
   to workers byte-for-byte through shared memory. Plan cells derive
   their master streams by fixed integer keys
   (:func:`repro.rng.derive_rng`), so cell order is irrelevant too.
   Shard assignment, worker count, and completion order cannot reach a
   trajectory.
2. **Kernels are shard-blind.** A worker advances its replicate block
   through the same batched frontier kernels
   (:func:`repro.sampling.batch.sample_streams`), which are bit-equal
   to the sequential samplers per stream — the PR-1/PR-2 contract this
   layer inherits. Chunked variate windows preserve it because chunked
   ``Generator.random`` calls yield the identical value stream.
3. **Estimation rows share one code path.** Each replicate's rung rows
   come from the same ``_rung_rows`` / prefix-ladder code the serial
   sweep runs; rows are placed by absolute replicate index and reduced
   by the serial reducer (including the cross-sample pseudo-truth
   reduction of the paper's Section 7.2 convention). No float is added
   in a different order.
4. **Resume is exact.** Checkpointed rungs are replayed from disk while
   workers fold their integer multiplicity state forward
   (:meth:`repro.stats.prefix.IncrementalPrefixLadder.fold` — adding a
   draw's multiplicity is order-free integer arithmetic), and ladders
   are seeded from the checkpointed ``observe_both`` observations —
   arrays that round-trip npz exactly — instead of re-measuring, so a
   resumed sweep finishes with the same bits as an uninterrupted one.
   Checkpoints are double-keyed: the plan directory by the plan
   manifest (experiment id + cell grid), each cell's sweep directory
   by a manifest fingerprint (seeds or pre-drawn sample digests,
   ladder, estimator knobs, graph/partition/sampler content), so a
   stale checkpoint can never contaminate a non-matching run. A killed
   ``repro experiment <name> --resume`` restarts at the first missing
   cell/rung.

``tests/runtime/`` enforces all four properties (``test_plan.py`` at
the plan grain, including fig6/ablation pre-drawn cells at 1/2/3
workers and mid-cell kill/resume); the golden sweep regression
additionally pins the executor against the serial reference for every
registered design.
"""

from repro.runtime.checkpoint import PlanCheckpoint, SweepCheckpoint
from repro.runtime.config import (
    RuntimeOptions,
    active_options,
    resolve_executor,
    runtime_options,
)
from repro.runtime.executor import ProcessSweepExecutor
from repro.runtime.plan import run_plan
from repro.runtime.sharedmem import SharedArrayPool

__all__ = [
    "PlanCheckpoint",
    "ProcessSweepExecutor",
    "RuntimeOptions",
    "SharedArrayPool",
    "SweepCheckpoint",
    "active_options",
    "resolve_executor",
    "run_plan",
    "runtime_options",
]
