"""``repro.runtime`` — process-parallel sweep and plan execution.

The layer between the sampling/estimation kernels and the experiments
harness. Every experiment compiles to a declarative
:class:`~repro.experiments.plan.SweepPlan` — a dependency DAG of
resource builds, scenario cells (substrate x partition x design x
budget ladder x replications, fresh or pre-drawn), and a finalize step
— and :func:`run_plan` executes it. Parallel plans default to the
**DAG scheduler** (:mod:`repro.runtime.scheduler`): resources build
concurrently ahead of the cell frontier, ready cells overlap on one
**persistent worker pool** (:mod:`repro.runtime.pool` — workers spawn
once per process and serve every cell's shard tasks, so cell ``k+1``'s
sampling fills the gaps in cell ``k``'s ladder drain), and the
one-cell-at-a-time loop is kept as the reference twin
(``scheduler="serial"`` / ``REPRO_PLAN_SCHEDULER``). Each sweep cell
runs on :class:`ProcessSweepExecutor` (fresh-draw sweeps via
:meth:`~ProcessSweepExecutor.run`, pre-drawn crawl sweeps via
:meth:`~ProcessSweepExecutor.run_from_samples`), publishing the plan's
shared substrate once through shared memory
(:mod:`repro.runtime.sharedmem` — one ambient pool per plan run,
deduplicated across cells; cell-local blocks are retired from the
persistent workers when their cell finishes), bounding variate memory
via the batched engine's chunked step windows, and checkpointing every
completed ladder rung plus the compressed per-replicate observations
(:mod:`repro.runtime.checkpoint`) so paper-scale runs survive being
killed. Select the executor per call
(``run_nrmse_sweep(executor="process", workers=4)``), per scope
(:func:`runtime_options`), per environment (``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` — how CI runs whole suites under the parallel path),
or per plan (``repro experiment fig6 --workers 4``). Both replicated
entry points — :func:`~repro.stats.replication.run_nrmse_sweep` and
:func:`~repro.stats.replication.run_nrmse_sweep_from_samples` —
resolve the ambient configuration identically, and bare sweeps reuse
the same process-wide worker pool, so back-to-back sweeps in one
Python process — a plan's cells, a library session, a test suite —
spawn workers once, not once per sweep. (Separate CLI invocations are
separate processes; each spawns its pool once.)

The determinism contract
------------------------
Plan output is **bit-identical** to the serial engine — for every
worker count, and for every cell schedule the DAG scheduler might
choose — by construction rather than by tolerance:

1. **Streams are named by seed, not by schedule.** The master generator
   spawns one integer seed per replicate
   (:func:`repro.rng.spawn_seeds`) exactly as the serial harness
   spawns its generators; replicate ``i`` *is*
   ``default_rng(seeds[i])`` wherever it executes. Pre-drawn cells
   skip sampling entirely: their replicate crawls are inputs, shipped
   to workers byte-for-byte through shared memory. Plan cells derive
   their master streams by fixed integer keys
   (:func:`repro.rng.derive_rng`), so cell order is irrelevant too.
   Shard assignment, worker count, cell interleaving, and completion
   order cannot reach a trajectory.
2. **Kernels are shard-blind and schedule-blind.** A worker advances
   its replicate block through the same batched frontier kernels
   (:func:`repro.sampling.batch.sample_streams`), which are bit-equal
   to the sequential samplers per stream — the PR-1/PR-2 contract this
   layer inherits. Chunked variate windows preserve it because chunked
   ``Generator.random`` calls yield the identical value stream; a
   persistent worker running two cells' tasks in parallel threads
   preserves it because tasks share no mutable state.
3. **Estimation rows share one code path.** Each replicate's rung rows
   come from the same ``_rung_rows`` / prefix-ladder code the serial
   sweep runs; rows are placed by (cell, absolute replicate index) and
   every cell is reduced by the serial reducer (including the
   cross-sample pseudo-truth reduction of the paper's Section 7.2
   convention). No float is added in a different order, whichever
   cells were in flight together.
4. **Resume is exact — and substrate-free when possible.**
   Checkpointed rungs are replayed from disk while workers fold their
   integer multiplicity state forward
   (:meth:`repro.stats.prefix.IncrementalPrefixLadder.fold` — adding a
   draw's multiplicity is order-free integer arithmetic), and ladders
   are seeded from the checkpointed ``observe_both`` observations —
   arrays that round-trip npz exactly — instead of re-measuring, so a
   resumed sweep finishes with the same bits as an uninterrupted one.
   Checkpoints are double-keyed: the plan directory by the plan
   manifest (experiment id + cell grid), each cell's sweep directory
   by a manifest fingerprint (seeds or pre-drawn sample digests,
   ladder, estimator knobs, graph/partition/sampler content), so a
   stale checkpoint can never contaminate a non-matching run.
   Completed cells additionally record their sweep key in the plan's
   ``cells.json`` and persist their truth arrays, so a resumed plan
   *replays* a fully rung-cached cell
   (:func:`repro.runtime.executor.replay_sweep`) without rebuilding
   its substrate — the remaining cells resume at their first missing
   rung as before. A killed ``repro experiment <name> --resume``
   therefore restarts exactly where it died, to the same bytes, even
   when several cells were in flight. One trust boundary is inherent
   to skipping the rebuild: the replay path cannot re-fingerprint a
   substrate it never constructs, so it trusts the recorded key under
   a matching *plan* manifest (experiment id, cell grid, scale preset,
   master seed). Substrate drift that those inputs cannot see —
   editing a generator's code between runs — is caught on the
   build-and-resume path (content digests in the sweep manifest) but
   not on the replay path; after changing substrate-producing code,
   run once without ``--resume`` (or delete the plan directory) rather
   than resuming into it.
5. **Failure is survivable — and recovery reproduces the same bits.**
   Because streams are seed-named and shards are re-executable (points
   1-2), a worker that dies or wedges mid-shard is not a lost run: the
   executor's failover path respawns a replacement, replays the
   shard's task from its own seeds, folds forward past every rung the
   parent already received (the same integer skip-fold the resume path
   uses), and continues — output byte-identical to an undisturbed run,
   at any worker count. Retries are budgeted per shard
   (``REPRO_MAX_RETRIES`` / ``--max-retries``, default 2 beyond the
   first attempt); exhaustion raises a structured
   :class:`~repro.runtime.pool.WorkerFailure` naming the shard, every
   attempt's pid/exit code/phase, and any traceback the dying worker
   spilled to disk. A worker that hangs without dying is caught by
   per-task heartbeats against ``REPRO_TASK_TIMEOUT`` /
   ``--task-timeout`` (no timeout by default) and escalated through
   the same path. When workers cannot be (re)spawned at all, the
   runtime degrades — first to fewer workers (shards multiplex over
   the survivors), ultimately to in-process serial execution — each
   step with a single :class:`RuntimeWarning`, never a crash, and
   never different bytes. Checkpoint payloads carry embedded checksums:
   a corrupt file is quarantined as ``*.corrupt`` and its rows
   recomputed instead of poisoning a resume. All of it is exercised
   deterministically by the fault-injection harness
   (:mod:`repro.runtime.faults`, ``REPRO_FAULTS``) rather than waiting
   for real hardware to misbehave.
6. **Telemetry is output-neutral.** The runtime telemetry plane
   (:mod:`repro.runtime.telemetry`, ``--trace``/``--metrics``,
   :func:`~repro.runtime.telemetry.telemetry_scope`) observes the run —
   spans, counters, instant markers, shipped from workers over the
   existing reply channel — but never participates in it: no RNG draw,
   no float, no schedule decision, no checkpoint byte depends on
   whether recording is on. Outputs are byte-identical with telemetry
   enabled or disabled, at any worker count, and with recording off
   every probe is a single ``None`` check
   (``tests/runtime/test_telemetry.py`` pins both properties).

``tests/runtime/`` enforces all six properties —
``test_scheduler.py`` at the DAG grain (fig4 and fig6 bit-equal
serial-loop vs DAG at 1/2/3 workers, mid-plan kill with cells in
flight, substrate-free replay), ``test_plan.py`` at the plan grain —
and the golden sweep regression additionally pins the executor against
the serial reference for every registered design.
"""

from repro.runtime.checkpoint import PlanCheckpoint, SweepCheckpoint
from repro.runtime.config import (
    RuntimeOptions,
    active_options,
    resolve_executor,
    resolve_plan_scheduler,
    runtime_options,
)
from repro.runtime.executor import ProcessSweepExecutor, replay_sweep
from repro.runtime.plan import run_plan
from repro.runtime.pool import (
    PersistentWorkerPool,
    WorkerDied,
    WorkerFailure,
    default_pool,
    reset_default_pools,
)
from repro.runtime.sharedmem import SharedArrayPool
from repro.runtime.telemetry import TelemetryRecorder, telemetry_scope

__all__ = [
    "PersistentWorkerPool",
    "PlanCheckpoint",
    "ProcessSweepExecutor",
    "RuntimeOptions",
    "SharedArrayPool",
    "SweepCheckpoint",
    "TelemetryRecorder",
    "WorkerDied",
    "WorkerFailure",
    "active_options",
    "default_pool",
    "replay_sweep",
    "reset_default_pools",
    "resolve_executor",
    "resolve_plan_scheduler",
    "run_plan",
    "runtime_options",
    "telemetry_scope",
]
