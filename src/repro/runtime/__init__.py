"""``repro.runtime`` — process-parallel sweep execution.

The layer between the sampling/estimation kernels and the experiment
harness: :class:`ProcessSweepExecutor` runs a replicated NRMSE sweep
(the engine behind Figs. 3, 4, 6 and Table 2) across worker processes,
publishing the graph substrate once through shared memory
(:mod:`repro.runtime.sharedmem`), bounding variate memory via the
batched engine's chunked step windows, and checkpointing every
completed ladder rung (:mod:`repro.runtime.checkpoint`) so paper-scale
runs survive being killed. Select it per call
(``run_nrmse_sweep(executor="process", workers=4)``), per scope
(:func:`runtime_options`), or per environment (``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` — how CI runs whole suites under the parallel path).

The determinism contract
------------------------
Parallel output is **bit-identical** to the serial engine, for every
worker count, by construction rather than by tolerance:

1. **Streams are named by seed, not by schedule.** The master generator
   spawns one integer seed per replicate
   (:func:`repro.rng.spawn_seeds`) exactly as the serial harness
   spawns its generators; replicate ``i`` *is*
   ``default_rng(seeds[i])`` wherever it executes. Shard assignment,
   worker count, and completion order cannot reach a trajectory.
2. **Kernels are shard-blind.** A worker advances its replicate block
   through the same batched frontier kernels
   (:func:`repro.sampling.batch.sample_streams`), which are bit-equal
   to the sequential samplers per stream — the PR-1/PR-2 contract this
   layer inherits. Chunked variate windows preserve it because chunked
   ``Generator.random`` calls yield the identical value stream.
3. **Estimation rows share one code path.** Each replicate's rung rows
   come from the same ``_rung_rows`` / prefix-ladder code the serial
   sweep runs; rows are placed by absolute replicate index and reduced
   by the serial reducer. No float is added in a different order.
4. **Resume is exact.** Checkpointed rungs are replayed from disk while
   workers fold their integer multiplicity state forward
   (:meth:`repro.stats.prefix.IncrementalPrefixLadder.fold` — adding a
   draw's multiplicity is order-free integer arithmetic), so a resumed
   sweep finishes with the same bits as an uninterrupted one. The
   checkpoint directory is keyed by a manifest fingerprint (seeds,
   ladder, estimator knobs, graph/partition/sampler content), so a
   stale checkpoint can never contaminate a non-matching run.

``tests/runtime/`` enforces all four properties; the golden sweep
regression additionally pins the executor against the serial reference
for every registered design.
"""

from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.config import (
    RuntimeOptions,
    active_options,
    resolve_executor,
    runtime_options,
)
from repro.runtime.executor import ProcessSweepExecutor
from repro.runtime.sharedmem import SharedArrayPool

__all__ = [
    "ProcessSweepExecutor",
    "RuntimeOptions",
    "SharedArrayPool",
    "SweepCheckpoint",
    "active_options",
    "resolve_executor",
    "runtime_options",
]
