"""Manifest-keyed checkpoints for paper-scale sweeps and plans.

A paper-scale NRMSE sweep is hours of sampling plus a ladder of
estimation rungs. The executor checkpoints it at three grains inside a
per-sweep directory under the user's checkpoint root:

* ``samples.npz`` — the replicate draw matrices, written once after the
  sampling phase (a killed run resumes estimation without re-walking);
* ``observations.npz`` — the compressed ``observe_both`` measurement of
  every replicate (distinct-node tables, neighbor CSR histograms,
  induced edges), written once after the workers build their ladders.
  On resume the workers seed their prefix ladders straight from these
  arrays instead of re-running the per-replicate observation pass —
  at paper scale the dominant cost of restarting estimation;
* ``rung_<k>.npz`` — the per-replicate estimate rows of ladder rung
  ``k``, one file per completed rung (the resume grain the CLI's
  ``--resume`` promises: a run killed after rung ``k`` recomputes
  nothing up to and including ``k``);
* ``truth.npz`` — the truth category graph the sweep reduces against,
  written once. With the manifest and a full set of rung files this
  makes the sweep *replayable without its substrate*
  (:func:`repro.runtime.executor.replay_sweep`): a resumed plan
  rebuilds neither the world nor the sampler for a completed cell.

The directory name embeds a *manifest key*: a SHA-256 over everything
that determines the sweep's output bit-for-bit — design, replicate
seeds (or pre-drawn sample fingerprints), ladder, estimator knobs, and
content fingerprints of the graph, partition, and sampler state. Any
drift (different seed, edited graph, new sampler parameters) changes
the key, so a stale checkpoint can never leak rows into a non-matching
run; ``resume=False`` additionally clears a matching directory so a
fresh run never trusts old files.

One level up, :class:`PlanCheckpoint` keys a whole experiment plan
(:mod:`repro.experiments.plan`): each sweep cell checkpoints into its
own subdirectory of a plan-keyed directory, and completed cells record
their sweep manifest key in the plan's ``cells.json``, so a killed
``repro experiment fig6 --resume`` replays every completed cell from
its rung files — without rebuilding the cell's substrate — and resumes
computing at the first missing cell/rung.

All writes are atomic (temp file + ``os.replace``), so a kill mid-write
leaves either the previous state or the new one, never a torn file.
Every payload additionally embeds a SHA-256 checksum over its arrays;
readers verify it and *quarantine* any file that fails (truncated by a
full disk, bit-flipped, or hand-edited) by renaming it to
``<name>.corrupt`` — the affected rung/observations are then simply
recomputed, so a corrupt checkpoint degrades a resume instead of
crashing it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import threading
from pathlib import Path

import numpy as np

from repro.log import get_logger
from repro.runtime import faults, telemetry

__all__ = [
    "PlanCheckpoint",
    "SweepCheckpoint",
    "manifest_key",
    "read_rung",
    "read_truth",
]

_LOG = get_logger(__name__)

#: Bump when the on-disk layout changes; part of the manifest key.
#: Format 3 added embedded payload checksums, so format-2 files (no
#: checksum) land under different manifest keys and are never misread
#: as corrupt format-3 payloads.
CHECKPOINT_FORMAT = 3

#: The stack row fields stored per rung, in file order.
_ROW_FIELDS = ("sizes_induced", "sizes_star", "weights_induced", "weights_star")

#: Per-replicate array fields of a serialized ``observe_both`` pair.
#: The base fields are shared by both observation views (they are built
#: from one draw compression); the star CSR and induced edges complete
#: the pair. ``design``/``uniform`` ride along as 0-d arrays.
OBSERVATION_FIELDS = (
    "draw_to_distinct",
    "distinct_nodes",
    "distinct_categories",
    "distinct_multiplicities",
    "distinct_weights",
    "induced_edges",
    "distinct_degrees",
    "neighbor_indptr",
    "neighbor_categories",
    "neighbor_counts",
    "design",
    "uniform",
    "num_draws",
)


def manifest_key(manifest: dict) -> str:
    """Stable short key of a sweep manifest (sorted-key JSON, SHA-256)."""
    canonical = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _atomic_write(path: Path, writer) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        writer(handle)
    os.replace(tmp, path)


def _payload_checksum(arrays: "dict[str, np.ndarray]") -> str:
    """SHA-256 over a payload's arrays (name + dtype + shape + bytes).

    Field order is canonicalized by sorting names, so the checksum is a
    pure function of the payload contents — the same digest whether it
    is computed before a save or after a verified load.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        digest.update(name.encode())
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _quarantine(path: Path) -> None:
    """Move a corrupt payload aside as ``<name>.corrupt`` (or drop it).

    The rename preserves the evidence for postmortems while clearing
    the canonical name so the runtime recomputes and rewrites it; if
    even the rename fails the file is unlinked — a corrupt checkpoint
    must never be re-read as truth.
    """
    target = path.with_name(path.name + ".corrupt")
    _LOG.warning("quarantining corrupt checkpoint payload %s", path)
    telemetry.counter("checkpoint.quarantined", 1)
    telemetry.instant("checkpoint.quarantine", cat="checkpoint", file=str(path))
    try:
        os.replace(path, target)
    except OSError:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced cleanup
            pass


def _load_verified(path: Path) -> "dict[str, np.ndarray] | None":
    """Load an npz payload and verify its embedded checksum.

    Returns the payload's arrays (checksum field stripped), or ``None``
    after quarantining the file when it is unreadable, missing its
    checksum, or fails verification. A missing file is plain ``None``.
    """
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except Exception:
        _quarantine(path)
        return None
    stored = arrays.pop("checksum", None)
    if stored is None or str(stored) != _payload_checksum(arrays):
        _quarantine(path)
        return None
    return arrays


def _save_payload(
    path: Path, arrays: dict, kind: str, compressed: bool = False
) -> None:
    """Atomically write a checksummed npz payload of the given kind.

    ``kind`` (``rung``/``observations``/``samples``/``truth``) is the
    hook the fault harness matches ``corrupt-checkpoint:file=KIND``
    directives against: an armed fault truncates the file *after* the
    atomic write, modeling mid-write power loss or disk-full torn state
    that slipped past ``os.replace``.
    """
    arrays = {name: np.asarray(value) for name, value in arrays.items()}
    arrays["checksum"] = np.asarray(_payload_checksum(arrays))
    save = np.savez_compressed if compressed else np.savez
    with telemetry.span(
        "checkpoint.save", cat="checkpoint", kind=kind, file=path.name
    ):
        _atomic_write(path, lambda h: save(h, **arrays))
    telemetry.counter("checkpoint.saves", 1)
    if faults.take("corrupt-checkpoint", file=kind) is not None:
        data = path.read_bytes()
        path.write_bytes(data[: max(len(data) // 2, 1)])


def read_rung(path: Path, size: int) -> "tuple[np.ndarray, ...] | None":
    """Rows of one persisted rung file, or ``None`` if absent/mismatched.

    Module-level so :func:`repro.runtime.executor.replay_sweep` can
    read a recorded sweep directory without opening (and therefore
    re-fingerprinting) a :class:`SweepCheckpoint`. A corrupt file is
    quarantined; a *valid* file whose rung size disagrees with the
    requested ladder is left in place and simply not used.
    """
    arrays = _load_verified(path)
    if arrays is None:
        return None
    try:
        if int(arrays["size"]) != int(size):
            return None
        telemetry.counter("checkpoint.rungs_loaded", 1)
        return tuple(arrays[field] for field in _ROW_FIELDS)
    except (KeyError, ValueError):
        _quarantine(path)
        return None


def read_truth(directory: Path, names: tuple) -> "object | None":
    """The persisted truth category graph of a sweep directory.

    Rebuilds the :class:`~repro.graph.category_graph.CategoryGraph` a
    run reduced against from ``truth.npz`` (see
    :meth:`SweepCheckpoint.save_truth`); arrays round-trip npz exactly,
    so a replayed reduction is bit-identical to the original one.
    """
    from repro.graph.category_graph import CategoryGraph

    path = directory / "truth.npz"
    arrays = _load_verified(path)
    if arrays is None:
        return None
    try:
        return CategoryGraph(
            arrays["sizes"],
            arrays["weights"],
            names=names,
            cuts=arrays.get("cuts"),
        )
    except (KeyError, ValueError):
        _quarantine(path)
        return None


class SweepCheckpoint:
    """One sweep's checkpoint directory (see module docstring).

    Parameters
    ----------
    root:
        The user-facing checkpoint root; the sweep lives in
        ``root / f"sweep-{key}"``.
    manifest:
        JSON-serializable description of everything output-determining;
        stored alongside the data for inspection and validated against
        the directory name on resume.
    resume:
        When false, an existing matching directory is cleared first.
    """

    def __init__(self, root: "str | os.PathLike", manifest: dict, resume: bool):
        self.manifest = dict(manifest, format=CHECKPOINT_FORMAT)
        self.key = manifest_key(self.manifest)
        self.directory = Path(root) / f"sweep-{self.key}"
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / "manifest.json"
        if not resume:
            self._clear()
        elif manifest_path.exists():
            try:
                stored = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                stored = None
            if stored != self.manifest:  # pragma: no cover - key collision
                self._clear()
        payload = json.dumps(self.manifest, indent=2, sort_keys=True) + "\n"
        _atomic_write(manifest_path, lambda h: h.write(payload.encode()))

    def _clear(self) -> None:
        for pattern in ("*.npz", "*.tmp", "*.corrupt"):
            for stale in self.directory.glob(pattern):
                stale.unlink()

    # ------------------------------------------------------------------
    # Samples (written once, after the sampling phase)
    # ------------------------------------------------------------------
    @property
    def samples_path(self) -> Path:
        return self.directory / "samples.npz"

    def load_samples(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """The checkpointed ``(nodes, weights)`` matrices, if present."""
        arrays = _load_verified(self.samples_path)
        if arrays is None:
            return None
        try:
            return arrays["nodes"], arrays["weights"]
        except KeyError:
            _quarantine(self.samples_path)
            return None

    def save_samples(self, nodes: np.ndarray, weights: np.ndarray) -> None:
        _save_payload(
            self.samples_path,
            {"nodes": nodes, "weights": weights},
            kind="samples",
        )

    # ------------------------------------------------------------------
    # Observations (written once, after the ladder-build phase)
    # ------------------------------------------------------------------
    @property
    def observations_path(self) -> Path:
        return self.directory / "observations.npz"

    def load_observations(self, expected: int) -> "list[dict] | None":
        """Per-replicate observation field dicts, if present and complete.

        ``expected`` is the replication count; a file from a run with a
        different count (impossible under matching manifests, but cheap
        to verify) is ignored rather than trusted.
        """
        arrays = _load_verified(self.observations_path)
        if arrays is None:
            return None
        try:
            if int(arrays["count"]) != int(expected):
                return None
            return [
                {f: arrays[f"r{rep:04d}_{f}"] for f in OBSERVATION_FIELDS}
                for rep in range(expected)
            ]
        except (KeyError, ValueError):
            _quarantine(self.observations_path)
            return None

    def save_observations(self, observations: "list[dict]") -> None:
        """Persist per-replicate observation fields (compressed npz)."""
        arrays = {"count": np.int64(len(observations))}
        for rep, fields in enumerate(observations):
            for f in OBSERVATION_FIELDS:
                arrays[f"r{rep:04d}_{f}"] = np.asarray(fields[f])
        _save_payload(
            self.observations_path,
            arrays,
            kind="observations",
            compressed=True,
        )

    # ------------------------------------------------------------------
    # Truth arrays (written once; enable substrate-free replay)
    # ------------------------------------------------------------------
    @property
    def truth_path(self) -> Path:
        return self.directory / "truth.npz"

    def save_truth(self, truth) -> None:
        """Persist the truth category graph the sweep reduces against.

        Together with the manifest (sizes, replication count, category
        names, truth mode) and the rung files, this makes a completed
        sweep replayable by :func:`repro.runtime.executor.replay_sweep`
        without rebuilding its substrate. Written once — under a
        matching manifest the truth is identical by construction.
        """
        if self.truth_path.exists():
            return
        arrays = {"sizes": truth.sizes, "weights": truth.weights}
        if truth.cuts is not None:
            arrays["cuts"] = truth.cuts
        _save_payload(self.truth_path, arrays, kind="truth")

    # ------------------------------------------------------------------
    # Rung rows (one file per completed ladder rung)
    # ------------------------------------------------------------------
    def rung_path(self, rung_index: int) -> Path:
        return self.directory / f"rung_{rung_index:03d}.npz"

    def load_rung(
        self, rung_index: int, size: int
    ) -> "tuple[np.ndarray, ...] | None":
        """Rows of a completed rung, or ``None`` if absent/mismatched."""
        return read_rung(self.rung_path(rung_index), size)

    def save_rung(self, rung_index: int, size: int, rows: tuple) -> None:
        arrays = dict(zip(_ROW_FIELDS, rows), size=np.int64(size))
        _save_payload(self.rung_path(rung_index), arrays, kind="rung")

    def completed_rungs(self, sizes) -> list[int]:
        """Indices of rungs with a valid checkpoint file, given the ladder."""
        return [
            si
            for si, size in enumerate(sizes)
            if self.load_rung(si, int(size)) is not None
        ]


def _safe_cell_name(key: str) -> str:
    """Filesystem-safe directory name for a plan cell key.

    Sanitized names carry a short digest of the raw key so two keys
    that sanitize identically (``"a/b"`` vs ``"a-b"``) cannot share a
    directory.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", key) or "cell"
    if safe == key:
        return safe
    return f"{safe}-{hashlib.sha256(key.encode()).hexdigest()[:6]}"


class PlanCheckpoint:
    """One experiment plan's checkpoint directory.

    The plan layer above :class:`SweepCheckpoint`: the directory name
    keys the *plan* manifest (experiment id, cell keys, scale, master
    seed), and each sweep cell receives its own subdirectory to use as
    its sweep-checkpoint root — inside which the cell's executor run
    creates its own manifest-keyed sweep directory. Safety is therefore
    double-keyed: a stale plan cannot be resumed under a different cell
    grid, and a stale cell cannot leak rows into a sweep whose seeds,
    substrate, or estimator knobs drifted.

    Resume semantics fall out of the layering: cells whose sweeps are
    fully checkpointed replay from their rung files without spawning
    workers, and the first cell with a missing rung resumes computing
    exactly there. Completed cells additionally record their sweep
    manifest key in ``cells.json`` (:meth:`record_cell`), which is what
    lets a resumed plan replay a fully rung-cached cell via
    :func:`repro.runtime.executor.replay_sweep` without rebuilding its
    substrate just to re-derive that key.

    Thread-safe where it must be: the DAG scheduler completes cells
    concurrently, so the cell registry writes are serialized by a lock
    (cell *data* needs none — every cell owns a disjoint directory).
    """

    def __init__(self, root: "str | os.PathLike", manifest: dict, resume: bool):
        self.manifest = dict(manifest, format=CHECKPOINT_FORMAT)
        self.key = manifest_key(self.manifest)
        self._cells_lock = threading.Lock()
        self.directory = Path(root) / f"plan-{self.key}"
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / "plan.json"
        if not resume:
            self._clear()
        elif manifest_path.exists():
            try:
                stored = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                stored = None
            if stored != self.manifest:  # pragma: no cover - key collision
                self._clear()
        payload = json.dumps(self.manifest, indent=2, sort_keys=True) + "\n"
        _atomic_write(manifest_path, lambda h: h.write(payload.encode()))

    def _clear(self) -> None:
        for stale in self.directory.iterdir():
            if stale.is_dir():
                shutil.rmtree(stale)
            elif stale.name != "plan.json":
                stale.unlink()

    def cell_root(self, key: str) -> Path:
        """The sweep-checkpoint root directory for one plan cell."""
        return self.directory / _safe_cell_name(key)

    # ------------------------------------------------------------------
    # Completed-cell registry (substrate-free resume)
    # ------------------------------------------------------------------
    @property
    def cells_path(self) -> Path:
        return self.directory / "cells.json"

    def recorded_cells(self) -> dict[str, str]:
        """``{cell key: sweep manifest key}`` of completed cells."""
        try:
            mapping = json.loads(self.cells_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return mapping if isinstance(mapping, dict) else {}

    def record_cell(self, cell_key: str, sweep_key: str) -> None:
        """Record a completed cell's sweep manifest key (thread-safe).

        The recorded key is *trusted* by the substrate-free replay path
        (under this plan's own manifest key), so callers must record
        only after the sweep is fully checkpointed — a key always names
        a complete, replayable directory or replay falls back to the
        build-and-fingerprint path.
        """
        with self._cells_lock:
            mapping = self.recorded_cells()
            if mapping.get(cell_key) == sweep_key:
                return
            mapping[cell_key] = sweep_key
            payload = json.dumps(mapping, indent=2, sort_keys=True) + "\n"
            _atomic_write(
                self.cells_path, lambda h: h.write(payload.encode())
            )
