"""Ambient runtime configuration for the parallel sweep executor.

:func:`repro.stats.replication.run_nrmse_sweep` accepts executor knobs
per call, but the experiment drivers (Figs. 3/4/6, Table 2) never pass
them — they would have to thread ``workers=`` through every driver
signature. Instead the CLI (``repro run --workers 4 --resume``) and
tests install an ambient :class:`RuntimeOptions` via
:func:`runtime_options`, and ``run_nrmse_sweep`` consults it whenever a
knob was not given explicitly. Resolution order per knob:

1. the explicit ``run_nrmse_sweep`` argument;
2. the innermost active :func:`runtime_options` context;
3. the ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` / ``REPRO_CHECKPOINT`` /
   ``REPRO_RESUME`` / ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT``
   environment variables (how CI runs whole suites under the parallel
   path without touching any call site);
4. the serial in-process default (and, for the fault-tolerance knobs,
   a retry budget of :data:`DEFAULT_MAX_RETRIES` with no task timeout).

This module is deliberately dependency-free (stdlib only): the serial
sweep path imports it on every call and must stay light.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "RuntimeOptions",
    "active_options",
    "resolve_executor",
    "resolve_plan_scheduler",
    "runtime_options",
]

_TRUTHY = ("1", "true", "yes", "on")

#: Default shard retry budget of the failover path: attempts tolerated
#: per shard beyond the first failure before a structured
#: :class:`~repro.runtime.pool.WorkerFailure` surfaces.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class RuntimeOptions:
    """One layer of executor defaults (see module docstring)."""

    #: ``"serial"``, ``"process"``, or ``None`` (fall through).
    executor: str | None = None
    #: Worker processes for the process executor (``None``: cpu count).
    workers: int | None = None
    #: Checkpoint root directory (manifest-keyed subdirs per sweep).
    checkpoint: Path | None = None
    #: Continue a matching checkpoint instead of restarting it.
    #: Tri-state: ``None`` falls through to the next layer, so an inner
    #: scope can force a fresh run with an explicit ``False``.
    resume: bool | None = None
    #: How ``run_plan`` schedules a parallel plan's cells: ``"dag"``
    #: (dependency-aware overlap on the persistent worker pool) or
    #: ``"serial"`` (the one-cell-at-a-time reference loop).
    #: ``None`` falls through (default: ``"dag"``).
    plan_scheduler: str | None = None
    #: Shard retry budget of the failover path (``None``: fall
    #: through, ultimately :data:`DEFAULT_MAX_RETRIES`).
    max_retries: int | None = None
    #: Heartbeat deadline (seconds) distinguishing a stuck worker task
    #: from a slow one; ``None`` falls through (default: no timeout —
    #: only worker *death* triggers failover).
    task_timeout: float | None = None


#: Innermost-wins stack of ambient option layers.
_STACK: list[RuntimeOptions] = []


@contextmanager
def runtime_options(
    executor: str | None = None,
    workers: int | None = None,
    checkpoint: "str | os.PathLike | None" = None,
    resume: bool | None = None,
    plan_scheduler: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
):
    """Install ambient executor defaults for the enclosed block."""
    layer = RuntimeOptions(
        executor=executor,
        workers=None if workers is None else int(workers),
        checkpoint=None if checkpoint is None else Path(checkpoint),
        resume=None if resume is None else bool(resume),
        plan_scheduler=plan_scheduler,
        max_retries=None if max_retries is None else int(max_retries),
        task_timeout=None if task_timeout is None else float(task_timeout),
    )
    _STACK.append(layer)
    try:
        yield layer
    finally:
        _STACK.remove(layer)


def _env_number(name: str, cast, minimum):
    """Parse one numeric env knob, naming the variable on a bad value."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = cast(raw)
    except ValueError:
        from repro.exceptions import EstimationError

        kind = "an integer" if cast is int else "a number"
        raise EstimationError(
            f"{name} must be {kind}, got {raw!r}"
        ) from None
    if value < minimum:
        from repro.exceptions import EstimationError

        raise EstimationError(f"{name} must be >= {minimum}, got {value}")
    return value


def _env_options() -> RuntimeOptions:
    executor = os.environ.get("REPRO_EXECUTOR", "").strip() or None
    checkpoint_env = os.environ.get("REPRO_CHECKPOINT", "").strip()
    resume_env = os.environ.get("REPRO_RESUME", "").strip().lower()
    scheduler_env = os.environ.get("REPRO_PLAN_SCHEDULER", "").strip() or None
    return RuntimeOptions(
        executor=executor,
        workers=_env_number("REPRO_WORKERS", int, 1),
        checkpoint=Path(checkpoint_env) if checkpoint_env else None,
        resume=(resume_env in _TRUTHY) if resume_env else None,
        plan_scheduler=scheduler_env,
        max_retries=_env_number("REPRO_MAX_RETRIES", int, 0),
        task_timeout=_env_number("REPRO_TASK_TIMEOUT", float, 0.0),
    )


def active_options() -> RuntimeOptions:
    """The merged ambient options (context layers over environment)."""
    merged = _env_options()
    for layer in _STACK:
        merged = RuntimeOptions(
            executor=layer.executor if layer.executor is not None else merged.executor,
            workers=layer.workers if layer.workers is not None else merged.workers,
            checkpoint=(
                layer.checkpoint if layer.checkpoint is not None else merged.checkpoint
            ),
            resume=layer.resume if layer.resume is not None else merged.resume,
            plan_scheduler=(
                layer.plan_scheduler
                if layer.plan_scheduler is not None
                else merged.plan_scheduler
            ),
            max_retries=(
                layer.max_retries
                if layer.max_retries is not None
                else merged.max_retries
            ),
            task_timeout=(
                layer.task_timeout
                if layer.task_timeout is not None
                else merged.task_timeout
            ),
        )
    return merged


def resolve_plan_scheduler(scheduler: str | None) -> str:
    """Resolve a ``run_plan`` scheduler selection to ``"dag"``/``"serial"``.

    ``None`` defers to the ambient configuration
    (:func:`runtime_options`, then ``REPRO_PLAN_SCHEDULER``), and
    finally to ``"dag"`` — the DAG schedule is the default because its
    output is bit-identical to the serial cell loop by contract; the
    loop is kept as the reference twin (and for serial executors, which
    have no worker pool to overlap cells on).
    """
    if scheduler is None:
        scheduler = active_options().plan_scheduler
        if scheduler is None:
            scheduler = "dag"
    if scheduler not in ("dag", "serial"):
        from repro.exceptions import EstimationError

        raise EstimationError(
            f"unknown plan scheduler {scheduler!r}; use 'dag' or 'serial'"
        )
    return scheduler


def resolve_executor(
    executor: "str | object | None",
    workers: int | None,
    checkpoint: "str | os.PathLike | None",
    resume: bool | None,
):
    """Resolve ``run_nrmse_sweep`` executor arguments to an executor.

    Returns ``None`` for the serial in-process path, or an object with
    the executor ``run(...)`` interface. Strings name the built-in
    executors; anything else is assumed to *be* an executor instance
    and is returned unchanged — in that case the instance already
    carries its worker/checkpoint configuration, so combining it with
    the explicit knobs is rejected rather than silently ignored.
    """
    ambient = active_options()
    if executor is None:
        executor = ambient.executor
        if executor is None:
            # Nothing selected an executor explicitly, but the process
            # knobs were: asking for workers or a checkpoint *is* asking
            # for the process executor — running serial would silently
            # drop both.
            knobs_given = (
                workers is not None
                or checkpoint is not None
                or resume is not None
            )
            executor = "process" if knobs_given else "serial"
    if not isinstance(executor, str):
        if workers is not None or checkpoint is not None or resume is not None:
            from repro.exceptions import EstimationError

            raise EstimationError(
                "pass workers/checkpoint/resume either to the executor "
                "instance or as run_nrmse_sweep arguments, not both"
            )
        return executor
    if executor == "serial":
        return None
    if executor != "process":
        from repro.exceptions import EstimationError

        raise EstimationError(
            f"unknown executor {executor!r}; use 'serial' or 'process'"
        )
    from repro.runtime.executor import ProcessSweepExecutor

    return ProcessSweepExecutor(
        workers=workers if workers is not None else ambient.workers,
        checkpoint=checkpoint if checkpoint is not None else ambient.checkpoint,
        resume=(
            resume
            if resume is not None
            else (ambient.resume if ambient.resume is not None else False)
        ),
    )
