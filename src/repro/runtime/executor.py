"""Process-parallel sweep executor (see :mod:`repro.runtime`).

The executor turns one replicated NRMSE sweep into ``W`` shard jobs:
worker ``w`` owns a contiguous block of replicate indices, obtains its
replicates — reconstructing each RNG stream from its spawned seed and
advancing the block through the batched frontier kernels
(:mod:`repro.sampling.batch`), or slicing its block out of *pre-drawn*
samples (simulated crawls) published through shared memory — and steps
a per-replicate prefix ladder rung by rung under parent control. The
parent assembles rows into the same ``(R, K, C[, C])`` stacks the
serial path builds and reduces them with the identical code
(:func:`repro.stats.replication._reduce_stacks`), which is why the
output is bit-identical to the serial engine for any worker count, for
fresh-draw (:meth:`ProcessSweepExecutor.run`) and pre-drawn
(:meth:`ProcessSweepExecutor.run_from_samples`) sweeps alike.

Parent/worker protocol (one duplex pipe per worker)::

    worker -> ("sampled", nodes|None, weights|None)   after sampling
    worker -> ("observed", fields|None)               after the ladder
                                                      build (fields only
                                                      when the parent
                                                      asked to persist
                                                      observations)
    parent -> ("rung", si, size)                      compute rung si
    worker -> ("rows", si, (4 shard row arrays))
    parent -> ("skip", si, size)                      rung restored from
    worker -> ("skipped", si)                         a checkpoint; fold
                                                      state forward only
    parent -> ("stop",)                               shut down
    worker -> ("error", traceback)                    any time, fatal
    worker -> ("heartbeat",)                          liveness pulse
                                                      (only when a task
                                                      timeout is set);
                                                      never a reply —
                                                      recv skips it
    parent -> ("telemetry", -1, 0)                    flush telemetry
    worker -> ("telemetry", -1, payload|None)         drained span/counter
                                                      payload (only when
                                                      the parent enabled
                                                      telemetry for the
                                                      task; see
                                                      :mod:`repro.runtime.telemetry`)

A dead or hung worker is *not* fatal: the drive loop runs every shard
through a :class:`_FailoverDriver`, which re-dispatches a lost shard
onto a replacement worker (same payload, same seeds — the determinism
contract makes the replacement's rows byte-identical), bounded by
``max_retries`` before a structured
:class:`~repro.runtime.pool.WorkerFailure` surfaces.

Rung-by-rung control is what makes checkpoint/resume work: after every
gathered rung the parent persists that rung's rows, so a later run with
the same manifest replays finished rungs from disk (workers only fold
their multiplicity state forward — exact, integer arithmetic) and
resumes computing at the first missing rung. The ``observed`` phase
additionally persists each replicate's compressed ``observe_both``
measurement, so a resumed run seeds its ladders straight from disk
instead of re-running the per-replicate observation pass.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import queue
import signal
import threading
import traceback
import warnings
from io import BytesIO
from pathlib import Path

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.adjacency import Graph
from repro.graph.category_graph import true_category_graph
from repro.graph.partition import CategoryPartition
from repro.graph.union import UnionCSR
from repro.log import get_logger
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import faults, sharedmem, telemetry
from repro.runtime.checkpoint import SweepCheckpoint, read_rung, read_truth
from repro.runtime.config import DEFAULT_MAX_RETRIES, active_options
from repro.runtime.pool import (
    WorkerDied,
    WorkerFailure,
    WorkerHang,
    WorkerSpawnError,
    default_pool,
    default_workers,
    parse_reply,
    read_spill,
)
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import sample_streams
from repro.sampling.observation import (
    InducedObservation,
    StarObservation,
    observe_induced,
    observe_star,
)
from repro.stats.prefix import IncrementalPrefixLadder
from repro.stats.replication import (
    KINDS,
    SweepResult,
    _reduce_stacks,
    _rung_rows,
    _subset_rung,
)

__all__ = ["ProcessSweepExecutor", "replay_sweep", "serve_shard"]

_LOG = get_logger(__name__)


# ----------------------------------------------------------------------
# Sweep fingerprinting (manifest keys for checkpoints)
# ----------------------------------------------------------------------
def _array_digest(*arrays: np.ndarray) -> str:
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class _FingerprintPickler(pickle.Pickler):
    """Canonicalizing pickler for sampler fingerprints.

    Lazily-computed caches (``Graph._arc_sources``, a partition's arc
    label cache) make naive ``pickle.dumps`` bytes depend on what was
    *called* before fingerprinting, not on what the sampler *is*. This
    pickler replaces graphs, partitions, and raw arrays with content
    digests, so equal samplers always fingerprint equally and a resumed
    run finds its checkpoint.
    """

    def persistent_id(self, obj):
        if isinstance(obj, Graph):
            return ("graph", _array_digest(obj.indptr, obj.indices))
        if isinstance(obj, CategoryPartition):
            return ("partition", _array_digest(obj.labels), tuple(obj.names))
        if isinstance(obj, UnionCSR):
            return (
                "union",
                tuple(_array_digest(g.indptr, g.indices) for g in obj.graphs),
            )
        if type(obj) is np.ndarray and obj.dtype != object:
            return ("array", _array_digest(obj), obj.dtype.str, obj.shape)
        return None


def _sampler_fingerprint(sampler: Sampler) -> str:
    buffer = BytesIO()
    _FingerprintPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(sampler)
    return hashlib.sha256(buffer.getvalue()).hexdigest()


# ----------------------------------------------------------------------
# Observation round trips (checkpointed ladder state)
# ----------------------------------------------------------------------
def _observation_fields(
    induced: InducedObservation, star: StarObservation
) -> dict:
    """The npz-serializable field dict of one replicate's observations.

    Inverse of :func:`_observations_restore`; the field list is pinned
    by :data:`repro.runtime.checkpoint.OBSERVATION_FIELDS`.
    """
    return {
        "draw_to_distinct": star.draw_to_distinct,
        "distinct_nodes": star.distinct_nodes,
        "distinct_categories": star.distinct_categories,
        "distinct_multiplicities": star.distinct_multiplicities,
        "distinct_weights": star.distinct_weights,
        "induced_edges": induced.induced_edges,
        "distinct_degrees": star.distinct_degrees,
        "neighbor_indptr": star.neighbor_indptr,
        "neighbor_categories": star.neighbor_categories,
        "neighbor_counts": star.neighbor_counts,
        "design": np.asarray(star.design),
        "uniform": np.asarray(star.uniform),
        "num_draws": np.asarray(star.num_draws, dtype=np.int64),
    }


def _observations_restore(
    names: tuple, fields: dict
) -> tuple[InducedObservation, StarObservation]:
    """Rebuild one replicate's ``observe_both`` pair from stored fields.

    Arrays round-trip through npz exactly, so the rebuilt pair is
    field-for-field identical to the one ``observe_both`` computed —
    which is what keeps resumed ladders bit-identical to fresh ones.
    """
    base = {
        "names": names,
        "num_draws": int(fields["num_draws"]),
        "draw_to_distinct": fields["draw_to_distinct"],
        "distinct_nodes": fields["distinct_nodes"],
        "distinct_categories": fields["distinct_categories"],
        "distinct_multiplicities": fields["distinct_multiplicities"],
        "distinct_weights": fields["distinct_weights"],
        "uniform": bool(fields["uniform"]),
        "design": str(fields["design"]),
    }
    induced = InducedObservation(induced_edges=fields["induced_edges"], **base)
    star = StarObservation(
        distinct_degrees=fields["distinct_degrees"],
        neighbor_indptr=fields["neighbor_indptr"],
        neighbor_categories=fields["neighbor_categories"],
        neighbor_counts=fields["neighbor_counts"],
        **base,
    )
    return induced, star


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _ReplicateLadder:
    """One replicate's rung stepper inside a worker.

    Wraps either ladder engine behind ``rung``/``skip``: ``rung``
    computes a :class:`~repro.stats.prefix.RungEstimates` exactly as the
    serial ``_ladder_rungs`` generator would; ``skip`` advances the
    incremental multiplicity state past a checkpointed rung without
    re-deriving estimates (an exact integer fold, so later rungs are
    unaffected by the skip). ``observations`` seeds the ladder from a
    checkpoint-restored ``observe_both`` pair instead of re-measuring
    the sample.
    """

    def __init__(
        self,
        graph,
        partition,
        sample,
        ladder,
        n_pop,
        mean_degree_model,
        observations=None,
    ):
        self._mode = ladder
        self._n_pop = n_pop
        self._mean_degree_model = mean_degree_model
        if ladder == "incremental":
            self._state = IncrementalPrefixLadder(
                graph, partition, sample, observations=observations
            )
        elif observations is not None:
            # observe_both output is identical to the two separate
            # observe_* calls, so restored pairs serve the subset
            # reference ladder too.
            self._induced, self._star = observations
        else:
            self._star = observe_star(graph, partition, sample)
            self._induced = observe_induced(graph, partition, sample)

    @property
    def observations(self) -> tuple[InducedObservation, StarObservation]:
        """The full-sample (induced, star) pair backing this ladder."""
        if self._mode == "incremental":
            return self._state.observations
        return self._induced, self._star

    def rung(self, size: int):
        if self._mode == "incremental":
            return self._state.estimates(
                size, self._n_pop, mean_degree_model=self._mean_degree_model
            )
        return _subset_rung(
            self._star, self._induced, size, self._n_pop, self._mean_degree_model
        )

    def skip(self, size: int) -> None:
        if self._mode == "incremental":
            self._state.fold(size)


def serve_shard(payload: bytes, cfg: dict, recv, send) -> None:
    """Serve one shard task: obtain the owned replicates, then answer
    rung commands until told to stop.

    The transport is injected — ``recv()`` returns the next parent
    command tuple, ``send(*parts)`` replies — because the shard no
    longer owns a process: it runs as one task thread of a persistent
    pool worker (:mod:`repro.runtime.pool`), which multiplexes several
    tasks (cells) over one connection. Exceptions propagate to the
    caller, which reports them under this task's id.

    When the parent enabled telemetry for the task (``cfg["telemetry"]``)
    the shard records sample/observe/rung spans into a task-local
    collector and ships the drained payload back on the parent's
    ``("telemetry", ...)`` command — the collector is a local, never
    ambient state, so concurrent tasks of one pool worker and
    fork-inherited parent recorders cannot cross-contaminate.
    """
    collector, ship = telemetry.worker_collector(cfg.get("telemetry"))
    task_label = cfg.get("label") or cfg.get("mode", "shard")
    shard_ids = [int(i) for i in (cfg.get("shard") or ())]
    task_start = telemetry.now_us() if collector is not None else 0
    if collector is not None and shard_ids:
        collector.name_thread(
            f"shard r{shard_ids[0]}-r{shard_ids[-1]}"
        )
    world = sharedmem.loads(payload)
    graph, partition = world["graph"], world["partition"]
    if cfg["mode"] == "predrawn":
        if world["samples"] is not None:
            samples = world["samples"]
        else:
            # Observation-seeded resume: the restored pairs carry
            # everything the ladders need, samples were not shipped.
            samples = [None] * len(cfg["shard"])
        send("sampled", None, None)
    elif cfg["samples"] is not None:
        sampler = world["sampler"]
        nodes, weights = cfg["samples"]
        samples = [
            NodeSample(
                nodes[i],
                weights[i],
                design=sampler.design,
                uniform=sampler.uniform,
            )
            for i in range(len(cfg["seeds"]))
        ]
        send("sampled", None, None)
    elif world.get("observations") is not None:
        # Checkpoint-restored observations carry everything the
        # ladders need; re-walking the replicates would be wasted.
        samples = [None] * len(cfg["shard"])
        send("sampled", None, None)
    else:
        sampler = world["sampler"]
        streams = [np.random.default_rng(seed) for seed in cfg["seeds"]]
        with telemetry.span_in(
            collector, "sample", cat="worker",
            task=task_label, replicates=len(shard_ids), n=cfg["n"],
        ):
            batch = sample_streams(
                sampler, cfg["n"], streams, engine=cfg["engine"]
            )
            samples = batch.replicates()
        if ("kill", "sample") in {
            tuple(d) for d in (cfg.get("faults") or ())
        }:
            # Injected mid-sample death: SIGKILL after the kernel drew
            # the replicates but before the reply, so the parent sees
            # the sample phase unanswered, the work is lost, and the
            # replacement task must redraw from the original seeds.
            os.kill(os.getpid(), signal.SIGKILL)
        if cfg["want_samples"]:
            send("sampled", batch.nodes, batch.weights)
        else:
            send("sampled", None, None)
    restored = world.get("observations")
    names = tuple(partition.names)
    with telemetry.span_in(
        collector, "observe", cat="worker",
        task=task_label, replicates=len(samples),
        restored=restored is not None,
    ):
        ladders = [
            _ReplicateLadder(
                graph,
                partition,
                sample,
                cfg["ladder"],
                cfg["n_pop"],
                cfg["mean_degree_model"],
                observations=(
                    None
                    if restored is None
                    else _observations_restore(names, restored[local])
                ),
            )
            for local, sample in enumerate(samples)
        ]
    if cfg["want_observations"]:
        send(
            "observed",
            [_observation_fields(*ladder.observations) for ladder in ladders],
        )
    else:
        send("observed", None)
    truth_sizes = cfg["truth_sizes"]
    plugin = cfg["weight_size_plugin"]
    kill_rungs = {
        directive[1]
        for directive in map(tuple, cfg.get("faults") or ())
        if directive and directive[0] == "kill"
    }
    while True:
        message = recv()
        command = message[0]
        if command == "stop":
            break
        si, size = message[1], message[2]
        if command == "telemetry":
            # Flush request: close the task span, ship what this task
            # recorded (None under the in-process channel, where the
            # collector IS the ambient recorder and nothing crosses a
            # process boundary).
            if collector is not None:
                collector.add_span(
                    f"task:{task_label}", "worker",
                    task_start, telemetry.now_us() - task_start,
                    {"replicates": len(shard_ids)},
                )
            send("telemetry", si, collector.drain() if ship else None)
            continue
        if command == "rung" and si in kill_rungs:
            # Injected mid-rung death: SIGKILL before computing a row,
            # so the parent observes exactly what a segfault/OOM-kill
            # looks like — a clean EOF with the rung unanswered.
            os.kill(os.getpid(), signal.SIGKILL)
        if command == "skip":
            with telemetry.span_in(
                collector, "skip", cat="worker",
                task=task_label, rung=si, size=size,
            ):
                for ladder in ladders:
                    ladder.skip(size)
            send("skipped", si)
        elif command == "rung":
            with telemetry.span_in(
                collector, "rung", cat="worker",
                task=task_label, rung=si, size=size,
            ):
                rows = [
                    _rung_rows(ladder.rung(size), plugin, truth_sizes)
                    for ladder in ladders
                ]
            send(
                "rows",
                si,
                tuple(
                    np.stack([r[field] for r in rows]) for field in range(4)
                ),
            )
        else:  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unknown executor command {command!r}")


# ----------------------------------------------------------------------
# Substrate-free replay of fully rung-cached sweeps
# ----------------------------------------------------------------------
def replay_sweep(cell_root: "str | os.PathLike", sweep_key: str) -> "SweepResult | None":
    """Rebuild a fully rung-cached sweep's result straight from disk.

    ``cell_root`` is a cell's sweep-checkpoint root and ``sweep_key``
    the manifest key the plan checkpoint recorded for it
    (:meth:`repro.runtime.checkpoint.PlanCheckpoint.record_cell`). When
    the manifest, the persisted truth arrays, and every rung file are
    present, the result is assembled by the same ``_reduce_stacks``
    reduction an uninterrupted run ends with — bit-identical, because
    every input array round-trips npz exactly. Returns ``None`` on any
    gap; the caller then falls back to building the cell's substrate
    and running it normally (which re-fingerprints and re-validates the
    checkpoint the usual way).

    This is what lets a resumed plan skip reconstructing a completed
    cell's substrate entirely — at paper scale, a world rebuild per
    resume. The flip side is a deliberate trust boundary: without the
    substrate there is nothing to re-fingerprint, so the replay trusts
    the recorded key under its matching plan manifest (experiment id,
    cell grid, scale, seed). Drift those inputs cannot express —
    generator *code* edited between runs — is only caught on the
    build path; see the contract in :mod:`repro.runtime`.
    """
    directory = Path(cell_root) / f"sweep-{sweep_key}"
    manifest_path = directory / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    sizes = np.asarray(manifest.get("sizes", ()), dtype=np.int64)
    replications = int(manifest.get("replications", 0))
    categories = manifest.get("categories")
    if sizes.size == 0 or replications < 1 or not categories:
        return None
    truth = read_truth(directory, tuple(categories))
    if truth is None:
        return None
    r, c = replications, len(categories)
    size_stacks = {kind: np.full((r, len(sizes), c), np.nan) for kind in KINDS}
    weight_stacks = {
        kind: np.full((r, len(sizes), c, c), np.nan) for kind in KINDS
    }
    for si, size in enumerate(sizes):
        rows = read_rung(directory / f"rung_{si:03d}.npz", int(size))
        if rows is None or rows[0].shape != (r, c):
            return None
        ProcessSweepExecutor._fill(size_stacks, weight_stacks, si, rows)
    return _reduce_stacks(
        sizes,
        size_stacks,
        weight_stacks,
        truth,
        str(manifest.get("truth_mode", "exact")),
    )


# ----------------------------------------------------------------------
# Failover machinery
# ----------------------------------------------------------------------
class _InProcessChannel:
    """Last-rung degradation: serve a shard on a thread of the parent.

    Presents the :class:`~repro.runtime.pool.TaskChannel` surface
    (``send``/``recv``/``close``/``condemn``/``process``) over a pair of
    queues feeding :func:`serve_shard` in a daemon thread, so the drive
    loop is transport-blind. Used when the pool cannot supply a single
    worker (fork unavailable, respawns exhausted): slower, but the
    sweep completes with identical bytes — the shard computes the same
    rows from the same seeds wherever it runs. Fault directives and
    heartbeats are stripped from the cfg: there is no process to kill
    or time out, and an injected kill executed in-process would take
    the parent down with it.
    """

    process = None

    def __init__(self, payload: bytes, cfg: dict):
        cfg = {
            key: value
            for key, value in cfg.items()
            if key not in ("faults", "heartbeat")
        }
        self._commands: queue.SimpleQueue = queue.SimpleQueue()
        self._replies: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, args=(payload, cfg), daemon=True
        )
        self._thread.start()

    def _serve(self, payload, cfg) -> None:
        try:
            serve_shard(payload, cfg, self._commands.get, self._reply)
        except BaseException:
            self._replies.put(("error", traceback.format_exc()))

    def _reply(self, *parts) -> None:
        self._replies.put(parts)

    def send(self, kind: str, *parts) -> None:
        self._commands.put((kind,) + parts)

    def recv(
        self,
        expected: str,
        rung_index: "int | None" = None,
        timeout: "float | None" = None,
    ):
        # No timeout: an in-process shard cannot hang without the
        # parent being equally hung (they share the interpreter).
        return parse_reply(self._replies.get(), expected, rung_index)

    def condemn(self) -> None:  # pragma: no cover - never hung
        pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._commands.put(("stop",))
        self._thread.join(timeout=30)


#: "No phase reply stored yet" marker (``None`` is a legitimate value:
#: a shard that sampled nothing persistable replies ``(None, None)``).
_UNSET = object()


class _ShardRun:
    """Parent-side failover state of one shard's task.

    Everything needed to re-dispatch the shard from scratch on a
    replacement worker: the immutable payload/cfg (re-seeding is
    implicit — seeds live in the cfg, streams are rebuilt from them),
    the rungs already folded into the parent's stacks (replayed as
    exact ``skip`` folds), and the command in flight when the worker
    died (re-sent after the replay catches up).
    """

    __slots__ = (
        "slot",
        "shard",
        "payload",
        "cfg",
        "channel",
        "retries",
        "progress",
        "pending",
        "sampled",
        "observed",
        "phase",
    )

    def __init__(self, slot: int, shard, payload: bytes, cfg: dict):
        self.slot = slot
        self.shard = shard
        self.payload = payload
        self.cfg = cfg
        self.channel = None
        self.retries: list[dict] = []
        self.progress: list[tuple[int, int]] = []
        self.pending: "tuple | None" = None
        self.sampled = _UNSET
        self.observed = _UNSET
        self.phase = "open"


class _FailoverDriver:
    """Drives a sweep's shard tasks with retry, failover, degradation.

    Owns the leased worker handles and every :class:`_ShardRun`; the
    executor's rung loop talks to shards exclusively through
    :meth:`command`/:meth:`collect`, and any :class:`WorkerDied` (death
    or heartbeat timeout) surfacing there is converted into a bounded
    recovery: condemn if wedged, re-lease (respawning best-effort),
    reopen the shard's task with its original payload/cfg minus fault
    directives, replay its completed rungs as exact integer folds, and
    re-send the in-flight command. ``max_retries`` failed attempts for
    one shard raise a structured
    :class:`~repro.runtime.pool.WorkerFailure`. Deterministic task
    errors (``"error"`` replies) are *not* retried — they would fail
    identically every time.

    Degradation is monotonic and warned once per step: full worker
    count -> fewer workers (shards multiplex over the survivors) ->
    zero workers (every shard served by an in-process thread).
    """

    def __init__(self, pool, num_workers, max_retries, task_timeout):
        self.pool = pool
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.handles: list = []
        self.runs: list[_ShardRun] = []
        self.failover_log: list[dict] = []
        self._warned_fewer = False
        self._warned_serial = False
        self._lease(initial=True)

    # ------------------------------------------------------------------
    def _warn(self, message: str) -> None:
        # warnings.warn is the API contract (tests assert on it); the
        # logger and the trace marker are observability side channels.
        _LOG.warning(message)
        telemetry.instant("degrade", cat="failover", message=message)
        warnings.warn(message, RuntimeWarning, stacklevel=4)

    def _lease(self, initial: bool = False) -> None:
        """(Re-)lease live workers, degrading the target on failure."""
        try:
            self.handles = self.pool.lease_upto(self.num_workers)
        except (WorkerSpawnError, OSError) as error:
            self.handles = []
            if not self._warned_serial:
                self._warned_serial = True
                self._warn(
                    "worker pool unavailable "
                    f"({error}); degrading to in-process serial execution"
                )
            return
        if len(self.handles) < self.num_workers and not self._warned_fewer:
            self._warned_fewer = True
            self._warn(
                f"worker pool sustained only {len(self.handles)} of "
                f"{self.num_workers} requested workers; multiplexing "
                "shards over the survivors"
            )

    def _heartbeat_interval(self) -> "float | None":
        if self.task_timeout is None:
            return None
        return max(min(1.0, self.task_timeout / 4.0), 0.05)

    # ------------------------------------------------------------------
    def open(self, run: _ShardRun) -> None:
        """Open ``run``'s task on its worker (or in-process)."""
        self.runs.append(run)
        directives = (
            faults.take_worker_directives(run.slot) if self.handles else ()
        )
        self._open(run, directives)

    def _open(self, run: _ShardRun, directives=()) -> None:
        while True:
            if not self.handles:
                run.channel = _InProcessChannel(run.payload, run.cfg)
                return
            cfg = run.cfg
            extras = {}
            if directives:
                extras["faults"] = directives
            interval = self._heartbeat_interval()
            if interval is not None:
                extras["heartbeat"] = interval
            if extras:
                cfg = dict(cfg, **extras)
            handle = self.handles[run.slot % len(self.handles)]
            try:
                run.channel = self.pool.open_task(handle, run.payload, cfg)
                return
            except WorkerDied:
                # Died between lease and open: refresh and retry; the
                # open itself dispatched no work, so this does not
                # consume the shard's retry budget.
                directives = ()
                self._lease()

    # ------------------------------------------------------------------
    def command(self, run: _ShardRun, kind: str, si: int, size: int) -> None:
        """Send a rung-loop command, recovering from a dead worker."""
        run.pending = (kind, si, size)
        run.phase = f"send {kind} (rung {si})"
        try:
            run.channel.send(kind, si, size)
        except WorkerDied as failure:
            # Recovery replays the shard and re-sends the pending
            # command itself; nothing further to do here.
            self._recover(run, failure)

    def collect(self, run: _ShardRun, expected: str, si: "int | None" = None):
        """Receive one expected reply, recovering from death/timeouts."""
        run.phase = expected if si is None else f"{expected} (rung {si})"
        while True:
            # A recovery replay may already have collected this phase's
            # reply from the replacement task (same bytes, by the
            # determinism contract) — never recv it twice.
            if expected == "sampled" and run.sampled is not _UNSET:
                run.pending = None
                return run.sampled
            if expected == "observed" and run.observed is not _UNSET:
                run.pending = None
                return run.observed
            try:
                value = run.channel.recv(
                    expected, si, timeout=self.task_timeout
                )
            except WorkerDied as failure:
                self._recover(run, failure)
                continue
            if expected == "sampled":
                run.sampled = value
            elif expected == "observed":
                run.observed = value
            run.pending = None
            return value

    # ------------------------------------------------------------------
    def _recover(self, run: _ShardRun, failure: WorkerDied) -> None:
        """One recovery round: record, bound, condemn, re-open, replay."""
        pid = getattr(failure, "pid", None)
        if pid is None and run.channel is not None and run.channel.process:
            pid = run.channel.process.pid
        entry = {
            "pid": pid,
            "exitcode": getattr(failure, "exitcode", None),
            "phase": run.phase,
            "reason": str(failure),
            "spill": read_spill(pid),
            "timeout": isinstance(failure, WorkerHang),
        }
        run.retries.append(entry)
        self.failover_log.append(dict(entry, slot=run.slot))
        # Recorded at recovery time, so the event reaches the telemetry
        # summary on every path alike — fresh sweeps, pre-drawn sweeps,
        # and plan cells — instead of only where a caller thinks to
        # read executor.failover_log.
        _LOG.warning(
            "shard %d failover: %s (pid=%s, phase=%s, attempt %d/%d)",
            run.slot, entry["reason"], pid, run.phase,
            len(run.retries), self.max_retries + 1,
        )
        telemetry.instant(
            "failover", cat="failover",
            slot=run.slot, pid=pid, exitcode=entry["exitcode"],
            phase=run.phase, timeout=entry["timeout"],
            attempt=len(run.retries),
        )
        telemetry.counter("failover.recoveries", 1)
        if len(run.retries) > self.max_retries:
            raise WorkerFailure(run.slot, run.shard, run.retries) from failure
        if run.channel is not None:
            if isinstance(failure, WorkerHang):
                # The worker may still be running (wedged): make sure it
                # is gone before a lease could hand it out again.
                run.channel.condemn()
            run.channel.close()
            run.channel = None
        self._lease()
        # Replacement attempts draw fresh directives from the fault
        # plan: budgets decrement at issue time, so an armed
        # ``times=N`` fault strikes at most N attempts (replacements
        # included — how the exhaustion tests drain a retry budget)
        # and recovery provably converges once the budget runs dry.
        self._open(
            run,
            faults.take_worker_directives(run.slot) if self.handles else (),
        )
        try:
            self._replay(run)
        except WorkerDied as next_failure:
            self._recover(run, next_failure)

    def _replay(self, run: _ShardRun) -> None:
        """Fast-forward a freshly opened replacement task.

        Deterministic by the runtime contract: the replacement samples
        the same replicates from the same seeds (or re-restores the
        same checkpointed observations), rebuilds identical ladders,
        and ``skip``-folds past every rung the parent already holds —
        the same exact integer fold a checkpoint resume uses — so the
        rows it will produce for the remaining rungs are byte-identical
        to what the lost worker would have sent.
        """
        run.sampled = run.channel.recv(
            "sampled", timeout=self.task_timeout
        )
        run.observed = run.channel.recv(
            "observed", timeout=self.task_timeout
        )
        for si, size in run.progress:
            run.channel.send("skip", si, size)
            run.channel.recv("skipped", si, timeout=self.task_timeout)
        if run.pending is not None:
            run.channel.send(*run.pending)

    # ------------------------------------------------------------------
    def close_all(self) -> None:
        for run in self.runs:
            if run.channel is not None:
                run.channel.close()


class ProcessSweepExecutor:
    """Shared-memory multi-process sweep executor.

    Sweeps run on a **persistent** worker pool
    (:mod:`repro.runtime.pool`): by default the process-wide pool, so
    back-to-back sweeps — the cells of one plan, or repeated
    ``repro run --workers N`` sweeps in a session — reuse live workers
    instead of paying spawn cost per sweep. The DAG plan scheduler
    passes an explicit ``pool`` and runs several cells' shard tasks on
    it concurrently.

    Parameters
    ----------
    workers:
        Shard count (default: CPU count). Clamped to the replication
        count; the shard assignment never influences results, only
        wall-clock.
    checkpoint:
        Checkpoint *root* directory. Each sweep writes into a
        manifest-keyed subdirectory (see
        :mod:`repro.runtime.checkpoint`); ``None`` disables
        checkpointing.
    resume:
        Continue a matching checkpoint (skip its sampling phase and
        completed rungs) instead of clearing it.
    mp_context:
        A ``multiprocessing`` context; defaults to ``fork`` where
        available (workers then inherit the parent's imports) and
        ``spawn`` elsewhere. Selects which default pool serves the
        sweep when no explicit ``pool`` is given.
    pool:
        A :class:`~repro.runtime.pool.PersistentWorkerPool` to run on;
        ``None`` uses the process-wide default pool for ``mp_context``.
    max_retries:
        Failed attempts tolerated per shard beyond the first before a
        structured :class:`~repro.runtime.pool.WorkerFailure` surfaces.
        ``None`` defers to the ambient configuration
        (``REPRO_MAX_RETRIES``; default 2).
    task_timeout:
        Heartbeat deadline in seconds distinguishing a stuck task from
        a slow one (stuck tasks escalate through the retry path).
        ``None`` defers to the ambient configuration
        (``REPRO_TASK_TIMEOUT``; default: no timeout).
    label:
        Display label for telemetry spans (the plan scheduler passes
        its cell key, so worker task spans read ``task:RW09``).
        Never touches results.

    Attributes
    ----------
    last_checkpoint:
        The :class:`~repro.runtime.checkpoint.SweepCheckpoint` opened
        by the most recent run on this instance (``None`` without a
        checkpoint root). The plan scheduler reads its manifest key to
        record completed cells for substrate-free resume.
    failover_log:
        One dict per recovery event of the most recent run (shard
        slot, pid, exitcode, phase, reason, spill, timeout flag) —
        empty after an undisturbed run. Diagnostics only; the result
        arrays are byte-identical either way.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        checkpoint: "str | os.PathLike | None" = None,
        resume: bool = False,
        mp_context=None,
        pool=None,
        max_retries: int | None = None,
        task_timeout: float | None = None,
        label: str | None = None,
    ):
        if workers is not None and workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers is not None else default_workers()
        self.checkpoint_root = None if checkpoint is None else Path(checkpoint)
        self.resume = bool(resume)
        self.label = label
        self._mp_context = mp_context
        self._pool = pool
        self.last_checkpoint = None
        self.failover_log: list[dict] = []
        ambient = active_options()
        if max_retries is None:
            max_retries = ambient.max_retries
        self.max_retries = (
            DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries)
        )
        if self.max_retries < 0:
            raise EstimationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if task_timeout is None:
            task_timeout = ambient.task_timeout
        self.task_timeout = (
            float(task_timeout)
            if task_timeout is not None and float(task_timeout) > 0
            else None
        )

    # ------------------------------------------------------------------
    def run(
        self,
        graph,
        partition,
        sampler: Sampler,
        sizes: np.ndarray,
        replications: int,
        rng,
        *,
        engine: str = "batched",
        ladder: str = "incremental",
        weight_size_plugin: str = "star",
        mean_degree_model: str = "per-category",
    ) -> SweepResult:
        """Run one sweep; same contract as the serial ``run_nrmse_sweep``."""
        if replications < 1:
            raise EstimationError(
                f"replications must be positive, got {replications}"
            )
        if engine not in ("batched", "sequential"):
            raise EstimationError(
                f"unknown engine {engine!r}; use 'batched' or 'sequential'"
            )
        if ladder not in ("incremental", "subset"):
            raise EstimationError(
                f"unknown ladder {ladder!r}; use 'incremental' or 'subset'"
            )
        if weight_size_plugin not in ("star", "induced", "true"):
            raise EstimationError(
                f"unknown weight_size_plugin {weight_size_plugin!r}"
            )
        if mean_degree_model not in ("per-category", "global"):
            raise EstimationError(
                f"unknown mean_degree_model {mean_degree_model!r}; "
                "use 'per-category' or 'global'"
            )
        sizes = np.asarray(sizes, dtype=np.int64)
        n = int(sizes[-1])
        seeds = spawn_seeds(ensure_rng(rng), replications)
        truth = true_category_graph(graph, partition)
        checkpoint = self._open_checkpoint(
            graph, partition, sampler, sizes, replications, seeds,
            engine, ladder, weight_size_plugin, mean_degree_model,
        )
        self.last_checkpoint = checkpoint
        if checkpoint is not None:
            checkpoint.save_truth(truth)
        cached_rungs = self._load_cached_rungs(checkpoint, sizes)
        fully_cached = len(cached_rungs) == len(sizes)
        # Resume restores the cheapest sufficient state: a
        # fully-checkpointed sweep replays from its rung files alone
        # (_drive early-returns before spawning workers); restored
        # observations seed the ladders directly, making the draw
        # matrices redundant (workers then skip sampling outright); the
        # samples are decompressed only as the fallback when the
        # observations are absent, and then the workers rebuild — and
        # re-persist — the observation state from them.
        observations = (
            checkpoint.load_observations(replications)
            if checkpoint is not None and self.resume and not fully_cached
            else None
        )
        saved = (
            checkpoint.load_samples()
            if checkpoint
            and self.resume
            and not fully_cached
            and observations is None
            else None
        )
        if saved is not None and saved[0].shape != (replications, n):
            saved = None

        persist_samples = (
            checkpoint is not None and saved is None and observations is None
        )

        def make_cfg(shard):
            return {
                "mode": "fresh",
                "shard": [int(i) for i in shard],
                "seeds": [seeds[i] for i in shard],
                "n": n,
                "engine": engine,
                "want_samples": persist_samples,
                "samples": (
                    None
                    if saved is None
                    else (saved[0][shard], saved[1][shard])
                ),
            }

        return self._drive(
            graph,
            partition,
            sizes,
            replications,
            truth,
            "exact",
            ladder,
            weight_size_plugin,
            mean_degree_model,
            checkpoint,
            observations,
            cached_rungs,
            make_payload=lambda shard: {"sampler": sampler},
            make_cfg=make_cfg,
            persist_samples=persist_samples,
        )

    # ------------------------------------------------------------------
    def run_from_samples(
        self,
        graph,
        partition,
        samples,
        sizes: np.ndarray,
        *,
        weight_size_plugin: str = "star",
        mean_degree_model: str = "per-category",
        truth_mode: str = "exact",
        ladder: str = "incremental",
    ) -> SweepResult:
        """Run one pre-drawn sweep; same contract as the serial
        ``run_nrmse_sweep_from_samples``.

        The sampling phase is moot — the replicate samples (simulated
        crawls, recorded walks) already exist — so the executor ships
        them to the workers through shared memory and shards only the
        ladder/estimation phase. Rows are placed by absolute replicate
        index and reduced by the serial reducer, so the result is
        bit-identical to the serial path for any worker count.
        """
        samples = list(samples)
        replications = len(samples)
        if replications < 1:
            raise EstimationError("need at least one replicate sample")
        if ladder not in ("incremental", "subset"):
            raise EstimationError(
                f"unknown ladder {ladder!r}; use 'incremental' or 'subset'"
            )
        if weight_size_plugin not in ("star", "induced", "true"):
            raise EstimationError(
                f"unknown weight_size_plugin {weight_size_plugin!r}"
            )
        if mean_degree_model not in ("per-category", "global"):
            raise EstimationError(
                f"unknown mean_degree_model {mean_degree_model!r}; "
                "use 'per-category' or 'global'"
            )
        if truth_mode not in ("exact", "cross-sample"):
            raise EstimationError(f"unknown truth_mode {truth_mode!r}")
        sizes = np.asarray(sizes, dtype=np.int64)
        truth = true_category_graph(graph, partition)
        checkpoint = self._open_predrawn_checkpoint(
            graph, partition, samples, sizes,
            ladder, weight_size_plugin, mean_degree_model, truth_mode,
        )
        self.last_checkpoint = checkpoint
        if checkpoint is not None:
            checkpoint.save_truth(truth)
        cached_rungs = self._load_cached_rungs(checkpoint, sizes)
        observations = (
            checkpoint.load_observations(replications)
            if checkpoint is not None
            and self.resume
            and len(cached_rungs) < len(sizes)
            else None
        )

        def make_cfg(shard):
            return {
                "mode": "predrawn",
                "shard": [int(i) for i in shard],
            }

        def make_payload(shard):
            # Observation-seeded resume: the ladders never touch the
            # samples, so skip shipping them entirely.
            if observations is not None:
                return {"samples": None}
            return {"samples": [samples[i] for i in shard]}

        return self._drive(
            graph,
            partition,
            sizes,
            replications,
            truth,
            truth_mode,
            ladder,
            weight_size_plugin,
            mean_degree_model,
            checkpoint,
            observations,
            cached_rungs,
            make_payload=make_payload,
            make_cfg=make_cfg,
            persist_samples=False,
        )

    # ------------------------------------------------------------------
    def _drive(
        self,
        graph,
        partition,
        sizes: np.ndarray,
        replications: int,
        truth,
        truth_mode: str,
        ladder: str,
        weight_size_plugin: str,
        mean_degree_model: str,
        checkpoint: "SweepCheckpoint | None",
        observations: "list[dict] | None",
        cached_rungs: dict,
        *,
        make_payload,
        make_cfg,
        persist_samples: bool,
    ) -> SweepResult:
        """Spawn shard workers and drive the rung loop (both modes)."""
        # Reset per run: a fully-cached replay below never constructs a
        # driver, and without this a previous run's recovery log would
        # survive on the instance as stale diagnostics.
        self.failover_log = []
        sweep_label = self.label or "sweep"
        r, k, c = replications, len(sizes), partition.num_categories
        size_stacks = {kind: np.full((r, k, c), np.nan) for kind in KINDS}
        weight_stacks = {kind: np.full((r, k, c, c), np.nan) for kind in KINDS}
        if len(cached_rungs) == len(sizes):
            # Every rung is already checkpointed: assemble the result
            # straight from disk — no workers, no resampling, no ladder
            # rebuilds (a finished sweep re-resumed is a pure replay).
            telemetry.counter("checkpoint.sweep_cache_hits", 1)
            with telemetry.span(
                "sweep.replay", cat="driver", task=sweep_label, rungs=k
            ):
                for si in range(len(sizes)):
                    self._fill(
                        size_stacks, weight_stacks, si, cached_rungs[si]
                    )
                return _reduce_stacks(
                    sizes, size_stacks, weight_stacks, truth, truth_mode
                )

        num_workers = min(self.workers, replications)
        shards = np.array_split(np.arange(replications), num_workers)
        want_observations = checkpoint is not None and observations is None
        worker_pool = self._pool or default_pool(self._mp_context)

        # Inside a plan run the ambient pool already holds the plan's
        # named resources (pre-published once per build by run_plan), so
        # arrays shared between cells — the Facebook world's graph and
        # crawl samples behind every fig6 cell, a fig4 dataset stand-in
        # behind its three design cells — resolve to existing tokens and
        # cross the process boundary once for the whole plan. Everything
        # else (cell-local graphs and samplers, checkpoint-restored
        # observations) publishes through a run-local pool whose blocks
        # are unlinked — and *retired* from the persistent workers — as
        # soon as this run's tasks have closed, so plan-wide
        # shared-memory footprint stays at the resources plus the cells
        # currently in flight.
        ambient = sharedmem.active_pool()
        with faults.env_scope(), sharedmem.SharedArrayPool() as local_pool:
            publish_pool = (
                sharedmem.PoolChain(ambient, local_pool)
                if ambient is not None
                else local_pool
            )
            driver = _FailoverDriver(
                worker_pool, num_workers, self.max_retries, self.task_timeout
            )
            self.failover_log = driver.failover_log
            recorder = telemetry.recorder()
            try:
                with telemetry.span(
                    "dispatch", cat="driver", task=sweep_label,
                    shards=num_workers, replications=replications,
                ):
                    for slot, shard in enumerate(shards):
                        # One payload per shard, sliced to what that worker
                        # reads; large arrays still publish exactly once
                        # (the pool deduplicates by identity across shards,
                        # and the ambient pool across a plan's cells).
                        payload = sharedmem.dumps(
                            {
                                "graph": graph,
                                "partition": partition,
                                "observations": (
                                    None
                                    if observations is None
                                    else [observations[i] for i in shard]
                                ),
                                **make_payload(shard),
                            },
                            publish_pool,
                        )
                        cfg = {
                            "n_pop": graph.num_nodes,
                            "ladder": ladder,
                            "weight_size_plugin": weight_size_plugin,
                            "mean_degree_model": mean_degree_model,
                            "truth_sizes": truth.sizes,
                            "want_observations": want_observations,
                            **make_cfg(shard),
                        }
                        if recorder is not None:
                            cfg["telemetry"] = True
                            cfg["label"] = sweep_label
                        driver.open(_ShardRun(slot, shard, payload, cfg))

                runs = driver.runs
                with telemetry.span(
                    "phase.sample", cat="driver", task=sweep_label
                ):
                    sampled = [
                        driver.collect(run, "sampled") for run in runs
                    ]
                    if persist_samples and checkpoint is not None:
                        nodes = np.concatenate([part[0] for part in sampled])
                        node_weights = np.concatenate(
                            [part[1] for part in sampled]
                        )
                        checkpoint.save_samples(nodes, node_weights)
                with telemetry.span(
                    "phase.observe", cat="driver", task=sweep_label
                ):
                    observed = [
                        driver.collect(run, "observed") for run in runs
                    ]
                    if want_observations and checkpoint is not None:
                        checkpoint.save_observations(
                            [
                                fields
                                for shard_obs in observed
                                for fields in shard_obs
                            ]
                        )
                for si, size in enumerate(sizes):
                    size = int(size)
                    cached = cached_rungs.get(si)
                    with telemetry.span(
                        "rung", cat="driver", task=sweep_label,
                        rung=si, size=size, cached=cached is not None,
                    ):
                        if cached is not None:
                            for run in runs:
                                driver.command(run, "skip", si, size)
                            for run in runs:
                                driver.collect(run, "skipped", si)
                            self._fill(size_stacks, weight_stacks, si, cached)
                        else:
                            for run in runs:
                                driver.command(run, "rung", si, size)
                            rows = [
                                driver.collect(run, "rows", si) for run in runs
                            ]
                            merged = tuple(
                                np.concatenate(
                                    [shard_rows[f] for shard_rows in rows]
                                )
                                for f in range(4)
                            )
                            self._fill(size_stacks, weight_stacks, si, merged)
                            if checkpoint is not None:
                                checkpoint.save_rung(si, size, merged)
                    # Folded into every live ladder — what a replacement
                    # task must skip past to catch up.
                    for run in runs:
                        run.progress.append((si, size))
                if recorder is not None:
                    # Flush each task's recorded events back over the
                    # reply channel (best-effort diagnostics: a shard
                    # that died kept its history; its replacement ships
                    # what the replay re-recorded).
                    for run in runs:
                        driver.command(run, "telemetry", -1, 0)
                    for run in runs:
                        recorder.merge_remote(
                            driver.collect(run, "telemetry", -1)
                        )
            finally:
                driver.close_all()
                # Closing is ordered before retirement on each worker's
                # connection, so by the time a worker releases these
                # blocks its tasks (and their array views) are gone.
                worker_pool.retire(driver.handles, local_pool.block_names)
                # In-process fallback shards attach blocks in *this*
                # process; drop those cached views before the pool
                # unlinks the files (harmless when nothing attached).
                sharedmem.release(local_pool.block_names)

        return _reduce_stacks(
            sizes, size_stacks, weight_stacks, truth, truth_mode
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _open_checkpoint(
        self, graph, partition, sampler, sizes, replications, seeds,
        engine, ladder, weight_size_plugin, mean_degree_model,
    ) -> "SweepCheckpoint | None":
        if self.checkpoint_root is None:
            return None
        manifest = {
            "mode": "fresh",
            "design": sampler.design,
            "replications": int(replications),
            "sizes": [int(s) for s in sizes],
            "seeds": seeds,
            "engine": engine,
            "ladder": ladder,
            "weight_size_plugin": weight_size_plugin,
            "mean_degree_model": mean_degree_model,
            "graph": _array_digest(graph.indptr, graph.indices),
            "partition": _array_digest(partition.labels),
            "categories": list(partition.names),
            "sampler": _sampler_fingerprint(sampler),
        }
        return SweepCheckpoint(self.checkpoint_root, manifest, self.resume)

    def _load_cached_rungs(self, checkpoint, sizes) -> dict:
        """Every completed rung's rows, loaded once up front.

        The rung loop replays from this dict instead of re-reading the
        files; callers use its coverage to decide whether the heavier
        samples/observations state needs loading at all.
        """
        if not (checkpoint and self.resume):
            return {}
        return {
            si: rows
            for si, size in enumerate(sizes)
            if (rows := checkpoint.load_rung(si, int(size))) is not None
        }

    def _open_predrawn_checkpoint(
        self, graph, partition, samples, sizes,
        ladder, weight_size_plugin, mean_degree_model, truth_mode,
    ) -> "SweepCheckpoint | None":
        if self.checkpoint_root is None:
            return None
        manifest = {
            "mode": "predrawn",
            "replications": len(samples),
            "sizes": [int(s) for s in sizes],
            "ladder": ladder,
            "weight_size_plugin": weight_size_plugin,
            "mean_degree_model": mean_degree_model,
            "truth_mode": truth_mode,
            "graph": _array_digest(graph.indptr, graph.indices),
            "partition": _array_digest(partition.labels),
            "categories": list(partition.names),
            # Content fingerprints of every replicate crawl: a plan
            # resumed against regenerated-but-identical walks matches,
            # while any drift in a single draw changes the key.
            "samples": [
                [_array_digest(s.nodes, s.weights), s.design, bool(s.uniform)]
                for s in samples
            ],
        }
        return SweepCheckpoint(self.checkpoint_root, manifest, self.resume)

    @staticmethod
    def _fill(size_stacks, weight_stacks, si, rows) -> None:
        size_stacks["induced"][:, si] = rows[0]
        size_stacks["star"][:, si] = rows[1]
        weight_stacks["induced"][:, si] = rows[2]
        weight_stacks["star"][:, si] = rows[3]
