"""Process-parallel sweep executor (see :mod:`repro.runtime`).

The executor turns one replicated NRMSE sweep into ``W`` shard jobs:
worker ``w`` owns a contiguous block of replicate indices, reconstructs
each replicate's RNG stream from its spawned seed, advances its block
through the batched frontier kernels (:mod:`repro.sampling.batch`), and
steps a per-replicate prefix ladder rung by rung under parent control.
The parent assembles rows into the same ``(R, K, C[, C])`` stacks the
serial path builds and reduces them with the identical code
(:func:`repro.stats.replication._reduce_stacks`), which is why the
output is bit-identical to the serial engine for any worker count.

Parent/worker protocol (one duplex pipe per worker)::

    worker -> ("sampled", nodes|None, weights|None)   after sampling
    parent -> ("rung", si, size)                      compute rung si
    worker -> ("rows", si, (4 shard row arrays))
    parent -> ("skip", si, size)                      rung restored from
    worker -> ("skipped", si)                         a checkpoint; fold
                                                      state forward only
    parent -> ("stop",)                               shut down
    worker -> ("error", traceback)                    any time, fatal

Rung-by-rung control is what makes checkpoint/resume work: after every
gathered rung the parent persists that rung's rows, so a later run with
the same manifest replays finished rungs from disk (workers only fold
their multiplicity state forward — exact, integer arithmetic) and
resumes computing at the first missing rung.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import traceback
from io import BytesIO
from pathlib import Path

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.adjacency import Graph
from repro.graph.category_graph import true_category_graph
from repro.graph.partition import CategoryPartition
from repro.graph.union import UnionCSR
from repro.rng import ensure_rng, spawn_seeds
from repro.runtime import sharedmem
from repro.runtime.checkpoint import SweepCheckpoint
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import sample_streams
from repro.sampling.observation import observe_induced, observe_star
from repro.stats.prefix import IncrementalPrefixLadder
from repro.stats.replication import (
    KINDS,
    SweepResult,
    _reduce_stacks,
    _rung_rows,
    _subset_rung,
)

__all__ = ["ProcessSweepExecutor"]


# ----------------------------------------------------------------------
# Sweep fingerprinting (manifest keys for checkpoints)
# ----------------------------------------------------------------------
def _array_digest(*arrays: np.ndarray) -> str:
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class _FingerprintPickler(pickle.Pickler):
    """Canonicalizing pickler for sampler fingerprints.

    Lazily-computed caches (``Graph._arc_sources``, a partition's arc
    label cache) make naive ``pickle.dumps`` bytes depend on what was
    *called* before fingerprinting, not on what the sampler *is*. This
    pickler replaces graphs, partitions, and raw arrays with content
    digests, so equal samplers always fingerprint equally and a resumed
    run finds its checkpoint.
    """

    def persistent_id(self, obj):
        if isinstance(obj, Graph):
            return ("graph", _array_digest(obj.indptr, obj.indices))
        if isinstance(obj, CategoryPartition):
            return ("partition", _array_digest(obj.labels), tuple(obj.names))
        if isinstance(obj, UnionCSR):
            return (
                "union",
                tuple(_array_digest(g.indptr, g.indices) for g in obj.graphs),
            )
        if type(obj) is np.ndarray and obj.dtype != object:
            return ("array", _array_digest(obj), obj.dtype.str, obj.shape)
        return None


def _sampler_fingerprint(sampler: Sampler) -> str:
    buffer = BytesIO()
    _FingerprintPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(sampler)
    return hashlib.sha256(buffer.getvalue()).hexdigest()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _ReplicateLadder:
    """One replicate's rung stepper inside a worker.

    Wraps either ladder engine behind ``rung``/``skip``: ``rung``
    computes a :class:`~repro.stats.prefix.RungEstimates` exactly as the
    serial ``_ladder_rungs`` generator would; ``skip`` advances the
    incremental multiplicity state past a checkpointed rung without
    re-deriving estimates (an exact integer fold, so later rungs are
    unaffected by the skip).
    """

    def __init__(self, graph, partition, sample, ladder, n_pop, mean_degree_model):
        self._mode = ladder
        self._n_pop = n_pop
        self._mean_degree_model = mean_degree_model
        if ladder == "incremental":
            self._state = IncrementalPrefixLadder(graph, partition, sample)
        else:
            self._star = observe_star(graph, partition, sample)
            self._induced = observe_induced(graph, partition, sample)

    def rung(self, size: int):
        if self._mode == "incremental":
            return self._state.estimates(
                size, self._n_pop, mean_degree_model=self._mean_degree_model
            )
        return _subset_rung(
            self._star, self._induced, size, self._n_pop, self._mean_degree_model
        )

    def skip(self, size: int) -> None:
        if self._mode == "incremental":
            self._state.fold(size)


def _worker_main(conn, payload: bytes, cfg: dict) -> None:
    """Shard worker: sample the owned replicates, then serve rung commands."""
    try:
        world = sharedmem.loads(payload)
        graph, partition, sampler = (
            world["graph"],
            world["partition"],
            world["sampler"],
        )
        if cfg["samples"] is not None:
            nodes, weights = cfg["samples"]
            samples = [
                NodeSample(
                    nodes[i],
                    weights[i],
                    design=sampler.design,
                    uniform=sampler.uniform,
                )
                for i in range(len(cfg["seeds"]))
            ]
            conn.send(("sampled", None, None))
        else:
            streams = [np.random.default_rng(seed) for seed in cfg["seeds"]]
            batch = sample_streams(
                sampler, cfg["n"], streams, engine=cfg["engine"]
            )
            samples = batch.replicates()
            if cfg["want_samples"]:
                conn.send(("sampled", batch.nodes, batch.weights))
            else:
                conn.send(("sampled", None, None))
        ladders = [
            _ReplicateLadder(
                graph,
                partition,
                sample,
                cfg["ladder"],
                cfg["n_pop"],
                cfg["mean_degree_model"],
            )
            for sample in samples
        ]
        truth_sizes = cfg["truth_sizes"]
        plugin = cfg["weight_size_plugin"]
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            si, size = message[1], message[2]
            if command == "skip":
                for ladder in ladders:
                    ladder.skip(size)
                conn.send(("skipped", si))
            elif command == "rung":
                rows = [
                    _rung_rows(ladder.rung(size), plugin, truth_sizes)
                    for ladder in ladders
                ]
                conn.send(
                    (
                        "rows",
                        si,
                        tuple(
                            np.stack([r[field] for r in rows])
                            for field in range(4)
                        ),
                    )
                )
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown executor command {command!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def _preferred_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessSweepExecutor:
    """Shared-memory multi-process sweep executor.

    Parameters
    ----------
    workers:
        Shard count (default: CPU count). Clamped to the replication
        count; the shard assignment never influences results, only
        wall-clock.
    checkpoint:
        Checkpoint *root* directory. Each sweep writes into a
        manifest-keyed subdirectory (see
        :mod:`repro.runtime.checkpoint`); ``None`` disables
        checkpointing.
    resume:
        Continue a matching checkpoint (skip its sampling phase and
        completed rungs) instead of clearing it.
    mp_context:
        A ``multiprocessing`` context; defaults to ``fork`` where
        available (workers then inherit the parent's imports) and
        ``spawn`` elsewhere.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        checkpoint: "str | os.PathLike | None" = None,
        resume: bool = False,
        mp_context=None,
    ):
        if workers is not None and workers < 1:
            raise EstimationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers is not None else _default_workers()
        self.checkpoint_root = None if checkpoint is None else Path(checkpoint)
        self.resume = bool(resume)
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    def run(
        self,
        graph,
        partition,
        sampler: Sampler,
        sizes: np.ndarray,
        replications: int,
        rng,
        *,
        engine: str = "batched",
        ladder: str = "incremental",
        weight_size_plugin: str = "star",
        mean_degree_model: str = "per-category",
    ) -> SweepResult:
        """Run one sweep; same contract as the serial ``run_nrmse_sweep``."""
        if replications < 1:
            raise EstimationError(
                f"replications must be positive, got {replications}"
            )
        if engine not in ("batched", "sequential"):
            raise EstimationError(
                f"unknown engine {engine!r}; use 'batched' or 'sequential'"
            )
        if ladder not in ("incremental", "subset"):
            raise EstimationError(
                f"unknown ladder {ladder!r}; use 'incremental' or 'subset'"
            )
        if weight_size_plugin not in ("star", "induced", "true"):
            raise EstimationError(
                f"unknown weight_size_plugin {weight_size_plugin!r}"
            )
        if mean_degree_model not in ("per-category", "global"):
            raise EstimationError(
                f"unknown mean_degree_model {mean_degree_model!r}; "
                "use 'per-category' or 'global'"
            )
        sizes = np.asarray(sizes, dtype=np.int64)
        n = int(sizes[-1])
        seeds = spawn_seeds(ensure_rng(rng), replications)
        truth = true_category_graph(graph, partition)
        checkpoint = self._open_checkpoint(
            graph, partition, sampler, sizes, replications, seeds,
            engine, ladder, weight_size_plugin, mean_degree_model,
        )
        saved = checkpoint.load_samples() if checkpoint and self.resume else None
        if saved is not None and saved[0].shape != (replications, n):
            saved = None
        # Load every completed rung's rows once, up front — the rung
        # loop replays from this dict instead of re-reading the files.
        cached_rungs = (
            {
                si: rows
                for si, size in enumerate(sizes)
                if (rows := checkpoint.load_rung(si, int(size))) is not None
            }
            if checkpoint and self.resume
            else {}
        )

        r, k, c = replications, len(sizes), partition.num_categories
        size_stacks = {kind: np.full((r, k, c), np.nan) for kind in KINDS}
        weight_stacks = {kind: np.full((r, k, c, c), np.nan) for kind in KINDS}
        if len(cached_rungs) == len(sizes):
            # Every rung is already checkpointed: assemble the result
            # straight from disk — no workers, no resampling, no ladder
            # rebuilds (a finished sweep re-resumed is a pure replay).
            for si in range(len(sizes)):
                self._fill(size_stacks, weight_stacks, si, cached_rungs[si])
            return _reduce_stacks(
                sizes, size_stacks, weight_stacks, truth, "exact"
            )

        num_workers = min(self.workers, replications)
        shards = np.array_split(np.arange(replications), num_workers)
        ctx = self._mp_context or _preferred_context()

        with sharedmem.SharedArrayPool() as pool:
            payload = sharedmem.dumps(
                {"graph": graph, "partition": partition, "sampler": sampler},
                pool,
            )
            connections, processes = [], []
            try:
                for shard in shards:
                    cfg = {
                        "seeds": [seeds[i] for i in shard],
                        "n": n,
                        "n_pop": graph.num_nodes,
                        "engine": engine,
                        "ladder": ladder,
                        "weight_size_plugin": weight_size_plugin,
                        "mean_degree_model": mean_degree_model,
                        "truth_sizes": truth.sizes,
                        "want_samples": checkpoint is not None and saved is None,
                        "samples": (
                            None
                            if saved is None
                            else (saved[0][shard], saved[1][shard])
                        ),
                    }
                    parent_conn, child_conn = ctx.Pipe()
                    process = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, payload, cfg),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    connections.append(parent_conn)
                    processes.append(process)

                self._gather_samples(
                    connections, processes, shards, checkpoint, saved, n
                )
                for si, size in enumerate(sizes):
                    size = int(size)
                    cached = cached_rungs.get(si)
                    if cached is not None:
                        self._broadcast(connections, ("skip", si, size))
                        for conn, process in zip(connections, processes):
                            self._receive(conn, process, "skipped", si)
                        self._fill(size_stacks, weight_stacks, si, cached)
                    else:
                        self._broadcast(connections, ("rung", si, size))
                        rows = [
                            self._receive(conn, process, "rows", si)
                            for conn, process in zip(connections, processes)
                        ]
                        merged = tuple(
                            np.concatenate([shard_rows[f] for shard_rows in rows])
                            for f in range(4)
                        )
                        self._fill(size_stacks, weight_stacks, si, merged)
                        if checkpoint is not None:
                            checkpoint.save_rung(si, size, merged)
                self._broadcast(connections, ("stop",))
            finally:
                for conn in connections:
                    conn.close()
                for process in processes:
                    process.join(timeout=30)
                    if process.is_alive():  # pragma: no cover - stuck worker
                        process.terminate()
                        process.join()

        return _reduce_stacks(sizes, size_stacks, weight_stacks, truth, "exact")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _open_checkpoint(
        self, graph, partition, sampler, sizes, replications, seeds,
        engine, ladder, weight_size_plugin, mean_degree_model,
    ) -> "SweepCheckpoint | None":
        if self.checkpoint_root is None:
            return None
        manifest = {
            "design": sampler.design,
            "replications": int(replications),
            "sizes": [int(s) for s in sizes],
            "seeds": seeds,
            "engine": engine,
            "ladder": ladder,
            "weight_size_plugin": weight_size_plugin,
            "mean_degree_model": mean_degree_model,
            "graph": _array_digest(graph.indptr, graph.indices),
            "partition": _array_digest(partition.labels),
            "categories": list(partition.names),
            "sampler": _sampler_fingerprint(sampler),
        }
        return SweepCheckpoint(self.checkpoint_root, manifest, self.resume)

    def _gather_samples(
        self, connections, processes, shards, checkpoint, saved, n
    ) -> None:
        collected = []
        for conn, process in zip(connections, processes):
            message = self._receive(conn, process, "sampled")
            collected.append(message)
        if checkpoint is not None and saved is None:
            nodes = np.concatenate([part[0] for part in collected])
            weights = np.concatenate([part[1] for part in collected])
            checkpoint.save_samples(nodes, weights)

    @staticmethod
    def _broadcast(connections, message) -> None:
        for conn in connections:
            conn.send(message)

    @staticmethod
    def _receive(conn, process, expected: str, rung_index: int | None = None):
        try:
            message = conn.recv()
        except EOFError:
            raise EstimationError(
                "sweep worker exited unexpectedly "
                f"(exitcode {process.exitcode})"
            ) from None
        if message[0] == "error":
            raise EstimationError(f"sweep worker failed:\n{message[1]}")
        if message[0] != expected or (
            rung_index is not None and message[1] != rung_index
        ):  # pragma: no cover - protocol misuse
            raise EstimationError(
                f"unexpected worker reply {message[0]!r} (wanted {expected!r})"
            )
        return message[1:] if expected == "sampled" else (
            message[2] if expected == "rows" else None
        )

    @staticmethod
    def _fill(size_stacks, weight_stacks, si, rows) -> None:
        size_stacks["induced"][:, si] = rows[0]
        size_stacks["star"][:, si] = rows[1]
        weight_stacks["induced"][:, si] = rows[2]
        weight_stacks["star"][:, si] = rows[3]
