"""Deterministic fault injection for the parallel runtime.

The fault-tolerance machinery (shard failover, hung-worker timeouts,
checkpoint quarantine, graceful degradation) is only trustworthy if its
recovery paths run on every CI push — not just when real hardware
happens to misbehave. This module is the harness that makes failure a
*scheduled input*: a :class:`FaultPlan` is a small budgeted list of
fault directives, armed either programmatically
(:func:`inject` — what the chaos tests use) or via the ``REPRO_FAULTS``
environment variable (what the CI chaos job uses), and consumed by the
pool/executor/checkpoint layers at well-defined points.

Fault specs (semicolon-separated in ``REPRO_FAULTS``, or one spec
string per :func:`inject` argument)::

    kill-worker[:rung=K][,shard=J][,times=N]    SIGKILL the worker
                                                serving shard J when
                                                rung K's command
                                                arrives (default K=0);
                                                ``phase=sample``
                                                instead strikes during
                                                the sampling phase —
                                                after the walk or
                                                traversal kernel ran,
                                                before its reply
    hang-worker[:shard=J][,times=N]             wedge shard J's task:
                                                no replies, no
                                                heartbeats (timeout
                                                escalation territory)
    corrupt-checkpoint[:file=KIND][,times=N]    truncate the next
                                                checkpoint payload of
                                                KIND (rung |
                                                observations | samples
                                                | truth; default any)
                                                after its atomic write
    corrupt-manifest[:file=KIND][,times=N]      truncate the next
                                                on-disk plane manifest
                                                after its atomic write
                                                — the torn-manifest
                                                recovery path.
                                                ``file=manifest``
                                                strikes the base-CSR
                                                store
                                                (repro.graph.storage),
                                                ``file=derived`` the
                                                derived-plane store
                                                (repro.graph.planes,
                                                which quarantines and
                                                rebuilds); default any
    fail-respawn[:times=N]                      make the next N worker
                                                spawns raise

Every fault carries a budget (``times``, default 1) decremented at
*issue* time: a ``times=N`` directive strikes at most N task attempts
(replacement tasks opened by the failover path draw from the same
budget — which is how the retry-exhaustion tests drain a retry
budget), so injected runs always terminate — and, because the
executor's recovery is deterministic, produce output byte-identical to
an undisturbed run.

Scoping: plans armed with :func:`inject` are always active.
The environment plan is consulted only inside an :func:`env_scope`
(entered by the executor's drive loop and the plan schedulers) so that
a CI job exporting ``REPRO_FAULTS`` chaos-tests the *runtime machinery*
without corrupting unrelated unit tests' direct checkpoint round trips.
Budgets persist across scopes: one process consumes each environment
fault at most ``times`` times total.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.exceptions import EstimationError

__all__ = [
    "Fault",
    "FaultPlan",
    "active_plans",
    "env_scope",
    "inject",
    "parse_faults",
    "take",
    "take_worker_directives",
]

#: Recognized fault kinds (see module docstring for their grammar).
KINDS = (
    "kill-worker",
    "hang-worker",
    "corrupt-checkpoint",
    "corrupt-manifest",
    "fail-respawn",
)


class Fault:
    """One armed fault directive with a remaining-issue budget."""

    __slots__ = ("kind", "params", "times")

    def __init__(self, kind: str, params: dict, times: int = 1):
        if kind not in KINDS:
            raise EstimationError(
                f"unknown fault kind {kind!r}; use one of {', '.join(KINDS)}"
            )
        if times < 1:
            raise EstimationError(
                f"fault {kind!r} needs times >= 1, got {times}"
            )
        self.kind = kind
        self.params = dict(params)
        self.times = int(times)

    def matches(self, context: dict) -> bool:
        """Whether this fault applies under ``context``.

        A parameter present in both the spec and the context must agree;
        a parameter the spec omits is a wildcard (``kill-worker`` with
        no ``shard=`` hits whichever shard asks first).
        """
        return all(
            context[key] == value
            for key, value in self.params.items()
            if key in context
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"Fault({self.kind}:{params},times={self.times})"


def parse_faults(spec: str) -> list[Fault]:
    """Parse a ``REPRO_FAULTS``-style spec string into fault directives."""
    faults = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, params_text = part.partition(":")
        params: dict = {}
        for pair in params_text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise EstimationError(
                    f"malformed fault parameter {pair!r} in {part!r} "
                    "(expected key=value)"
                )
            value = value.strip()
            params[key.strip()] = (
                int(value) if value.lstrip("-").isdigit() else value
            )
        times = params.pop("times", 1)
        faults.append(Fault(kind.strip().lower(), params, times))
    return faults


class FaultPlan:
    """A thread-safe budgeted collection of armed faults."""

    def __init__(self, faults):
        self._faults = list(faults)
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        return cls(parse_faults(spec))

    def take(self, kind: str, **context) -> "Fault | None":
        """Issue (and decrement) the first matching armed fault."""
        with self._lock:
            for fault in self._faults:
                if fault.kind == kind and fault.times > 0 and fault.matches(context):
                    fault.times -= 1
                    return fault
        return None

    def pending(self, kind: "str | None" = None) -> int:
        """Remaining issue budget (all kinds, or one kind)."""
        with self._lock:
            return sum(
                fault.times
                for fault in self._faults
                if kind is None or fault.kind == kind
            )


#: Programmatically injected plans — always active while their
#: ``inject`` context is open (innermost last; ``take`` scans in order).
_INJECTED: list[FaultPlan] = []

#: Cached environment plans, keyed by the spec string that built them.
#: A monkeypatched REPRO_FAULTS parses its own plan, while restoring a
#: previous spec returns the *same* plan object with its
#: partially-consumed budgets — one process consumes each environment
#: fault at most ``times`` times total, whatever the env churn.
_ENV_PLANS: dict[str, FaultPlan] = {}

#: Depth of open :func:`env_scope` contexts (any > 0 arms the env plan).
_ENV_DEPTH = 0
_ENV_LOCK = threading.Lock()


@contextmanager
def inject(*specs: str):
    """Arm fault directives for the enclosed block (chaos tests).

    Each argument is one spec string (``"kill-worker:rung=1"``); the
    assembled :class:`FaultPlan` is yielded so tests can assert on its
    remaining budgets afterwards.
    """
    plan = FaultPlan.parse(";".join(specs))
    _INJECTED.append(plan)
    try:
        yield plan
    finally:
        _INJECTED.remove(plan)


def _env_plan() -> "FaultPlan | None":
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    with _ENV_LOCK:
        plan = _ENV_PLANS.get(spec)
        if plan is None:
            try:
                plan = _ENV_PLANS[spec] = FaultPlan.parse(spec)
            except EstimationError as error:
                raise EstimationError(f"REPRO_FAULTS: {error}") from None
        return plan


@contextmanager
def env_scope():
    """Arm the ``REPRO_FAULTS`` plan for the enclosed block.

    Entered by the executor drive loop and the plan schedulers; direct
    checkpoint/pool use outside any runtime run never sees environment
    faults, so a chaos CI job only exercises the recovery machinery.
    """
    global _ENV_DEPTH
    with _ENV_LOCK:
        _ENV_DEPTH += 1
    try:
        yield
    finally:
        with _ENV_LOCK:
            _ENV_DEPTH -= 1


def active_plans() -> list[FaultPlan]:
    """The plans ``take`` consults right now (injected, then armed env)."""
    plans = list(_INJECTED)
    with _ENV_LOCK:
        armed = _ENV_DEPTH > 0
    if armed:
        env = _env_plan()
        if env is not None:
            plans.append(env)
    return plans


def take(kind: str, **context) -> "Fault | None":
    """Issue the first matching fault across all active plans."""
    for plan in active_plans():
        fault = plan.take(kind, **context)
        if fault is not None:
            from repro.runtime import telemetry

            telemetry.counter("faults.injected", 1)
            telemetry.instant("fault.injected", cat="fault", kind=kind, **context)
            return fault
    return None


def take_worker_directives(shard_slot: int) -> tuple:
    """Consume kill/hang faults aimed at ``shard_slot``'s next task.

    Returns the directive tuple the executor embeds in the task cfg —
    ``("kill", rung_index)`` makes :func:`~repro.runtime.executor.serve_shard`
    SIGKILL its own process when that rung's command arrives (before
    computing any row, so the parent sees a clean mid-rung death),
    ``("kill", "sample")`` (from a ``phase=sample`` spec) kills it in
    the sampling phase instead — after the walk/traversal kernel did
    its work, before the ``sampled`` reply, so the replicates are lost
    and the replacement must redraw them — and ``("hang",)`` wedges
    the task before its first reply or heartbeat.
    Each call draws against the fault's ``times`` budget, so a
    replacement task is struck again only while budget remains —
    recovery always converges once the plan runs dry.
    """
    directives = []
    fault = take("kill-worker", shard=shard_slot)
    if fault is not None:
        if fault.params.get("phase") == "sample":
            directives.append(("kill", "sample"))
        else:
            directives.append(("kill", int(fault.params.get("rung", 0))))
    fault = take("hang-worker", shard=shard_slot)
    if fault is not None:
        directives.append(("hang",))
    return tuple(directives)
