"""Execute compiled experiment plans on the parallel sweep runtime.

:func:`run_plan` is the single execution path behind every experiment
driver and the ``repro experiment`` CLI. It routes each
:class:`~repro.experiments.plan.SweepCell` through
:func:`repro.stats.replication.run_nrmse_sweep` (fresh draws) or
:func:`~repro.stats.replication.run_nrmse_sweep_from_samples`
(pre-drawn crawls) — and therefore through whatever executor the
ambient runtime configuration selects — and runs
:class:`~repro.experiments.plan.ComputeCell` steps in-process.

Two schedules execute the same plan, byte-for-byte equivalently:

* the **DAG scheduler** (:mod:`repro.runtime.scheduler`, the default
  for parallel plans): resources build concurrently ahead of the cell
  frontier, ready cells overlap on one persistent worker pool, and a
  resumed plan replays recorded fully-cached cells without rebuilding
  their substrates;
* the **serial cell loop** (in this module): one cell at a time, in
  plan order — the reference twin the DAG schedule is golden-pinned
  against, and the only schedule for serial executors (no worker pool
  to overlap cells on). Select with ``scheduler="serial"``,
  ``runtime_options(plan_scheduler=...)``, ``REPRO_PLAN_SCHEDULER``,
  or ``repro experiment <name> --scheduler serial``.

Three runtime services wrap both schedules:

* **One shared-memory pool per plan run**
  (:func:`repro.runtime.sharedmem.shared_pool`): executors publish
  substrate arrays into the ambient pool, which deduplicates by object
  identity — so the Facebook world behind five Table 2 crawl cells, or
  a dataset stand-in behind three Fig. 4 design cells, crosses the
  process boundary exactly once for the whole plan.
* **Plan-keyed checkpoints**
  (:class:`repro.runtime.checkpoint.PlanCheckpoint`): with a checkpoint
  root configured, every sweep cell checkpoints into its own
  subdirectory of a directory keyed by the plan manifest. A killed
  ``repro experiment fig6 --workers W --resume`` therefore replays
  completed cells from their rung files and resumes computing at the
  first missing cell/rung — to the same bytes as an uninterrupted run.
* **Determinism by construction**: cells derive their RNG streams from
  the master seed by fixed integer keys (:func:`repro.rng.derive_rng`),
  and each sweep inherits the executor's bit-identical-for-any-worker-
  count contract, so a plan's finalized
  :class:`~repro.experiments.base.ExperimentResult` outputs are
  identical for serial, 1-worker, and N-worker runs alike — under
  either schedule.
"""

from __future__ import annotations

import os
from contextlib import nullcontext

from repro.runtime import sharedmem, telemetry
from repro.runtime.checkpoint import PlanCheckpoint
from repro.runtime.config import (
    active_options,
    resolve_executor,
    resolve_plan_scheduler,
)

__all__ = ["run_plan"]


def run_plan(
    plan,
    *,
    executor: "str | None" = None,
    workers: int | None = None,
    checkpoint: "str | os.PathLike | None" = None,
    resume: bool | None = None,
    scheduler: "str | None" = None,
):
    """Run every cell of ``plan`` and return its finalized results.

    Parameters
    ----------
    plan:
        A compiled :class:`~repro.experiments.plan.SweepPlan`.
    executor / workers / checkpoint / resume:
        Optional overrides for the sweep cells; each ``None`` defers to
        the ambient runtime configuration
        (:func:`repro.runtime.runtime_options`, then the environment),
        exactly like the per-sweep entry points. ``executor`` must be a
        built-in executor *name* (``"serial"``/``"process"``) — a plan
        threads per-cell checkpoint roots through these knobs, which an
        executor instance's fixed configuration cannot carry.
        ``checkpoint`` names the user-facing checkpoint *root*; the
        plan creates a plan-keyed directory under it with one
        sweep-checkpoint subdirectory per cell.
    scheduler:
        ``"dag"`` (overlap independent cells on the persistent worker
        pool) or ``"serial"`` (the one-cell-at-a-time reference loop).
        ``None`` defers to the ambient configuration
        (``REPRO_PLAN_SCHEDULER``), then ``"dag"``. Output is
        bit-identical either way; serial executors always use the
        loop.

    Returns
    -------
    dict[str, ExperimentResult]
        Whatever the plan's ``finalize`` assembles from the cell
        outputs.
    """
    from repro.experiments.plan import PlanResources, SweepCell

    if executor is not None and not isinstance(executor, str):
        from repro.exceptions import ExperimentError

        # An instance's fixed checkpoint/worker configuration cannot
        # express per-cell checkpoint roots; rejecting it here (rather
        # than letting resolve_executor trip over the ambient
        # checkpoint being threaded through as an explicit knob) keeps
        # the error actionable.
        raise ExperimentError(
            "run_plan accepts executor names ('serial'/'process'), not "
            "executor instances; pass workers/checkpoint/resume "
            "separately"
        )
    ambient = active_options()
    checkpoint_root = checkpoint if checkpoint is not None else ambient.checkpoint
    resume_flag = resume if resume is not None else bool(ambient.resume)

    # Executor resolution is uniform across cells (jobs carry no
    # executor knobs), so probe it once with the arguments the sweep
    # calls below will pass: plans with sweep cells bound for the
    # process executor get a plan checkpoint and an ambient pool
    # (named resources pre-published once, cells chain off it).
    # Serial and compute-only plans skip shared memory — publishing
    # resources nobody attaches would duplicate them in /dev/shm — and
    # must also skip opening (or clearing!) a plan checkpoint, because
    # their cells ignore checkpoint roots entirely and a fresh-mode
    # clear would destroy a prior parallel run's files while writing
    # nothing.
    probe = (
        resolve_executor(
            executor,
            workers,
            checkpoint_root,
            resume_flag if checkpoint_root is not None else resume,
        )
        if plan.sweep_cells
        else None
    )
    parallel = probe is not None
    plan_checkpoint = (
        PlanCheckpoint(
            checkpoint_root,
            {
                "plan": plan.name,
                "cells": [cell.key for cell in plan.cells],
                # Compile context (scale preset, master seed, ...): keeps
                # e.g. small- and paper-scale runs of one experiment in
                # separate plan directories, so a fresh run of one can
                # never clear the other's checkpoints.
                "context": {str(k): repr(v) for k, v in plan.context.items()},
            },
            resume_flag,
        )
        if checkpoint_root is not None and parallel
        else None
    )

    resources = PlanResources(
        {
            name: _published_on_build(name, factory)
            for name, factory in plan.resources.items()
        }
    )

    if parallel and resolve_plan_scheduler(scheduler) == "dag":
        from repro.runtime.scheduler import run_plan_dag

        outputs = run_plan_dag(
            plan,
            resources,
            workers=probe.workers,
            plan_checkpoint=plan_checkpoint,
            resume=resume_flag if plan_checkpoint is not None else False,
        )
        return plan.finalize_outputs(outputs, resources)

    # The serial reference loop: one cell at a time, in plan order.
    outputs: dict[str, object] = {}
    with telemetry.span(
        "plan", cat="plan", plan=plan.name,
        scheduler="serial", cells=len(plan.cells),
    ), sharedmem.shared_pool() if parallel else nullcontext() as ambient_pool:
        try:
            for cell in plan.cells:
                if isinstance(cell, SweepCell):
                    with telemetry.span(
                        "cell", cat="plan", key=cell.key, kind="sweep"
                    ):
                        outputs[cell.key] = _run_sweep_cell(
                            cell,
                            resources,
                            executor=executor,
                            workers=workers,
                            checkpoint=(
                                plan_checkpoint.cell_root(cell.key)
                                if plan_checkpoint is not None
                                else None
                            ),
                            resume=resume_flag
                            if plan_checkpoint is not None
                            else resume,
                        )
                else:
                    with telemetry.span(
                        "cell", cat="plan", key=cell.key, kind="compute"
                    ):
                        outputs[cell.key] = cell.compute(resources)
        finally:
            if ambient_pool is not None:
                # The cells' persistent workers outlive this plan; drop
                # their attachments to the plan's resource blocks before
                # the pool unlinks them (mirrors the DAG scheduler).
                from repro.runtime.pool import default_pool

                default_pool().retire_all(ambient_pool.block_names)
    return plan.finalize_outputs(outputs, resources)


def _published_on_build(name, factory):
    """Publish a resource's arrays to the plan's ambient pool on build.

    Cell executors then resolve these arrays to already-published
    tokens (:class:`~repro.runtime.sharedmem.PoolChain`), while their
    cell-local arrays go through per-run pools that are unlinked when
    the cell finishes — the named resources are exactly the arrays
    worth pinning for the whole plan. Serial plans never publish:
    ``run_plan`` opens the ambient pool only for parallel executors,
    and without an active pool this wrapper is a pass-through (the
    resource object is returned unchanged either way).
    """

    def build():
        with telemetry.span("resource", cat="plan", resource=name):
            value = factory()
            pool = sharedmem.active_pool()
            if pool is not None:
                try:
                    sharedmem.dumps(value, pool)
                except Exception:
                    # Publication is purely an optimization; a resource
                    # the pickler cannot handle ships per cell instead.
                    pass
            return value

    return build


def _run_sweep_cell(cell, resources, *, executor, workers, checkpoint, resume):
    """Dispatch one sweep cell to the replicated-sweep engine."""
    from repro.stats.replication import (
        run_nrmse_sweep,
        run_nrmse_sweep_from_samples,
    )

    job = cell.build(resources)
    if job.mode == "fresh":
        return run_nrmse_sweep(
            job.graph,
            job.partition,
            job.sampler,
            job.sizes,
            replications=job.replications,
            rng=job.rng,
            weight_size_plugin=job.weight_size_plugin,
            mean_degree_model=job.mean_degree_model,
            executor=executor,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
        )
    return run_nrmse_sweep_from_samples(
        job.graph,
        job.partition,
        job.samples,
        job.sizes,
        weight_size_plugin=job.weight_size_plugin,
        mean_degree_model=job.mean_degree_model,
        truth_mode=job.truth_mode,
        executor=executor,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
    )
