"""Persistent, task-multiplexed sweep worker pool.

Before the DAG plan scheduler, every sweep spun up its own worker
processes and tore them down when its ladder drained: a plan with
twelve cells paid twelve pool spin-ups, and no two cells could ever
share a core. This module keeps **one** set of worker processes alive
— across the cells of a plan, and across back-to-back ``repro run``
sweeps in one process — and multiplexes *tasks* onto them. A task is
one shard of one sweep (a contiguous replicate block); each worker
runs its tasks in their own threads, so cell ``k+1``'s sampling phase
overlaps cell ``k``'s ladder drain on the same worker, and the parent
drives every task independently through a :class:`TaskChannel`.

Wire protocol (parent -> worker)::

    ("open",  task_id, payload, cfg)   start a shard task
    ("rung",  task_id, si, size)       compute rung si
    ("skip",  task_id, si, size)       fold past a checkpointed rung
    ("telemetry", task_id, -1, 0)      flush the task's telemetry
    ("close", task_id)                 task finished; join + forget it
    ("retire", block_names)            drop shared-memory attachments
    ("shutdown",)                      exit the worker process

Worker -> parent messages are the executor's shard replies prefixed
with their task id (``(task_id, "sampled", ...)``, ``(task_id,
"rows", si, rows)``, ``(task_id, "error", traceback)``, ...); a
dedicated parent-side reader thread per worker routes them to the
right task's queue, which also guarantees the pipe always drains — a
worker can never deadlock sending rows for a task the parent has
abandoned.

Determinism is untouched by any of this: a task computes the same
per-replicate rows wherever and whenever it runs, the parent places
them by absolute replicate index, and each sweep's reduction stays the
serial code path. The pool only changes *when* work happens, never
*what* is computed.

Lifecycle: :func:`default_pool` hands out one process-wide pool per
multiprocessing start method, grown on demand and shut down at
interpreter exit (workers are daemonic besides). Tests that rely on
``fork`` workers inheriting freshly monkeypatched parent state call
:func:`reset_default_pools` to force the next sweep onto new workers.
"""

from __future__ import annotations

import atexit
import os
import queue
import tempfile
import threading
import time
import traceback
from pathlib import Path

from repro.exceptions import EstimationError
from repro.log import get_logger
from repro.runtime import faults, sharedmem, telemetry

__all__ = [
    "PersistentWorkerPool",
    "TaskChannel",
    "WorkerDied",
    "WorkerFailure",
    "WorkerHang",
    "WorkerSpawnError",
    "default_pool",
    "read_spill",
    "reset_default_pools",
]

_LOG = get_logger(__name__)


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
class WorkerDied(EstimationError):
    """A pool worker process exited while a task still needed it.

    Subclasses :class:`~repro.exceptions.EstimationError` so callers
    that predate the failover machinery keep catching worker loss; the
    executor additionally recognizes the subclass and routes it through
    the shard retry path instead of failing the sweep.
    """

    def __init__(self, message: str, *, pid=None, exitcode=None):
        super().__init__(message)
        self.pid = pid
        self.exitcode = exitcode


class WorkerHang(WorkerDied):
    """A task missed its heartbeat deadline (stuck, not merely slow).

    Raised by :meth:`TaskChannel.recv` when ``REPRO_TASK_TIMEOUT`` (or
    the executor's ``task_timeout``) elapses with neither a reply nor a
    heartbeat. The worker process may still be alive but wedged; the
    recovery path condemns it and re-dispatches the shard elsewhere.
    """


class WorkerSpawnError(EstimationError):
    """The pool could not start a replacement (or initial) worker."""


class WorkerFailure(EstimationError):
    """A shard exhausted its retry budget; carries the full history.

    The structured terminal error of the failover path: ``slot`` is the
    shard's position in the sweep's shard split, ``replicates`` its
    absolute replicate indices, and ``retries`` one dict per failed
    attempt (``pid``/``exitcode``/``phase``/``reason``/``spill``).
    """

    def __init__(self, slot: int, replicates, retries: list):
        self.slot = int(slot)
        self.replicates = tuple(int(i) for i in replicates)
        self.retries = list(retries)
        span = (
            f"replicates {self.replicates[0]}-{self.replicates[-1]}"
            if self.replicates
            else "no replicates"
        )
        attempts = "; ".join(
            f"attempt {i}: pid {entry.get('pid')} "
            f"exitcode {entry.get('exitcode')} during {entry.get('phase')} "
            f"({entry.get('reason')})"
            + (
                f"\n  worker traceback:\n{entry['spill']}"
                if entry.get("spill")
                else ""
            )
            for i, entry in enumerate(self.retries, start=1)
        )
        super().__init__(
            f"shard {self.slot} ({span}) failed after "
            f"{max(len(self.retries) - 1, 0)} retries: {attempts}"
        )


# ----------------------------------------------------------------------
# Traceback spill files (the parent's view of a worker that died
# before — or while — replying its error)
# ----------------------------------------------------------------------
def _spill_path(pid: int) -> Path:
    return Path(tempfile.gettempdir()) / f"repro-worker-{pid}.traceback"


def read_spill(pid, clear: bool = True) -> "str | None":
    """The last traceback a (now dead) worker spilled, if any.

    Workers persist a failing task's traceback to a per-pid spill file
    *before* replying it, precisely because the reply pipe may already
    be broken (the old silent-failure window): when the parent sees a
    dead worker it reads — and by default clears — the spill so the
    root cause survives into the retry history and the final
    :class:`WorkerFailure` message.
    """
    if pid is None:
        return None
    path = _spill_path(pid)
    try:
        text = path.read_text()
    except OSError:
        return None
    if clear:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced cleanup
            pass
    return text or None


def default_workers() -> int:
    """The default shard count: one per available core."""
    return max(os.cpu_count() or 1, 1)


def preferred_context():
    """``fork`` where available (workers inherit imports), else spawn."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _heartbeat_loop(task_id, reply, interval, done) -> None:
    """Pulse ``("heartbeat",)`` until the task finishes (worker side).

    A free-running thread: it keeps beating while the task computes a
    long rung (slow is fine), and goes silent only when the *process*
    is wedged or gone — which is exactly the distinction the parent's
    ``recv`` timeout needs.
    """
    while not done.wait(interval):
        try:
            reply(task_id, "heartbeat")
        except Exception:  # pragma: no cover - parent gone
            return


def _task_main(task_id, payload, cfg, commands, reply) -> None:
    """One shard task inside a worker: serve it, report errors by id."""
    directives = tuple(map(tuple, cfg.get("faults") or ()))
    if ("hang",) in directives:
        # Simulated wedge: no replies, no heartbeats, thread never
        # returns (daemon — dies with the condemned worker process).
        while True:  # pragma: no cover - killed externally
            time.sleep(60)
    done = threading.Event()
    interval = cfg.get("heartbeat")
    if interval:
        threading.Thread(
            target=_heartbeat_loop,
            args=(task_id, reply, float(interval), done),
            daemon=True,
        ).start()
    try:
        from repro.runtime.executor import serve_shard

        serve_shard(
            payload,
            cfg,
            commands.get,
            lambda *parts: reply(task_id, *parts),
        )
    except BaseException:
        text = traceback.format_exc()
        # Spill first: if the reply pipe is already broken (or breaks
        # mid-send) the traceback still reaches the parent via the
        # spill file it reads on seeing the worker dead.
        try:
            _spill_path(os.getpid()).write_text(text)
        except OSError:  # pragma: no cover - unwritable tmpdir
            pass
        try:
            reply(task_id, "error", text)
            _spill_path(os.getpid()).unlink(missing_ok=True)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        done.set()


def _pool_worker_main(conn) -> None:
    """Worker process: dispatch messages to per-task threads."""
    # A fork-inherited ambient recorder belongs to the parent; shard
    # tasks record into task-local collectors instead (executor side),
    # so drop it rather than silently swallowing events here.
    telemetry.reset_for_worker()
    send_lock = threading.Lock()

    def reply(task_id, *parts):
        with send_lock:
            conn.send((task_id,) + parts)

    tasks: dict[int, tuple[threading.Thread, queue.SimpleQueue]] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "retire":
                sharedmem.release(message[1])
                continue
            task_id = message[1]
            if kind == "open":
                commands: queue.SimpleQueue = queue.SimpleQueue()
                thread = threading.Thread(
                    target=_task_main,
                    args=(task_id, message[2], message[3], commands, reply),
                    daemon=True,
                )
                tasks[task_id] = (thread, commands)
                thread.start()
            elif kind == "close":
                entry = tasks.pop(task_id, None)
                if entry is not None:
                    entry[1].put(("stop",))
                    # Joining here orders the task's teardown before any
                    # later retire of its blocks on this connection —
                    # but bounded: a wedged task must not stop this
                    # worker from serving every other cell (the daemon
                    # thread is abandoned; a later retire of its blocks
                    # then simply finds them still referenced and keeps
                    # them pinned instead of crashing).
                    entry[0].join(timeout=30)
            else:  # "rung" | "skip" | "telemetry"
                tasks[task_id][1].put((kind, message[2], message[3]))
    finally:
        for _, commands in tasks.values():
            commands.put(("stop",))
        for thread, _ in tasks.values():
            thread.join(timeout=5)
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
#: Sentinel routed to every open task queue when its worker dies.
_DEAD = ("__worker_dead__",)


class _WorkerHandle:
    """Parent-side view of one pool worker (process, pipe, reader)."""

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.alive = True
        self._send_lock = threading.Lock()
        self._tasks_lock = threading.Lock()
        self._task_queues: dict[int, queue.SimpleQueue] = {}
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            with self._tasks_lock:
                task_queue = self._task_queues.get(message[0])
            if task_queue is not None:
                task_queue.put(message[1:])
            # Replies for closed tasks are dropped: an abandoned shard
            # may legitimately finish sending after an error elsewhere.
        self.alive = False
        with self._tasks_lock:
            queues = list(self._task_queues.values())
        for task_queue in queues:
            task_queue.put(_DEAD)

    def send(self, message) -> None:
        with self._send_lock:
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                self.alive = False
                raise WorkerDied(
                    "sweep worker exited unexpectedly "
                    f"(exitcode {self.process.exitcode})",
                    pid=self.process.pid,
                    exitcode=self.process.exitcode,
                ) from None

    def register(self, task_id: int) -> queue.SimpleQueue:
        task_queue: queue.SimpleQueue = queue.SimpleQueue()
        with self._tasks_lock:
            if not self.alive:
                raise WorkerDied(
                    "sweep worker exited unexpectedly "
                    f"(exitcode {self.process.exitcode})",
                    pid=self.process.pid,
                    exitcode=self.process.exitcode,
                )
            self._task_queues[task_id] = task_queue
        return task_queue

    def unregister(self, task_id: int) -> None:
        with self._tasks_lock:
            self._task_queues.pop(task_id, None)

    def condemn(self) -> None:
        """Mark this worker unusable and kill its process (hang path).

        A wedged worker still *looks* alive (the process exists, the
        pipe is open); condemning it first means a concurrent lease can
        never hand the dying worker out again, and the killed process's
        reader-thread EOF then delivers ``_DEAD`` to its other tasks.
        """
        self.alive = False
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already gone
            pass
        self.process.join(timeout=5)


def parse_reply(message, expected: str, rung_index: "int | None"):
    """Validate one worker reply and strip it to its payload.

    Shared by :class:`TaskChannel` and the executor's in-process
    degradation channel, so both transports enforce the identical
    protocol (``error`` replies stay immediately fatal — a
    deterministic task exception would fail identically on every
    retry, so it is never routed through the failover path).
    """
    if message[0] == "error":
        raise EstimationError(f"sweep worker failed:\n{message[1]}")
    if message[0] != expected or (
        rung_index is not None and message[1] != rung_index
    ):  # pragma: no cover - protocol misuse
        raise EstimationError(
            f"unexpected worker reply {message[0]!r} (wanted {expected!r})"
        )
    if expected == "sampled":
        return message[1:]
    if expected == "rows":
        return message[2]
    if expected == "observed":
        return message[1]
    if expected == "telemetry":
        return message[2]
    return None


class TaskChannel:
    """Parent-side handle of one shard task running on a pool worker.

    ``send``/``recv`` mirror the old one-pipe-per-worker protocol of
    the per-sweep executor, so the rung-loop driver code is unchanged;
    the channel just adds the task id on the way out and strips it on
    the way back. ``recv`` additionally understands heartbeats: with a
    ``timeout``, every heartbeat from the task's worker resets the
    deadline, so a *slow* rung never trips the timeout — only a worker
    that stopped beating (wedged or dead) does.
    """

    def __init__(self, handle: _WorkerHandle, task_id: int):
        self._handle = handle
        self.task_id = task_id
        self._queue = handle.register(task_id)
        self._closed = False

    @property
    def process(self):
        """The worker process serving this task (for exit codes)."""
        return self._handle.process

    def send(self, kind: str, *parts) -> None:
        self._handle.send((kind, self.task_id) + parts)

    def recv(
        self,
        expected: str,
        rung_index: "int | None" = None,
        timeout: "float | None" = None,
    ):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if deadline is None:
                    message = self._queue.get()
                else:
                    remaining = deadline - time.monotonic()
                    message = self._queue.get(timeout=max(remaining, 0.001))
            except queue.Empty:
                raise WorkerHang(
                    f"sweep worker sent no heartbeat for {timeout:.3g}s "
                    f"while the parent waited for {expected!r} "
                    f"(pid {self._handle.process.pid}): assuming it hung",
                    pid=self._handle.process.pid,
                    exitcode=self._handle.process.exitcode,
                ) from None
            if message is _DEAD:
                raise WorkerDied(
                    "sweep worker exited unexpectedly "
                    f"(exitcode {self._handle.process.exitcode})",
                    pid=self._handle.process.pid,
                    exitcode=self._handle.process.exitcode,
                )
            if message[0] == "heartbeat":
                if deadline is not None:
                    deadline = time.monotonic() + timeout
                continue
            return parse_reply(message, expected, rung_index)

    def condemn(self) -> None:
        """Condemn the worker serving this task (see ``_WorkerHandle``)."""
        self._handle.condemn()

    def close(self) -> None:
        """Tell the worker the task is finished; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._handle.unregister(self.task_id)
        if self._handle.alive:
            try:
                self.send("close")
            except EstimationError:  # pragma: no cover - died under us
                pass


class PersistentWorkerPool:
    """A lazily-grown pool of persistent sweep workers.

    Thread-safe: under the DAG plan scheduler several cell driver
    threads open tasks concurrently, interleaving their shards on the
    same workers. Workers are daemonic; :meth:`shutdown` (or interpreter
    exit) retires them.
    """

    def __init__(self, mp_context=None):
        self._ctx = mp_context or preferred_context()
        self._handles: list[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._next_task_id = 0

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    @property
    def size(self) -> int:
        """Live worker count."""
        with self._lock:
            return sum(1 for handle in self._handles if handle.alive)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live workers (stable across sweeps — the point)."""
        with self._lock:
            return tuple(
                handle.process.pid for handle in self._handles if handle.alive
            )

    def _spawn(self) -> _WorkerHandle:
        if faults.take("fail-respawn") is not None:
            raise WorkerSpawnError(
                "injected worker spawn failure (fail-respawn fault)"
            )
        try:
            with telemetry.span(
                "spawn", cat="pool", start_method=self.start_method
            ):
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_pool_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
        except OSError as error:  # fork/pipe exhaustion
            raise WorkerSpawnError(
                f"could not spawn a sweep worker: {error}"
            ) from error
        child_conn.close()
        _LOG.debug(
            "spawned pool worker pid=%s (%s)",
            process.pid, self.start_method,
        )
        telemetry.counter("pool.workers_spawned", 1)
        return _WorkerHandle(process, parent_conn)

    def _grow_locked(self, workers: int) -> None:
        """Prune dead workers and spawn up to ``workers`` (lock held)."""
        self._handles = [h for h in self._handles if h.alive]
        if len(self._handles) < workers:
            # Start the parent's shared-memory resource tracker
            # *before* forking: on Python < 3.13 a worker's block
            # attach registers with whatever tracker it inherited,
            # and a worker that pre-dates the parent's tracker would
            # spawn its own — which then never sees the parent's
            # unlink-time unregister and warns about (already
            # unlinked) "leaked" blocks at shutdown.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker internals
                pass
        while len(self._handles) < workers:
            self._handles.append(self._spawn())

    def ensure(self, workers: int) -> None:
        """Grow the pool to at least ``workers`` live workers.

        The DAG scheduler calls this once before launching its cell
        driver threads, so pool growth (a ``fork``) never races them.
        """
        with self._lock:
            self._grow_locked(workers)

    def lease(self, workers: int) -> "list[_WorkerHandle]":
        """``workers`` live workers (a shared prefix), spawning as needed.

        Concurrent sweeps lease overlapping prefixes of the same worker
        list — sharing, not partitioning, is what lets a later cell's
        sampling fill the gaps in an earlier cell's ladder drain.
        Growing and slicing happen under one lock acquisition, so a
        concurrent lease pruning a just-died worker can never shrink
        this caller's slice below ``workers`` (a shard must never be
        silently dropped).
        """
        with self._lock:
            self._grow_locked(workers)
            return list(self._handles[:workers])

    def lease_upto(self, workers: int) -> "list[_WorkerHandle]":
        """Up to ``workers`` live workers, degrading instead of raising.

        The failover path's lease: dead workers are pruned, replacements
        are spawned best-effort, and a spawn failure returns whatever
        live workers exist rather than propagating — the executor then
        multiplexes its shards over the shorter list (and warns once).
        Raises :class:`WorkerSpawnError` only when *no* worker can be
        obtained at all; the executor's answer to that is the
        in-process serial fallback.
        """
        with self._lock:
            self._handles = [h for h in self._handles if h.alive]
            spawn_error = None
            if len(self._handles) < workers:
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:  # pragma: no cover - tracker internals
                    pass
            while len(self._handles) < workers:
                try:
                    self._handles.append(self._spawn())
                except (WorkerSpawnError, OSError) as error:
                    spawn_error = error
                    break
            if not self._handles:
                raise WorkerSpawnError(
                    f"could not obtain any sweep worker: {spawn_error}"
                ) from spawn_error
            return list(self._handles[:workers])

    def open_task(self, handle: _WorkerHandle, payload: bytes, cfg: dict) -> TaskChannel:
        """Start a shard task on ``handle`` and return its channel."""
        with self._lock:
            task_id = self._next_task_id
            self._next_task_id += 1
        channel = TaskChannel(handle, task_id)
        try:
            handle.send(("open", task_id, payload, cfg))
        except EstimationError:
            handle.unregister(task_id)
            raise
        telemetry.instant(
            "task.open", cat="pool",
            task_id=task_id, pid=handle.process.pid,
            payload_bytes=len(payload),
        )
        return channel

    def retire(self, handles, block_names) -> None:
        """Ask workers to drop their attachments to finished blocks.

        A dead worker needs no message: its mappings vanished with the
        process, and the *files* behind the blocks are owned (and
        unlinked) by the parent-side pool that published them — so
        worker death can never leak a ``/dev/shm`` entry, only delay
        when a live worker unmaps it.
        """
        if not block_names:
            return
        names = tuple(block_names)
        for handle in handles:
            if handle.alive:
                try:
                    handle.send(("retire", names))
                except EstimationError:  # pragma: no cover - dying worker
                    pass

    def retire_all(self, block_names) -> None:
        """Retire blocks on every live worker.

        The plan runners call this for the *ambient* plan-resource
        blocks when a plan finishes: per-cell runs retire their own
        local blocks, but the shared resources outlive every cell and
        would otherwise stay mapped in the persistent workers for the
        process lifetime — one world copy leaked per plan run.
        """
        with self._lock:
            handles = list(self._handles)
        self.retire(handles, block_names)

    def shutdown(self) -> None:
        """Stop every worker and forget them (the pool stays usable)."""
        with self._lock:
            handles, self._handles = self._handles, []
        if handles:
            _LOG.debug("shutting down %d pool worker(s)", len(handles))
        for handle in handles:
            if handle.alive:
                try:
                    handle.send(("shutdown",))
                except EstimationError:
                    pass
        for handle in handles:
            handle.process.join(timeout=30)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join()
            handle.conn.close()
            # A worker that died mid-error may have left a traceback
            # spill nobody read (the sweep was already torn down).
            read_spill(handle.process.pid)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The process-wide default pools (one per start method)
# ----------------------------------------------------------------------
_DEFAULT_POOLS: dict[str, PersistentWorkerPool] = {}
_DEFAULT_LOCK = threading.Lock()


def default_pool(mp_context=None) -> PersistentWorkerPool:
    """The process-wide pool for ``mp_context``'s start method.

    This is what lets back-to-back sweeps — the cells of one plan, or
    repeated ``run_nrmse_sweep(executor="process")`` calls in one
    session — reuse live workers instead of paying spawn cost per
    sweep.
    """
    ctx = mp_context or preferred_context()
    key = ctx.get_start_method()
    with _DEFAULT_LOCK:
        pool = _DEFAULT_POOLS.get(key)
        if pool is None:
            pool = _DEFAULT_POOLS[key] = PersistentWorkerPool(ctx)
        return pool


def reset_default_pools() -> None:
    """Shut down every default pool (fresh workers on next use).

    Tests use this after monkeypatching modules that ``fork`` workers
    must inherit; it also runs at interpreter exit.
    """
    with _DEFAULT_LOCK:
        pools = list(_DEFAULT_POOLS.values())
        _DEFAULT_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(reset_default_pools)
