"""Dependency-aware DAG execution of compiled experiment plans.

A compiled :class:`~repro.experiments.plan.SweepPlan` is a dependency
graph, not a list: resource builds feed the cells that declared them
(``needs=``), cells feed the finalize step, and nothing else orders
them — every cell derives its RNG streams by fixed integer keys, so
cell *order* can never touch an output. The serial loop in
:mod:`repro.runtime.plan` nevertheless ran one cell at a time, each
cell spinning up and tearing down its own worker processes while every
other cell waited. This module closes that scheduling slack:

* **One persistent worker pool for the whole plan**
  (:mod:`repro.runtime.pool`): workers spawn once, before the first
  cell, and serve every cell's shard tasks. No per-cell spin-up, and —
  because a pool worker runs its tasks in separate threads — cell
  ``k+1``'s sampling phase overlaps cell ``k``'s ladder drain on the
  same workers.
* **Resources build ahead of the cell frontier**: every resource some
  pending cell (or the finalize step) declared starts building
  immediately, concurrently — fig4's four dataset stand-ins no longer
  build serially in the parent before any sweep starts.
* **Ready cells overlap**: up to ``REPRO_PLAN_INFLIGHT`` cells
  (default 2 — enough to hide phase transitions without multiplying
  peak memory) run concurrently, each driven by its own parent thread
  through the shared pool.
* **Substrate-free resume**: a resumed plan first replays every cell
  whose sweep manifest key was recorded in the plan checkpoint
  (:meth:`~repro.runtime.checkpoint.PlanCheckpoint.record_cell`) and
  whose rung files are complete — via
  :func:`~repro.runtime.executor.replay_sweep`, touching neither the
  cell's ``build`` nor the resources only it needed. At paper scale
  that is a world rebuild saved per resume.

Determinism is inherited, not re-proven: rows are keyed by
(cell, absolute replicate), each cell's reduction is the serial code
path, and no floating-point value ever depends on which worker or in
what order anything ran — so DAG output is **bit-identical** to the
serial cell loop for any worker count and any interleaving
(``tests/runtime/test_scheduler.py`` pins fig4 and fig6 at 1/2/3
workers, plus mid-plan kill/resume).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from repro.exceptions import EstimationError
from repro.log import get_logger
from repro.runtime import faults, sharedmem, telemetry
from repro.runtime.executor import ProcessSweepExecutor, replay_sweep
from repro.runtime.pool import default_pool

__all__ = ["run_plan_dag"]

_LOG = get_logger(__name__)

#: Default bound on concurrently running cells. Two is the sweet spot
#: for pipelining: the next cell samples while the previous drains its
#: ladder, without holding many substrates in memory at once.
DEFAULT_INFLIGHT = 2


def _inflight_limit() -> int:
    raw = os.environ.get("REPRO_PLAN_INFLIGHT", "").strip()
    if not raw:
        return DEFAULT_INFLIGHT
    try:
        value = int(raw)
    except ValueError:
        raise EstimationError(
            f"REPRO_PLAN_INFLIGHT must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise EstimationError(
            f"REPRO_PLAN_INFLIGHT must be >= 1, got {value}"
        )
    return value


def run_plan_dag(plan, resources, *, workers, plan_checkpoint, resume):
    """Execute ``plan``'s cells as a DAG on the persistent worker pool.

    Parameters
    ----------
    plan / resources:
        The compiled plan and its (thread-safe) resource view, exactly
        as ``run_plan`` assembled them — including the publish-on-build
        wrapping that feeds the ambient shared-memory pool.
    workers:
        Resolved worker count for the sweep executor (the caller has
        already merged explicit, ambient, and default layers).
    plan_checkpoint / resume:
        The open :class:`~repro.runtime.checkpoint.PlanCheckpoint` (or
        ``None``) and whether this run resumes it.

    Returns
    -------
    dict
        Cell outputs keyed by cell key, in plan order — the caller
        applies ``finalize``.
    """
    # The whole plan run is one fault-injection scope: a CI chaos job
    # exporting REPRO_FAULTS exercises pool growth, every cell's drive
    # loop, and every checkpoint write — while unit tests touching the
    # checkpoint layer directly stay undisturbed.
    with faults.env_scope(), telemetry.span(
        "plan", cat="plan", plan=plan.name,
        scheduler="dag", cells=len(plan.cells), workers=int(workers),
    ):
        return _run_plan_dag(
            plan,
            resources,
            workers=workers,
            plan_checkpoint=plan_checkpoint,
            resume=resume,
        )


def _run_plan_dag(plan, resources, *, workers, plan_checkpoint, resume):
    from repro.experiments.plan import SweepCell

    inflight = _inflight_limit()
    outputs: dict[str, object] = {}

    # Phase 0 — substrate-free replay of recorded, fully-cached cells.
    if plan_checkpoint is not None and resume:
        recorded = plan_checkpoint.recorded_cells()
        for cell in plan.sweep_cells:
            sweep_key = recorded.get(cell.key)
            if sweep_key is None:
                continue
            result = replay_sweep(
                plan_checkpoint.cell_root(cell.key), sweep_key
            )
            if result is not None:
                outputs[cell.key] = result
                _LOG.debug("cell %s replayed from checkpoint", cell.key)
                telemetry.counter("plan.cells_replayed", 1)
                telemetry.instant(
                    "cell.replay", cat="plan", key=cell.key
                )

    pending = [cell for cell in plan.cells if cell.key not in outputs]
    sweeps_pending = any(isinstance(cell, SweepCell) for cell in pending)

    # Only resources someone still needs get built: the declared needs
    # of the cells that were not replayed, plus whatever finalize
    # declared. (Undeclared access remains correct — PlanResources
    # builds lazily under its own lock — it just cannot be prefetched.)
    demanded = sorted(
        {name for cell in pending for name in cell.needs}
        | set(plan.finalize_needs)
    )

    pool = None
    if sweeps_pending:
        pool = default_pool()
        # Grow the pool before any driver thread exists: forking with
        # the plan's threads already running is where fork-vs-threads
        # hazards live, so we don't. A pool that cannot grow is not
        # fatal — each cell's executor degrades on its own (fewer
        # workers, ultimately in-process serial) with identical output.
        try:
            pool.ensure(max(int(workers), 1))
        except (EstimationError, OSError) as error:
            message = (
                f"plan scheduler could not grow the worker pool ({error}); "
                "cells will degrade to whatever workers can be leased"
            )
            _LOG.warning(message)
            telemetry.instant("degrade", cat="failover", message=message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)

    # Sized so every resource prefetch and every in-flight cell gets a
    # thread at once — a cell must never wait behind the very resource
    # build it is blocked on.
    max_threads = max(len(demanded) + min(inflight, max(len(pending), 1)), 1)
    ambient = sharedmem.shared_pool() if sweeps_pending else None
    ambient_pool = None
    try:
        if ambient is not None:
            ambient_pool = ambient.__enter__()
        with ThreadPoolExecutor(
            max_workers=max_threads, thread_name_prefix="repro-plan"
        ) as threads:
            resource_futures = {
                name: threads.submit(resources.__getitem__, name)
                for name in demanded
            }

            def ready(cell) -> bool:
                for name in cell.needs:
                    future = resource_futures.get(name)
                    if future is None:
                        continue
                    if not future.done():
                        return False
                    future.result()  # re-raise a failed resource build
                return True

            waiting = list(pending)
            running: dict = {}
            try:
                while waiting or running:
                    for cell in list(waiting):
                        if len(running) >= inflight:
                            break
                        if ready(cell):
                            waiting.remove(cell)
                            running[
                                threads.submit(
                                    _run_cell,
                                    cell,
                                    resources,
                                    workers=workers,
                                    plan_checkpoint=plan_checkpoint,
                                    resume=resume,
                                    pool=pool,
                                )
                            ] = cell
                    blockers = list(running) + [
                        future
                        for future in resource_futures.values()
                        if not future.done()
                    ]
                    if not blockers:
                        continue  # frontier advanced purely by ready()
                    done, _ = wait(blockers, return_when=FIRST_COMPLETED)
                    for future in done:
                        cell = running.pop(future, None)
                        if cell is not None:
                            outputs[cell.key] = future.result()
                        else:
                            future.result()
            except BaseException:
                # First failure wins; in-flight cells run to completion
                # (their checkpoints stay valid for --resume), queued
                # work is dropped.
                for future in running:
                    future.cancel()
                for future in resource_futures.values():
                    future.cancel()
                raise
    finally:
        if ambient is not None:
            # Every cell's tasks are closed by now: retire the plan's
            # resource blocks from the persistent workers before the
            # parent unlinks them, or each worker would pin one dead
            # copy of the plan substrate per plan run.
            if pool is not None and ambient_pool is not None:
                pool.retire_all(ambient_pool.block_names)
            ambient.__exit__(None, None, None)

    return {cell.key: outputs[cell.key] for cell in plan.cells}


def _run_cell(cell, resources, *, workers, plan_checkpoint, resume, pool):
    """Run one ready cell in a driver thread (sweep or compute)."""
    from repro.experiments.plan import SweepCell

    if not isinstance(cell, SweepCell):
        with telemetry.span("cell", cat="plan", key=cell.key, kind="compute"):
            return cell.compute(resources)
    from repro.stats.replication import (
        run_nrmse_sweep,
        run_nrmse_sweep_from_samples,
    )

    # A fresh executor instance per cell: the instance form is what
    # carries a per-cell checkpoint root plus the shared pool, while
    # the resolved worker count stays uniform across the plan.
    executor = ProcessSweepExecutor(
        workers=workers,
        checkpoint=(
            plan_checkpoint.cell_root(cell.key)
            if plan_checkpoint is not None
            else None
        ),
        resume=bool(resume) if plan_checkpoint is not None else False,
        pool=pool,
        label=cell.label,
    )
    with telemetry.span("cell", cat="plan", key=cell.key, kind="sweep"):
        job = cell.build(resources)
        if job.mode == "fresh":
            result = run_nrmse_sweep(
                job.graph,
                job.partition,
                job.sampler,
                job.sizes,
                replications=job.replications,
                rng=job.rng,
                weight_size_plugin=job.weight_size_plugin,
                mean_degree_model=job.mean_degree_model,
                executor=executor,
            )
        else:
            result = run_nrmse_sweep_from_samples(
                job.graph,
                job.partition,
                job.samples,
                job.sizes,
                weight_size_plugin=job.weight_size_plugin,
                mean_degree_model=job.mean_degree_model,
                truth_mode=job.truth_mode,
                executor=executor,
            )
    if executor.failover_log:
        # Recovery events already reached the telemetry plane (and the
        # log) from inside the driver; this summary line keeps per-cell
        # attribution visible even with telemetry disabled.
        _LOG.warning(
            "cell %s recovered from %d worker failure(s)",
            cell.key, len(executor.failover_log),
        )
    if plan_checkpoint is not None and executor.last_checkpoint is not None:
        # Recorded only now — after every rung landed — so a recorded
        # key always names a complete, replayable sweep directory.
        plan_checkpoint.record_cell(cell.key, executor.last_checkpoint.key)
    return result
