"""Publish NumPy arrays to workers once, via POSIX shared memory.

A sweep's workers all need the same read-only substrate: the graph's
CSR ``indptr``/``indices``, the union-multigraph planes, per-arc weight
and alias tables, partition labels. Pickling those into every worker
costs O(workers x arrays) copies and, at paper scale, dominates
executor startup. This module instead publishes each large array to a
``multiprocessing.shared_memory`` block exactly once and replaces it
inside the pickle stream with a *persistent id* — a small
``(name, dtype, shape)`` token. Workers resolve tokens by attaching the
named block and wrapping it in a read-only ndarray view: zero copies,
one physical instance of the substrate regardless of worker count.

The mechanism is object-agnostic: :func:`dumps` pickles any object
graph (samplers, :class:`~repro.graph.adjacency.Graph` instances,
:class:`~repro.graph.union.UnionCSR`, partitions) and every ndarray at
least ``threshold`` bytes big rides shared memory automatically, so new
sampler designs get the treatment without registering anything.

Arrays that are already *file-backed* — views of an ``np.memmap``, the
planes of an out-of-core CSR built by :mod:`repro.graph.storage` — are
never copied at all: the pickler ships an ``mmap`` token (absolute
path, dtype, shape, byte offset) alongside the ``psm_*`` shared-memory
token kind, and each worker maps the same file read-only. Release
semantics differ per token kind: detaching a shared-memory block
requires that no view still exports its buffer (the block is pinned
otherwise), while dropping a file mapping is always safe — surviving
views keep the mapping alive through their ``base`` chain and the OS
reclaims the pages when the last one dies.

Lifecycle: the parent owns the blocks — keep the
:class:`SharedArrayPool` alive until every worker has exited, then
:meth:`SharedArrayPool.close` unlinks them. Workers attach untracked
(they never own a block). Short-lived workers simply drop their
handles at process exit; the *persistent* pool workers of
:mod:`repro.runtime.pool` instead receive an explicit retire message
when a cell's run finishes and call :func:`release`, so a plan's
worker-side footprint stays at the long-lived resources plus the cells
currently in flight. Pools are thread-safe: under the DAG plan
scheduler several cell driver threads publish into one ambient plan
pool concurrently.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from contextlib import contextmanager
from io import BytesIO
from multiprocessing import shared_memory

import numpy as np

from repro.runtime import telemetry

__all__ = [
    "PoolChain",
    "SharedArrayPool",
    "active_pool",
    "dumps",
    "loads",
    "release",
    "shared_pool",
]

#: Arrays smaller than this ride the pickle stream directly; the tiny
#: ones are cheaper to copy than to publish and attach.
DEFAULT_THRESHOLD_BYTES = 16_384

_TOKEN_KIND = "repro-shm-ndarray"
_MMAP_TOKEN_KIND = "repro-mmap-ndarray"


def _memmap_source(array: np.ndarray) -> "tuple[str, int] | None":
    """``(path, byte_offset)`` when ``array`` is a file-backed window.

    Walks the ``base`` chain to an ``np.memmap`` with a real filename
    and computes the array's byte offset into the file. Copy-on-write
    mappings are rejected (their pages may diverge from the file), as
    is anything non-contiguous — those fall through to the shared
    memory path.
    """
    if not array.flags.c_contiguous:
        return None
    base = array
    while base is not None and not isinstance(base, np.memmap):
        base = base.base
    if base is None or getattr(base, "filename", None) is None:
        return None
    if getattr(base, "mode", "r") == "c":
        return None
    start = array.__array_interface__["data"][0]
    base_start = base.__array_interface__["data"][0]
    if start < base_start or start + array.nbytes > base_start + base.nbytes:
        return None  # view escaped its mapping; never ship that
    offset = int(base.offset) + (start - base_start)
    return os.fspath(base.filename), offset


class SharedArrayPool:
    """Parent-side registry of arrays published to shared memory.

    One pool per executor run. Arrays are deduplicated by object
    identity, so the graph's ``indices`` referenced by several samplers
    is published once; the pool keeps a reference to every published
    source array, which also pins its ``id`` for the dedup map.
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD_BYTES):
        self.threshold = int(threshold)
        self._blocks: list[shared_memory.SharedMemory] = []
        self._mmap_names: list[str] = []
        self._tokens: dict[int, tuple] = {}
        self._pinned: list[np.ndarray] = []
        self._published_bytes = 0
        self._lock = threading.Lock()

    def publish(self, array: np.ndarray) -> tuple:
        """The persistent-id token of ``array``, publishing on first use.

        File-backed arrays (memmap planes of an on-disk CSR) are not
        copied into shared memory at all — their token names the file,
        and workers map it directly.
        """
        with self._lock:
            token = self._tokens.get(id(array))
            if token is not None:
                return token
            mapped = _memmap_source(array)
            if mapped is not None:
                path, offset = mapped
                name = f"mmap:{path}@{offset}"
                token = (
                    _MMAP_TOKEN_KIND, name, path,
                    array.dtype.str, array.shape, offset,
                )
                self._mmap_names.append(name)
                self._tokens[id(array)] = token
                self._pinned.append(array)
                return token
            source = np.ascontiguousarray(array)
            block = shared_memory.SharedMemory(
                create=True, size=max(source.nbytes, 1)
            )
            np.ndarray(source.shape, dtype=source.dtype, buffer=block.buf)[...] = source
            token = (_TOKEN_KIND, block.name, source.dtype.str, source.shape)
            self._blocks.append(block)
            self._tokens[id(array)] = token
            self._pinned.append(array)
            self._published_bytes += source.nbytes
            telemetry.counter("shm.published_bytes", source.nbytes)
            telemetry.counter("shm.published_blocks", 1)
            telemetry.gauge("shm.peak_pool_bytes", self._published_bytes)
            return token

    def token_of(self, array: np.ndarray) -> "tuple | None":
        """The token of an already-published array, or ``None``."""
        with self._lock:
            return self._tokens.get(id(array))

    @property
    def num_published(self) -> int:
        """Number of distinct arrays published so far."""
        with self._lock:
            return len(self._blocks)

    @property
    def block_names(self) -> tuple[str, ...]:
        """Every name this pool has published (shared-memory + mmap).

        The retire grain of the persistent worker pool: when a cell's
        run finishes, its run-local pool's names are broadcast so the
        long-lived workers drop their attachments — shared-memory
        blocks and file mappings through the same :func:`release` call.
        """
        with self._lock:
            return tuple(block.name for block in self._blocks) + tuple(
                self._mmap_names
            )

    def close(self) -> None:
        """Release and unlink every published block (parent side).

        Only shared-memory blocks are unlinked; mmap tokens reference
        files owned by whoever built the on-disk CSR, and unmapping is
        the workers' (or the OS's) business.
        """
        with self._lock:
            blocks, self._blocks = self._blocks, []
            self._mmap_names = []
            self._tokens = {}
            self._pinned = []
            retired, self._published_bytes = self._published_bytes, 0
        if retired:
            telemetry.counter("shm.retired_bytes", retired)
        for block in blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        # Safety net, not the contract: a pool abandoned without close()
        # (a crashed driver, a test that errored before its finally)
        # must not leak /dev/shm blocks past garbage collection. close()
        # is idempotent, so the normal context-manager path is unaffected.
        try:
            self.close()
        except Exception:
            pass


class PoolChain:
    """Publication view over a long-lived pool plus a short-lived one.

    ``publish`` reuses the primary pool's token when the array is
    already published there (plan resources, pre-published once per
    plan run) and otherwise publishes into the overlay (cell-local
    substrate, unlinked when the cell's run finishes). Exposes the
    ``publish``/``threshold`` surface the plane pickler needs.
    """

    def __init__(self, primary: SharedArrayPool, overlay: SharedArrayPool):
        self._primary = primary
        self._overlay = overlay
        self.threshold = overlay.threshold

    def publish(self, array: np.ndarray) -> tuple:
        token = self._primary.token_of(array)
        if token is not None:
            return token
        return self._overlay.publish(array)


#: Innermost-wins stack of ambient pools (see :func:`shared_pool`).
_POOL_STACK: list[SharedArrayPool] = []


@contextmanager
def shared_pool(threshold: int = DEFAULT_THRESHOLD_BYTES):
    """Scope one :class:`SharedArrayPool` over several executor runs.

    The plan runner (:mod:`repro.runtime.plan`) wraps a whole plan in
    one pool so that arrays shared between cells — the Facebook world's
    graph behind every Table 2 / Fig. 5-7 cell, a dataset stand-in
    behind several Fig. 4 design cells — are published to shared memory
    exactly once for the plan, not once per sweep. Executors consult
    :func:`active_pool` and leave an ambient pool open when their run
    finishes; the blocks are unlinked when this context exits.
    """
    pool = SharedArrayPool(threshold)
    _POOL_STACK.append(pool)
    try:
        yield pool
    finally:
        _POOL_STACK.remove(pool)
        pool.close()


def active_pool() -> "SharedArrayPool | None":
    """The innermost ambient pool, or ``None`` outside any scope."""
    return _POOL_STACK[-1] if _POOL_STACK else None


class _PlanePickler(pickle.Pickler):
    """Pickler that swaps big ndarrays for shared-memory tokens."""

    def __init__(self, file, pool: SharedArrayPool):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = pool

    def persistent_id(self, obj):
        # Plain ndarrays and raw np.memmap planes (the derived-plane
        # store hands out the former as views of the latter) both
        # tokenize; fancier subclasses keep default pickling.
        if (
            type(obj) in (np.ndarray, np.memmap)
            and obj.dtype != object
            and obj.nbytes >= self._pool.threshold
        ):
            return self._pool.publish(obj)
        return None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach a block without resource-tracker ownership (worker side).

    On Python >= 3.13 ``track=False`` expresses exactly that. Older
    versions register the name again on attach, but the tracker's cache
    is a set shared with the parent, so the re-registration is a no-op
    and the parent's ``unlink`` still retires the entry cleanly.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


#: Attachment cache of the attaching process. ``SharedMemory.__del__``
#: closes its mapping, so every handle whose buffer backs a live array
#: view must stay referenced — the attaching process (a pool worker, or
#: a test doing an in-process round trip) pins them here. Short-lived
#: processes release them at exit; persistent pool workers release a
#: cell's blocks via :func:`release` when the parent retires them.
#: Guarded by a lock: pool workers unpickle several cells' payloads
#: from concurrent task threads.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_ATTACHED_LOCK = threading.Lock()

#: Handles whose unmap failed at release time (a view surfaced between
#: the refcount check and the close); pinned to silence their __del__.
_UNRELEASABLE: list = []


class _PlaneUnpickler(pickle.Unpickler):
    """Unpickler resolving tokens to read-only zero-copy views.

    Shared-memory tokens attach the named block; mmap tokens map the
    named file. Both land in the same :data:`_ATTACHED` cache, so one
    retire/:func:`release` namespace covers both kinds.
    """

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == _TOKEN_KIND:
            _, name, dtype, shape = pid
            with _ATTACHED_LOCK:
                cached = _ATTACHED.get(name)
                if cached is None:
                    block = _attach(name)
                    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
                    array.flags.writeable = False
                    cached = (block, array)
                    _ATTACHED[name] = cached
            return cached[1]
        if kind == _MMAP_TOKEN_KIND:
            _, name, path, dtype, shape, offset = pid
            with _ATTACHED_LOCK:
                cached = _ATTACHED.get(name)
                if cached is None:
                    mapped = np.memmap(
                        path,
                        dtype=np.dtype(dtype),
                        mode="r",
                        offset=offset,
                        shape=tuple(shape),
                    )
                    array = mapped.view(np.ndarray)
                    array.flags.writeable = False
                    cached = (mapped, array)
                    _ATTACHED[name] = cached
            return cached[1]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def release(names) -> None:
    """Drop this process's cached attachments for the named blocks.

    Called by persistent pool workers when the parent retires a
    finished cell's run-local blocks. Release semantics are split per
    token kind:

    * *Shared memory*: unmapping requires that no live ndarray view
      still exports the buffer; a block whose view survived the task
      teardown (e.g. kept alive by a reference cycle awaiting GC) is
      left pinned rather than half-released — the memory then goes back
      with the next retire that finds it collectable, or at process
      exit.
    * *File mappings* (``mmap:`` tokens): dropping the cache entry is
      always safe, refcount regardless — a surviving view keeps the
      mapping alive through its ``base`` chain and the OS reclaims the
      pages when the last view dies, so there is nothing to pin.
    """
    for name in names:
        with _ATTACHED_LOCK:
            cached = _ATTACHED.pop(name, None)
        if cached is None:
            continue
        block, array = cached
        del cached
        if not isinstance(block, shared_memory.SharedMemory):
            continue
        if sys.getrefcount(array) > 2:
            # A task still holds views into this block (the cache's
            # reference plus getrefcount's argument account for 2):
            # unmapping now would raise, so keep it pinned.
            with _ATTACHED_LOCK:
                _ATTACHED[name] = (block, array)
            continue
        del array
        try:
            block.close()
        except BufferError:  # pragma: no cover - late export
            # Pin the handle so its __del__ does not retry (and warn);
            # the mapping is freed at process exit.
            _UNRELEASABLE.append(block)


def dumps(obj, pool: SharedArrayPool) -> bytes:
    """Pickle ``obj`` with every large ndarray published through ``pool``."""
    buffer = BytesIO()
    _PlanePickler(buffer, pool).dump(obj)
    return buffer.getvalue()


def loads(payload: bytes):
    """Worker-side inverse of :func:`dumps` (attaches shared blocks)."""
    return _PlaneUnpickler(BytesIO(payload)).load()
