"""Publish NumPy arrays to workers once, via POSIX shared memory.

A sweep's workers all need the same read-only substrate: the graph's
CSR ``indptr``/``indices``, the union-multigraph planes, per-arc weight
and alias tables, partition labels. Pickling those into every worker
costs O(workers x arrays) copies and, at paper scale, dominates
executor startup. This module instead publishes each large array to a
``multiprocessing.shared_memory`` block exactly once and replaces it
inside the pickle stream with a *persistent id* — a small
``(name, dtype, shape)`` token. Workers resolve tokens by attaching the
named block and wrapping it in a read-only ndarray view: zero copies,
one physical instance of the substrate regardless of worker count.

The mechanism is object-agnostic: :func:`dumps` pickles any object
graph (samplers, :class:`~repro.graph.adjacency.Graph` instances,
:class:`~repro.graph.union.UnionCSR`, partitions) and every ndarray at
least ``threshold`` bytes big rides shared memory automatically, so new
sampler designs get the treatment without registering anything.

Lifecycle: the parent owns the blocks — keep the
:class:`SharedArrayPool` alive until every worker has exited, then
:meth:`SharedArrayPool.close` unlinks them. Workers attach untracked
(they never own a block) and drop their handles at process exit.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from io import BytesIO
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "PoolChain",
    "SharedArrayPool",
    "active_pool",
    "dumps",
    "loads",
    "shared_pool",
]

#: Arrays smaller than this ride the pickle stream directly; the tiny
#: ones are cheaper to copy than to publish and attach.
DEFAULT_THRESHOLD_BYTES = 16_384

_TOKEN_KIND = "repro-shm-ndarray"


class SharedArrayPool:
    """Parent-side registry of arrays published to shared memory.

    One pool per executor run. Arrays are deduplicated by object
    identity, so the graph's ``indices`` referenced by several samplers
    is published once; the pool keeps a reference to every published
    source array, which also pins its ``id`` for the dedup map.
    """

    def __init__(self, threshold: int = DEFAULT_THRESHOLD_BYTES):
        self.threshold = int(threshold)
        self._blocks: list[shared_memory.SharedMemory] = []
        self._tokens: dict[int, tuple] = {}
        self._pinned: list[np.ndarray] = []

    def publish(self, array: np.ndarray) -> tuple:
        """The persistent-id token of ``array``, publishing on first use."""
        token = self._tokens.get(id(array))
        if token is not None:
            return token
        source = np.ascontiguousarray(array)
        block = shared_memory.SharedMemory(create=True, size=max(source.nbytes, 1))
        np.ndarray(source.shape, dtype=source.dtype, buffer=block.buf)[...] = source
        token = (_TOKEN_KIND, block.name, source.dtype.str, source.shape)
        self._blocks.append(block)
        self._tokens[id(array)] = token
        self._pinned.append(array)
        return token

    @property
    def num_published(self) -> int:
        """Number of distinct arrays published so far."""
        return len(self._blocks)

    def close(self) -> None:
        """Release and unlink every published block (parent side)."""
        for block in self._blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks.clear()
        self._tokens.clear()
        self._pinned.clear()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PoolChain:
    """Publication view over a long-lived pool plus a short-lived one.

    ``publish`` reuses the primary pool's token when the array is
    already published there (plan resources, pre-published once per
    plan run) and otherwise publishes into the overlay (cell-local
    substrate, unlinked when the cell's run finishes). Exposes the
    ``publish``/``threshold`` surface the plane pickler needs.
    """

    def __init__(self, primary: SharedArrayPool, overlay: SharedArrayPool):
        self._primary = primary
        self._overlay = overlay
        self.threshold = overlay.threshold

    def publish(self, array: np.ndarray) -> tuple:
        token = self._primary._tokens.get(id(array))
        if token is not None:
            return token
        return self._overlay.publish(array)


#: Innermost-wins stack of ambient pools (see :func:`shared_pool`).
_POOL_STACK: list[SharedArrayPool] = []


@contextmanager
def shared_pool(threshold: int = DEFAULT_THRESHOLD_BYTES):
    """Scope one :class:`SharedArrayPool` over several executor runs.

    The plan runner (:mod:`repro.runtime.plan`) wraps a whole plan in
    one pool so that arrays shared between cells — the Facebook world's
    graph behind every Table 2 / Fig. 5-7 cell, a dataset stand-in
    behind several Fig. 4 design cells — are published to shared memory
    exactly once for the plan, not once per sweep. Executors consult
    :func:`active_pool` and leave an ambient pool open when their run
    finishes; the blocks are unlinked when this context exits.
    """
    pool = SharedArrayPool(threshold)
    _POOL_STACK.append(pool)
    try:
        yield pool
    finally:
        _POOL_STACK.remove(pool)
        pool.close()


def active_pool() -> "SharedArrayPool | None":
    """The innermost ambient pool, or ``None`` outside any scope."""
    return _POOL_STACK[-1] if _POOL_STACK else None


class _PlanePickler(pickle.Pickler):
    """Pickler that swaps big ndarrays for shared-memory tokens."""

    def __init__(self, file, pool: SharedArrayPool):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = pool

    def persistent_id(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= self._pool.threshold
        ):
            return self._pool.publish(obj)
        return None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach a block without resource-tracker ownership (worker side).

    On Python >= 3.13 ``track=False`` expresses exactly that. Older
    versions register the name again on attach, but the tracker's cache
    is a set shared with the parent, so the re-registration is a no-op
    and the parent's ``unlink`` still retires the entry cleanly.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


#: Process-lifetime cache of attached blocks. ``SharedMemory.__del__``
#: closes its mapping, so every handle whose buffer backs a live array
#: view must stay referenced — the attaching process (a short-lived
#: worker, or a test doing an in-process round trip) pins them here and
#: they are released at process exit.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


class _PlaneUnpickler(pickle.Unpickler):
    """Unpickler resolving tokens to read-only shared-memory views."""

    def persistent_load(self, pid):
        kind, name, dtype, shape = pid
        if kind != _TOKEN_KIND:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        cached = _ATTACHED.get(name)
        if cached is None:
            block = _attach(name)
            array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
            array.flags.writeable = False
            cached = (block, array)
            _ATTACHED[name] = cached
        return cached[1]


def dumps(obj, pool: SharedArrayPool) -> bytes:
    """Pickle ``obj`` with every large ndarray published through ``pool``."""
    buffer = BytesIO()
    _PlanePickler(buffer, pool).dump(obj)
    return buffer.getvalue()


def loads(payload: bytes):
    """Worker-side inverse of :func:`dumps` (attaches shared blocks)."""
    return _PlaneUnpickler(BytesIO(payload)).load()
