"""Process-wide runtime telemetry: spans, counters, gauges, exporters.

The parallel stack (batched kernels -> shared-memory executor ->
SweepPlan -> DAG scheduler -> fault-tolerant pool) is a black box at
run time without this layer: where does wall clock go — rung compute,
ladder drain, shm publish, scheduler idle? This module answers that
with a disabled-by-default event plane:

* **spans** — named, categorised intervals (``t_start``/``dur`` in
  monotonic microseconds, ``pid``/``tid``, free-form attrs);
* **instants** — point events (failover, degradation, injected faults);
* **counters** — additive totals (bytes published, retries, hits);
* **gauges** — high-water marks (peak RSS, live shm bytes).

Recording is a list append under a short lock — "lock-free enough" for
the call rates here (tens of events per rung, not per node). Workers
record into a local :class:`TelemetryRecorder` and ship a drained
payload back over the existing pool reply channel (a ``"telemetry"``
command/reply pair, piggybacked like heartbeats); the parent merges
remote payloads into the ambient recorder. ``CLOCK_MONOTONIC`` is
system-wide on Linux, so parent and worker timestamps interleave on one
timeline without translation.

Two exporters:

* :meth:`TelemetryRecorder.write_trace` — Chrome/Perfetto trace-event
  JSON (open in https://ui.perfetto.dev or ``chrome://tracing``): one
  timeline row per pool worker and per driver thread, plan cells and
  ladder rungs as nested spans, failover/hang/degradation as instant
  markers;
* :meth:`TelemetryRecorder.write_metrics` — a flat ``metrics.json``
  summary: per-phase totals, worker utilization %, shm bytes
  published/retired, cache/replay hit counts, failover retries.

Hard contracts (determinism point 6 in :mod:`repro.runtime`):
telemetry is **output-neutral** — timestamps never touch the data
path, so sweep/plan outputs are byte-identical with telemetry on or
off at any worker count — and **near-zero overhead when disabled**:
every module-level helper fast-paths on ``_RECORDER is None`` and
``span()`` returns a shared no-op context manager.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "METRICS_SCHEMA",
    "TelemetryRecorder",
    "counter",
    "enabled",
    "gauge",
    "instant",
    "now_us",
    "recorder",
    "span",
    "span_in",
    "telemetry_scope",
    "validate_metrics",
    "validate_metrics_file",
    "validate_trace",
    "validate_trace_file",
    "worker_collector",
]

#: Schema tag stamped into (and required of) every metrics summary.
METRICS_SCHEMA = "repro-metrics-v1"

#: Counters always present in a metrics summary, so consumers (CI
#: schema checks, bench rows) can rely on the keys even for runs where
#: a subsystem never fired.
_STANDARD_COUNTERS = (
    "shm.published_bytes",
    "shm.retired_bytes",
    "shm.published_blocks",
    "pool.workers_spawned",
    "failover.recoveries",
    "faults.injected",
    "checkpoint.saves",
    "checkpoint.rungs_loaded",
    "checkpoint.quarantined",
    "checkpoint.sweep_cache_hits",
    "plan.cells_replayed",
    "planes.built",
    "planes.built_bytes",
    "planes.hit",
    "planes.hit_bytes",
    "planes.quarantined",
)


def _now_us() -> int:
    """Microseconds on the system-wide monotonic clock."""
    return time.monotonic_ns() // 1000


def now_us() -> int:
    """Public clock for call sites recording manual spans."""
    return _now_us()


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, if knowable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes everywhere else.
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


class _NullSpan:
    """Shared no-op context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_start")

    def __init__(self, recorder, name, cat, args):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._start = _now_us()
        return self

    def __exit__(self, *exc):
        self._recorder.add_span(
            self._name, self._cat, self._start, _now_us() - self._start,
            self._args,
        )
        return False


class TelemetryRecorder:
    """In-memory event sink for one process.

    The driver owns the ambient recorder (installed by
    :func:`telemetry_scope`); each pool worker task builds its own and
    ships :meth:`drain` output back for :meth:`merge_remote`. All
    methods are thread-safe; record-side cost is one short critical
    section appending a dict.
    """

    def __init__(self, process_label: str | None = None):
        self.pid = os.getpid()
        self.started_us = _now_us()
        self.finished_us: int | None = None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._process_names: dict[int, str] = {
            self.pid: process_label or "driver"
        }
        self._thread_names: dict[tuple[int, int], str] = {}

    # -- recording -----------------------------------------------------
    def _remember_thread(self, pid: int, tid: int) -> None:
        # Caller holds self._lock. Lazily label rows with the Python
        # thread name so plan cell threads read as "repro-plan_2", not
        # a bare tid; name_thread() overrides.
        key = (pid, tid)
        if key not in self._thread_names:
            self._thread_names[key] = threading.current_thread().name

    def add_span(self, name, cat, start_us, dur_us, args=None) -> None:
        """Record a complete event from explicit timestamps."""
        pid, tid = os.getpid(), threading.get_native_id()
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": int(start_us), "dur": max(int(dur_us), 1),
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._remember_thread(pid, tid)
            self._events.append(event)

    def span(self, name: str, cat: str = "runtime", **args):
        """Context manager timing its body as one span."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "runtime", **args) -> None:
        """Record a point event (rendered as an arrow marker)."""
        pid, tid = os.getpid(), threading.get_native_id()
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "p",
            "ts": _now_us(), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._remember_thread(pid, tid)
            self._events.append(event)

    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to an additive total."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water mark (max wins across updates/merges)."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    def name_process(self, pid: int, name: str) -> None:
        with self._lock:
            self._process_names[pid] = name

    def name_thread(self, name: str) -> None:
        """Label the calling thread's timeline row."""
        key = (os.getpid(), threading.get_native_id())
        with self._lock:
            self._thread_names[key] = name

    # -- worker shipping -----------------------------------------------
    def drain(self) -> dict:
        """Snapshot-and-reset; the worker-to-parent wire payload."""
        rss = _peak_rss_bytes()
        with self._lock:
            if rss is not None:
                current = self._gauges.get("worker_peak_rss_bytes", 0)
                self._gauges["worker_peak_rss_bytes"] = max(current, rss)
            payload = {
                "events": self._events,
                "counters": self._counters,
                "gauges": self._gauges,
                "process_names": dict(self._process_names),
                "thread_names": dict(self._thread_names),
            }
            self._events = []
            self._counters = {}
            self._gauges = {}
        return payload

    def merge_remote(self, payload: dict | None) -> None:
        """Fold a worker's drained payload into this recorder."""
        if not payload:
            return
        with self._lock:
            self._events.extend(payload.get("events") or ())
            for name, value in (payload.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (payload.get("gauges") or {}).items():
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            self._process_names.update(payload.get("process_names") or {})
            self._thread_names.update(payload.get("thread_names") or {})

    # -- export --------------------------------------------------------
    def finish(self) -> None:
        """Close the recording window and stamp the driver's peak RSS."""
        self.finished_us = _now_us()
        rss = _peak_rss_bytes()
        if rss is not None:
            self.gauge("driver_peak_rss_bytes", rss)

    def _snapshot(self):
        with self._lock:
            return (
                list(self._events),
                dict(self._counters),
                dict(self._gauges),
                dict(self._process_names),
                dict(self._thread_names),
            )

    def trace_events(self) -> list[dict]:
        """Chrome trace-event list: metadata rows + normalized events."""
        events, _, _, process_names, thread_names = self._snapshot()
        base = self.started_us
        for event in events:
            base = min(base, event["ts"])
        out: list[dict] = []
        seen_pids = {event["pid"] for event in events} | set(process_names)
        for pid in sorted(seen_pids):
            name = process_names.get(pid, f"pid {pid}")
            out.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        for (pid, tid), name in sorted(thread_names.items()):
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        for event in events:
            shifted = dict(event)
            shifted["ts"] = event["ts"] - base
            out.append(shifted)
        return out

    def write_trace(self, path: str | os.PathLike) -> Path:
        """Write Chrome/Perfetto ``trace.json``; returns the path."""
        path = Path(path)
        document = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.runtime.telemetry"},
        }
        path.write_text(json.dumps(document) + "\n")
        return path

    def metrics_summary(self) -> dict:
        """Flat roll-up of the recording window.

        ``phases`` aggregates span wall time by category/name;
        ``workers`` reports per-worker busy seconds and utilization
        (union of that worker's span intervals over the window — fair
        under the persistent pool even when spans nest); ``failover``
        lists every recovery/degradation instant so those events are
        never silently dropped, whatever path (fresh, from-samples,
        plan cell) recorded them.
        """
        events, counters, gauges, process_names, _ = self._snapshot()
        end_us = self.finished_us if self.finished_us is not None else _now_us()
        wall_us = max(end_us - self.started_us, 1)

        phases: dict[str, dict[str, dict]] = {}
        by_pid: dict[int, list[tuple[int, int]]] = {}
        failover_events: list[dict] = []
        for event in events:
            if event["ph"] == "X":
                bucket = phases.setdefault(event["cat"], {}).setdefault(
                    event["name"], {"count": 0, "seconds": 0.0}
                )
                bucket["count"] += 1
                bucket["seconds"] += event["dur"] / 1e6
                by_pid.setdefault(event["pid"], []).append(
                    (event["ts"], event["ts"] + event["dur"])
                )
            elif event["ph"] == "i" and event["cat"] == "failover":
                entry = {"event": event["name"]}
                entry.update(event.get("args") or {})
                failover_events.append(entry)
        for cat in phases:
            for bucket in phases[cat].values():
                bucket["seconds"] = round(bucket["seconds"], 6)

        worker_pids = {
            pid for pid, name in process_names.items()
            if name.startswith("worker")
        }
        workers: dict[str, dict] = {}
        for pid in sorted(worker_pids):
            busy_us = _union_length(by_pid.get(pid, []))
            workers[str(pid)] = {
                "busy_seconds": round(busy_us / 1e6, 6),
                "utilization": round(min(busy_us / wall_us, 1.0), 4),
            }

        for name in _STANDARD_COUNTERS:
            counters.setdefault(name, 0)
        return {
            "schema": METRICS_SCHEMA,
            "wall_seconds": round(wall_us / 1e6, 6),
            "phases": phases,
            "counters": counters,
            "gauges": gauges,
            "workers": workers,
            "failover": {
                "recoveries": int(counters.get("failover.recoveries", 0)),
                "events": failover_events,
            },
        }

    def write_metrics(self, path: str | os.PathLike) -> Path:
        """Write the ``metrics.json`` summary; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.metrics_summary(), indent=2) + "\n")
        return path


def _union_length(intervals: list[tuple[int, int]]) -> int:
    """Total length of the union of [start, end) intervals."""
    if not intervals:
        return 0
    intervals.sort()
    total = 0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return total + (current_end - current_start)


# ----------------------------------------------------------------------
# Ambient recorder: module-level guarded call sites
# ----------------------------------------------------------------------
_STACK: list[TelemetryRecorder] = []
_RECORDER: TelemetryRecorder | None = None

#: Fallback counter sink inside pool workers (no ambient recorder there
#: by design): the live task collector, installed by
#: :func:`worker_collector` so module-level :func:`counter` calls from
#: substrate layers ship with the task's payload. Never receives spans.
_WORKER_SINK: TelemetryRecorder | None = None


def enabled() -> bool:
    """Is an ambient recorder installed in this process?"""
    return _RECORDER is not None


def recorder() -> TelemetryRecorder | None:
    """The ambient recorder, or ``None`` when telemetry is off."""
    return _RECORDER


@contextmanager
def telemetry_scope(
    trace: str | os.PathLike | None = None,
    metrics: str | os.PathLike | None = None,
    process_label: str = "driver",
):
    """Install an ambient recorder; optionally export files on exit.

    ``with telemetry_scope(trace="trace.json") as rec: run_experiment(...)``
    records every instrumented call site under the scope (including
    pool workers, whose events ship back over the reply channel) and
    writes ``trace.json`` when the block ends. Scopes nest; the
    innermost wins.
    """
    global _RECORDER
    rec = TelemetryRecorder(process_label=process_label)
    rec.name_thread(threading.current_thread().name)
    _STACK.append(rec)
    _RECORDER = rec
    try:
        yield rec
    finally:
        if rec in _STACK:
            _STACK.remove(rec)
        _RECORDER = _STACK[-1] if _STACK else None
        rec.finish()
        if trace is not None:
            rec.write_trace(trace)
        if metrics is not None:
            rec.write_metrics(metrics)


def span(name: str, cat: str = "runtime", **args):
    """Time a block under the ambient recorder; no-op when disabled."""
    rec = _RECORDER
    if rec is None:
        return _NULL_SPAN
    return _Span(rec, name, cat, args)


def span_in(rec: TelemetryRecorder | None, name, cat="runtime", **args):
    """Like :func:`span` against an explicit (possibly None) recorder.

    Worker-side call sites hold their collector as a local — ambient
    state does not survive the fork/spawn boundary coherently — and
    this keeps them null-safe without branching at every site.
    """
    if rec is None:
        return _NULL_SPAN
    return _Span(rec, name, cat, args)


def instant(name: str, cat: str = "runtime", **args) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.instant(name, cat=cat, **args)


def counter(name: str, value: float = 1) -> None:
    rec = _RECORDER if _RECORDER is not None else _WORKER_SINK
    if rec is not None:
        rec.counter(name, value)


def gauge(name: str, value: float) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.gauge(name, value)


def worker_collector(requested) -> tuple[TelemetryRecorder | None, bool]:
    """Resolve the recorder a shard task should record into.

    Returns ``(collector, ship)``. ``requested`` is the task cfg's
    ``"telemetry"`` flag. In a pool worker process the task gets a
    fresh local recorder whose payload must ship back (``ship=True``).
    Under the in-process degradation channel the "worker" shares the
    driver's pid, so spans land directly in the ambient recorder and
    nothing ships. A recorder inherited through ``fork`` (pid mismatch)
    is never recorded into.
    """
    global _WORKER_SINK
    if not requested:
        return None, False
    ambient = _RECORDER
    if ambient is not None and ambient.pid == os.getpid():
        return ambient, False
    collector = TelemetryRecorder(
        process_label=f"worker {os.getpid()}"
    )
    # Process-global *counter* sink: substrate layers (the derived-plane
    # store, the shared-memory pool) record counters through the
    # module-level helpers, which have no task collector in hand. Spans
    # stay strictly task-local; counters are additive, so even when two
    # concurrent tasks of one pool worker race for the sink, every
    # increment ships and the parent's merge preserves the totals.
    _WORKER_SINK = collector
    return collector, True


def reset_for_worker() -> None:
    """Drop fork-inherited recorders (parent pid != ours)."""
    global _RECORDER, _WORKER_SINK
    if _RECORDER is not None and _RECORDER.pid != os.getpid():
        _STACK.clear()
        _RECORDER = None
    if _WORKER_SINK is not None and _WORKER_SINK.pid != os.getpid():
        _WORKER_SINK = None


# ----------------------------------------------------------------------
# Schema validation (shared by tests and the CI smoke job)
# ----------------------------------------------------------------------
def _fail(message: str):
    from repro.exceptions import ReproError  # deferred: keep stdlib-only import

    raise ReproError(message)


def validate_trace(data) -> int:
    """Check Chrome trace-event shape; returns the span count.

    Raises :class:`~repro.exceptions.ReproError` naming the first
    offending event.
    """
    if not isinstance(data, dict):
        _fail("trace document must be a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        _fail("trace document must carry a traceEvents list")
    spans = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(f"traceEvents[{index}] is not an object")
        where = f"traceEvents[{index}] ({event.get('name')!r})"
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                _fail(f"{where} missing {key!r}")
        ph = event["ph"]
        if ph not in ("X", "i", "M"):
            _fail(f"{where} has unknown phase {ph!r}")
        if ph in ("X", "i"):
            if not isinstance(event.get("ts"), (int, float)):
                _fail(f"{where} needs a numeric ts")
            if "cat" not in event:
                _fail(f"{where} missing cat")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(f"{where} needs a non-negative dur")
            spans += 1
        if ph == "M" and "name" not in event.get("args", {}):
            _fail(f"{where} metadata needs args.name")
    if spans == 0:
        _fail("trace contains no complete spans")
    return spans


def validate_metrics(data) -> dict:
    """Check a metrics summary; returns it for chaining."""
    if not isinstance(data, dict):
        _fail("metrics document must be a JSON object")
    if data.get("schema") != METRICS_SCHEMA:
        _fail(
            f"metrics schema {data.get('schema')!r} != {METRICS_SCHEMA!r}"
        )
    wall = data.get("wall_seconds")
    if not isinstance(wall, (int, float)) or wall <= 0:
        _fail("wall_seconds must be a positive number")
    for key in ("phases", "counters", "gauges", "workers"):
        if not isinstance(data.get(key), dict):
            _fail(f"metrics must carry a {key!r} object")
    counters = data["counters"]
    for name in _STANDARD_COUNTERS:
        if name not in counters:
            _fail(f"metrics counters missing {name!r}")
    for pid, row in data["workers"].items():
        utilization = row.get("utilization")
        if not isinstance(utilization, (int, float)) or not (
            0 <= utilization <= 1
        ):
            _fail(
                f"worker {pid} utilization {utilization!r} outside [0, 1]"
            )
        if not isinstance(row.get("busy_seconds"), (int, float)):
            _fail(f"worker {pid} missing busy_seconds")
    failover = data.get("failover")
    if not isinstance(failover, dict) or not isinstance(
        failover.get("recoveries"), int
    ) or not isinstance(failover.get("events"), list):
        _fail(
            "metrics must carry failover.{recoveries,events}"
        )
    return data


def validate_trace_file(path: str | os.PathLike) -> int:
    return validate_trace(json.loads(Path(path).read_text()))


def validate_metrics_file(path: str | os.PathLike) -> dict:
    return validate_metrics(json.loads(Path(path).read_text()))
