"""Sampling designs and measurement scenarios (Section 3 of the paper)."""

from repro.sampling.alias import AliasTables, build_alias_tables
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import (
    BatchNodeSample,
    is_registered,
    register_kernel,
    registered_kernel,
    sample_many,
)
from repro.sampling.convergence import (
    autocorrelation,
    effective_sample_size,
    geweke_z,
    recommend_thinning,
)
from repro.sampling.independence import (
    UniformIndependenceSampler,
    WeightedIndependenceSampler,
)
from repro.sampling.observation import (
    InducedObservation,
    StarObservation,
    observe_both,
    observe_induced,
    observe_star,
)
from repro.sampling.merge import merge_star_observations
from repro.sampling.multigraph import MultigraphRandomWalkSampler
from repro.sampling.stratified import StratifiedWeightedWalkSampler
from repro.sampling.traversal import BreadthFirstSampler, ForestFireSampler
from repro.sampling.walks import (
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    WeightedRandomWalkSampler,
)

__all__ = [
    "NodeSample",
    "Sampler",
    "BatchNodeSample",
    "sample_many",
    "register_kernel",
    "registered_kernel",
    "is_registered",
    "AliasTables",
    "build_alias_tables",
    "UniformIndependenceSampler",
    "WeightedIndependenceSampler",
    "RandomWalkSampler",
    "MetropolisHastingsSampler",
    "WeightedRandomWalkSampler",
    "RandomWalkWithJumpsSampler",
    "StratifiedWeightedWalkSampler",
    "MultigraphRandomWalkSampler",
    "BreadthFirstSampler",
    "ForestFireSampler",
    "InducedObservation",
    "StarObservation",
    "observe_induced",
    "observe_star",
    "observe_both",
    "merge_star_observations",
    "geweke_z",
    "autocorrelation",
    "effective_sample_size",
    "recommend_thinning",
]
