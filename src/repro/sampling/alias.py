"""Walker alias tables for O(1) weighted next-hop sampling.

The weighted walks (WRW and its S-WRW subclass) pick the next hop by
inverse-CDF lookup over per-run local cumulative sums — O(log d) per
step, and the dominant cost of the batched S-WRW kernel. An alias table
[Walker 1977; Vose 1991] answers the same categorical draw in O(1):
split each neighbor run into ``d`` equal-probability buckets, each
holding at most two outcomes (the bucket's own arc and one *alias*
arc), then a single uniform variate selects a bucket and which of the
two outcomes to take.

Tables are CSR-aligned: one table per adjacency run, flattened into two
arrays the length of ``indices``. For arc slot ``a = indptr[v] + j``:

* ``prob[a]`` — probability of keeping arc ``a`` itself given bucket
  ``j`` was hit;
* ``alias[a]`` — the **global arc id** taken otherwise (so the next-hop
  gather is ``indices[alias[a]]``, no per-run re-indexing).

A draw for node ``v`` with degree ``d`` consumes one uniform ``r``:

>>> u = r * d; j = floor(u); a = indptr[v] + j
>>> hop = indices[a] if (u - j) < prob[a] else indices[alias[a]]

— the same single variate per step the binary search consumes, which
keeps the RNG stream consumption pattern of the walk unchanged.

Equivalence contract
--------------------
Alias draws map the uniform variate to neighbors *differently* than the
inverse-CDF search, so trajectories differ draw-by-draw; the contract
is **statistical**, not bitwise: for every node the alias table encodes
exactly the probabilities ``w_j / strength(v)`` (up to float rounding in
table construction), so the next-hop *distribution* is the binary
search's. ``tests/sampling/test_equivalence.py`` enforces this with an
exact per-run probability reconstruction plus a chi-square test on
sampled next-hop frequencies. The batched alias kernel, in turn, is
bit-for-bit identical to the sequential alias walk per RNG stream —
the usual kernel contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError

__all__ = ["AliasTables", "build_alias_tables"]


@dataclass(frozen=True)
class AliasTables:
    """CSR-aligned alias tables, one per adjacency run.

    Attributes
    ----------
    prob:
        Keep-probability per arc slot, shape of ``indices``.
    alias:
        Global arc id of each slot's alias outcome, same shape. Slots
        that never divert (probability-1 buckets) alias to themselves.
    """

    prob: np.ndarray
    alias: np.ndarray

    def reconstructed_probabilities(self, indptr: np.ndarray) -> np.ndarray:
        """Per-arc selection probabilities implied by the tables.

        For run ``v`` of degree ``d``, bucket ``j`` is hit with
        probability ``1/d`` and contributes ``prob`` to its own arc and
        ``1 - prob`` to its alias arc. Summing the contributions
        recovers the encoded categorical distribution — used by the
        equivalence tests to check the tables against
        ``w_j / strength(v)`` exactly.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        degrees = np.diff(indptr)
        inv_deg = np.zeros(len(degrees))
        nonzero = degrees > 0
        inv_deg[nonzero] = 1.0 / degrees[nonzero]
        per_bucket = np.repeat(inv_deg, degrees)
        out = per_bucket * self.prob
        np.add.at(out, self.alias, per_bucket * (1.0 - self.prob))
        return out


def build_alias_tables(
    indptr: np.ndarray,
    arc_weights: np.ndarray,
    strengths: np.ndarray | None = None,
) -> AliasTables:
    """Build per-run Walker alias tables for CSR-aligned arc weights.

    Parameters
    ----------
    indptr:
        CSR offsets delimiting the runs, shape ``(N + 1,)``.
    arc_weights:
        Strictly positive weight per arc, aligned with the CSR
        ``indices`` (length ``indptr[-1]``).
    strengths:
        Optional per-run totals to normalize by — pass the walk's
        precomputed strengths (the last entry of each run's local
        cumulative sum) so the alias probabilities use the *same*
        normalizer as the binary-search path. Recomputed per run when
        omitted.

    Construction is Vose's O(d) two-stack method per run — O(total
    arcs) once per sampler, amortized over every subsequent O(1) draw.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    weights = np.asarray(arc_weights, dtype=float)
    if weights.ndim != 1 or len(weights) != int(indptr[-1]):
        raise SamplingError(
            "arc_weights must be one-dimensional and aligned with indptr "
            f"(expected length {int(indptr[-1])}, got {weights.shape})"
        )
    if len(weights) and weights.min() <= 0:
        raise SamplingError("alias tables require strictly positive weights")
    prob = np.ones(len(weights))
    alias = np.arange(len(weights), dtype=np.int64)
    for v in range(len(indptr) - 1):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        d = hi - lo
        if d <= 1:
            continue  # degree-1 runs keep the prob=1 self-alias default
        total = float(strengths[v]) if strengths is not None else float(
            weights[lo:hi].sum()
        )
        if total <= 0:
            raise SamplingError(f"run {v} has non-positive total weight")
        scaled = (weights[lo:hi] * (d / total)).tolist()
        small = [j for j in range(d) if scaled[j] < 1.0]
        large = [j for j in range(d) if scaled[j] >= 1.0]
        while small and large:
            s = small.pop()
            big = large.pop()
            prob[lo + s] = scaled[s]
            alias[lo + s] = lo + big
            scaled[big] -= 1.0 - scaled[s]
            if scaled[big] < 1.0:
                small.append(big)
            else:
                large.append(big)
        # Leftover buckets (either stack, by float rounding) keep their
        # initialized probability-1 self-alias.
    return AliasTables(prob=prob, alias=alias)
