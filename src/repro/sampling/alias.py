"""Walker alias tables for O(1) weighted next-hop sampling.

The weighted walks (WRW and its S-WRW subclass) pick the next hop by
inverse-CDF lookup over per-run local cumulative sums — O(log d) per
step, and the dominant cost of the batched S-WRW kernel. An alias table
[Walker 1977; Vose 1991] answers the same categorical draw in O(1):
split each neighbor run into ``d`` equal-probability buckets, each
holding at most two outcomes (the bucket's own arc and one *alias*
arc), then a single uniform variate selects a bucket and which of the
two outcomes to take.

Tables are CSR-aligned: one table per adjacency run, flattened into two
arrays the length of ``indices``. For arc slot ``a = indptr[v] + j``:

* ``prob[a]`` — probability of keeping arc ``a`` itself given bucket
  ``j`` was hit;
* ``alias[a]`` — the **global arc id** taken otherwise (so the next-hop
  gather is ``indices[alias[a]]``, no per-run re-indexing).

A draw for node ``v`` with degree ``d`` consumes one uniform ``r``:

>>> u = r * d; j = floor(u); a = indptr[v] + j
>>> hop = indices[a] if (u - j) < prob[a] else indices[alias[a]]

— the same single variate per step the binary search consumes, which
keeps the RNG stream consumption pattern of the walk unchanged.

Equivalence contract
--------------------
Alias draws map the uniform variate to neighbors *differently* than the
inverse-CDF search, so trajectories differ draw-by-draw; the contract
is **statistical**, not bitwise: for every node the alias table encodes
exactly the probabilities ``w_j / strength(v)`` (up to float rounding in
table construction), so the next-hop *distribution* is the binary
search's. ``tests/sampling/test_equivalence.py`` enforces this with an
exact per-run probability reconstruction plus a chi-square test on
sampled next-hop frequencies. The batched alias kernel, in turn, is
bit-for-bit identical to the sequential alias walk per RNG stream —
the usual kernel contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError

__all__ = [
    "AliasTables",
    "build_alias_planes",
    "build_alias_tables",
    "derived_alias_tables",
]


@dataclass(frozen=True)
class AliasTables:
    """CSR-aligned alias tables, one per adjacency run.

    Attributes
    ----------
    prob:
        Keep-probability per arc slot, shape of ``indices``.
    alias:
        Global arc id of each slot's alias outcome, same shape. Slots
        that never divert (probability-1 buckets) alias to themselves.
    """

    prob: np.ndarray
    alias: np.ndarray

    def reconstructed_probabilities(self, indptr: np.ndarray) -> np.ndarray:
        """Per-arc selection probabilities implied by the tables.

        For run ``v`` of degree ``d``, bucket ``j`` is hit with
        probability ``1/d`` and contributes ``prob`` to its own arc and
        ``1 - prob`` to its alias arc. Summing the contributions
        recovers the encoded categorical distribution — used by the
        equivalence tests to check the tables against
        ``w_j / strength(v)`` exactly.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        degrees = np.diff(indptr)
        inv_deg = np.zeros(len(degrees))
        nonzero = degrees > 0
        inv_deg[nonzero] = 1.0 / degrees[nonzero]
        per_bucket = np.repeat(inv_deg, degrees)
        out = per_bucket * self.prob
        np.add.at(out, self.alias, per_bucket * (1.0 - self.prob))
        return out


def build_alias_tables(
    indptr: np.ndarray,
    arc_weights: np.ndarray,
    strengths: np.ndarray | None = None,
) -> AliasTables:
    """Build per-run Walker alias tables for CSR-aligned arc weights.

    Parameters
    ----------
    indptr:
        CSR offsets delimiting the runs, shape ``(N + 1,)``.
    arc_weights:
        Strictly positive weight per arc, aligned with the CSR
        ``indices`` (length ``indptr[-1]``).
    strengths:
        Optional per-run totals to normalize by — pass the walk's
        precomputed strengths (the last entry of each run's local
        cumulative sum) so the alias probabilities use the *same*
        normalizer as the binary-search path. Recomputed per run when
        omitted.

    Construction is a vectorized Vose pass: instead of a Python
    two-stack loop per run (O(arcs) interpreter iterations — the old
    bottleneck at paper scale), all runs advance their small/large
    queues *simultaneously*. Each round pairs, for every still-active
    run, the head of its under-full queue with the head of its
    over-full queue in a handful of fancy-indexed NumPy ops; a run goes
    inactive once either queue drains. Total element-work stays O(total
    arcs), spread over at most ``max_degree`` rounds, and every pairing
    performs the identical float arithmetic the scalar algorithm would
    — so the tables encode the exact ``w_j / strength(v)``
    probabilities either way (queue *order* differs from the historic
    stack order, which is irrelevant to the encoded distribution).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    weights = np.asarray(arc_weights, dtype=float)
    if weights.ndim != 1 or len(weights) != int(indptr[-1]):
        raise SamplingError(
            "arc_weights must be one-dimensional and aligned with indptr "
            f"(expected length {int(indptr[-1])}, got {weights.shape})"
        )
    if len(weights) and weights.min() <= 0:
        raise SamplingError("alias tables require strictly positive weights")
    num_arcs = len(weights)
    num_runs = len(indptr) - 1
    prob = np.ones(num_arcs)
    alias = np.arange(num_arcs, dtype=np.int64)
    degrees = np.diff(indptr)
    multi = degrees > 1  # degree<=1 runs keep the prob=1 self-alias default
    if not bool(multi.any()):
        return AliasTables(prob=prob, alias=alias)
    run_ids = np.repeat(np.arange(num_runs, dtype=np.int64), degrees)
    if strengths is not None:
        totals = np.asarray(strengths, dtype=float)
    else:
        totals = np.bincount(run_ids, weights=weights, minlength=num_runs)
    bad = multi & ~(totals > 0)
    if bool(bad.any()):
        raise SamplingError(
            f"run {int(np.argmax(bad))} has non-positive total weight"
        )
    # Bucket loads d * w_j / total, computed per arc in one pass.
    scale = np.zeros(num_runs)
    scale[multi] = degrees[multi] / totals[multi]
    scaled = weights * scale[run_ids]

    # Per-run FIFO queues laid out in the arc-slot space: run v's queue
    # segment is [indptr[v], indptr[v+1]) — capacity d suffices because
    # an arc enters the small queue at most once (initially, or when its
    # over-full bucket is demoted after a pairing).
    small_q = np.empty(num_arcs, dtype=np.int64)
    large_q = np.empty(num_arcs, dtype=np.int64)
    small_head = indptr[:-1].copy()
    small_tail = indptr[:-1].copy()
    large_head = indptr[:-1].copy()
    large_tail = indptr[:-1].copy()
    eligible = multi[run_ids]
    is_small = eligible & (scaled < 1.0)
    is_large = eligible & (scaled >= 1.0)
    for queue, tail, members in (
        (small_q, small_tail, is_small),
        (large_q, large_tail, is_large),
    ):
        slots = np.flatnonzero(members)
        counts = np.bincount(run_ids[slots], minlength=num_runs)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rank = np.arange(len(slots)) - offsets[run_ids[slots]]
        queue[indptr[run_ids[slots]] + rank] = slots
        tail += counts

    active = np.flatnonzero((small_head < small_tail) & (large_head < large_tail))
    while len(active):
        small = small_q[small_head[active]]
        large = large_q[large_head[active]]
        prob[small] = scaled[small]
        alias[small] = large
        scaled[large] -= 1.0 - scaled[small]
        small_head[active] += 1
        demoted = scaled[large] < 1.0
        if bool(demoted.any()):
            runs = active[demoted]
            small_q[small_tail[runs]] = large[demoted]
            small_tail[runs] += 1
            large_head[runs] += 1
        active = active[
            (small_head[active] < small_tail[active])
            & (large_head[active] < large_tail[active])
        ]
    # Leftover queue entries (either side, by float rounding) keep their
    # initialized probability-1 self-alias.
    return AliasTables(prob=prob, alias=alias)


def build_alias_planes(
    writer,
    indptr: np.ndarray,
    arc_weights: np.ndarray,
    strengths: np.ndarray | None = None,
    chunk_arcs: int | None = None,
) -> None:
    """Chunked out-of-core twin of :func:`build_alias_tables`.

    Vose construction is per-run independent — every queue, pairing,
    and float update touches only one adjacency run's slots — so
    building one node block of whole runs at a time (the sub-CSR
    ``indptr[first:stop+1] - lo``) performs the identical arithmetic,
    and rebasing the block's alias ids by its arc offset recovers the
    global ids bit for bit, in O(chunk) peak RAM.
    """
    from repro.graph.planes import DEFAULT_CHUNK_ARCS, node_blocks

    if chunk_arcs is None:
        chunk_arcs = DEFAULT_CHUNK_ARCS
    indptr = np.asanyarray(indptr)
    num_arcs = int(indptr[-1])
    prob = writer.create("prob", np.float64, (num_arcs,))
    alias = writer.create("alias", np.int64, (num_arcs,))
    for first, stop, lo, hi in node_blocks(indptr, chunk_arcs):
        sub_indptr = np.asarray(indptr[first : stop + 1]) - lo
        sub_strengths = (
            np.asarray(strengths[first:stop]) if strengths is not None else None
        )
        tables = build_alias_tables(
            sub_indptr, np.asarray(arc_weights[lo:hi]), sub_strengths
        )
        prob[lo:hi] = tables.prob
        alias[lo:hi] = tables.alias + lo


def derived_alias_tables(
    indptr: np.ndarray,
    arc_weights: np.ndarray,
    strengths: np.ndarray | None = None,
) -> AliasTables:
    """Alias tables via the derived-plane store of :mod:`repro.graph.planes`.

    The drop-in spill-aware form of :func:`build_alias_tables`: RAM-mode
    runs build in RAM like always, while under the memmap storage plane
    the ``prob``/``alias`` planes build chunked on disk, reopen as
    read-only mappings, and warm runs (same ``indptr`` / weights /
    strengths bytes) skip construction entirely.
    """
    indptr = np.asanyarray(indptr)
    weights = np.asanyarray(arc_weights)
    if weights.ndim != 1 or len(weights) != int(indptr[-1]):
        raise SamplingError(
            "arc_weights must be one-dimensional and aligned with indptr "
            f"(expected length {int(indptr[-1])}, got {weights.shape})"
        )
    store_sources: tuple = (indptr, weights)
    if strengths is not None:
        store_sources = store_sources + (np.asanyarray(strengths),)
    from repro.graph.planes import plane_store_for

    store = plane_store_for(*store_sources, nbytes=len(weights) * 16)
    if store is None:
        return build_alias_tables(indptr, arc_weights, strengths)
    planes = store.get_or_build(
        "alias-tables",
        params={"strengths": strengths is not None},
        sources=store_sources,
        build=lambda writer: build_alias_planes(
            writer, indptr, arc_weights, strengths
        ),
    )
    return AliasTables(prob=planes["prob"], alias=planes["alias"])
