"""Walker alias tables for O(1) weighted next-hop sampling.

The weighted walks (WRW and its S-WRW subclass) pick the next hop by
inverse-CDF lookup over per-run local cumulative sums — O(log d) per
step, and the dominant cost of the batched S-WRW kernel. An alias table
[Walker 1977; Vose 1991] answers the same categorical draw in O(1):
split each neighbor run into ``d`` equal-probability buckets, each
holding at most two outcomes (the bucket's own arc and one *alias*
arc), then a single uniform variate selects a bucket and which of the
two outcomes to take.

Tables are CSR-aligned: one table per adjacency run, flattened into two
arrays the length of ``indices``. For arc slot ``a = indptr[v] + j``:

* ``prob[a]`` — probability of keeping arc ``a`` itself given bucket
  ``j`` was hit;
* ``alias[a]`` — the **global arc id** taken otherwise (so the next-hop
  gather is ``indices[alias[a]]``, no per-run re-indexing).

A draw for node ``v`` with degree ``d`` consumes one uniform ``r``:

>>> u = r * d; j = floor(u); a = indptr[v] + j
>>> hop = indices[a] if (u - j) < prob[a] else indices[alias[a]]

— the same single variate per step the binary search consumes, which
keeps the RNG stream consumption pattern of the walk unchanged.

Equivalence contract
--------------------
Alias draws map the uniform variate to neighbors *differently* than the
inverse-CDF search, so trajectories differ draw-by-draw; the contract
is **statistical**, not bitwise: for every node the alias table encodes
exactly the probabilities ``w_j / strength(v)`` (up to float rounding in
table construction), so the next-hop *distribution* is the binary
search's. ``tests/sampling/test_equivalence.py`` enforces this with an
exact per-run probability reconstruction plus a chi-square test on
sampled next-hop frequencies. The batched alias kernel, in turn, is
bit-for-bit identical to the sequential alias walk per RNG stream —
the usual kernel contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError

__all__ = ["AliasTables", "build_alias_tables"]


@dataclass(frozen=True)
class AliasTables:
    """CSR-aligned alias tables, one per adjacency run.

    Attributes
    ----------
    prob:
        Keep-probability per arc slot, shape of ``indices``.
    alias:
        Global arc id of each slot's alias outcome, same shape. Slots
        that never divert (probability-1 buckets) alias to themselves.
    """

    prob: np.ndarray
    alias: np.ndarray

    def reconstructed_probabilities(self, indptr: np.ndarray) -> np.ndarray:
        """Per-arc selection probabilities implied by the tables.

        For run ``v`` of degree ``d``, bucket ``j`` is hit with
        probability ``1/d`` and contributes ``prob`` to its own arc and
        ``1 - prob`` to its alias arc. Summing the contributions
        recovers the encoded categorical distribution — used by the
        equivalence tests to check the tables against
        ``w_j / strength(v)`` exactly.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        degrees = np.diff(indptr)
        inv_deg = np.zeros(len(degrees))
        nonzero = degrees > 0
        inv_deg[nonzero] = 1.0 / degrees[nonzero]
        per_bucket = np.repeat(inv_deg, degrees)
        out = per_bucket * self.prob
        np.add.at(out, self.alias, per_bucket * (1.0 - self.prob))
        return out


def build_alias_tables(
    indptr: np.ndarray,
    arc_weights: np.ndarray,
    strengths: np.ndarray | None = None,
) -> AliasTables:
    """Build per-run Walker alias tables for CSR-aligned arc weights.

    Parameters
    ----------
    indptr:
        CSR offsets delimiting the runs, shape ``(N + 1,)``.
    arc_weights:
        Strictly positive weight per arc, aligned with the CSR
        ``indices`` (length ``indptr[-1]``).
    strengths:
        Optional per-run totals to normalize by — pass the walk's
        precomputed strengths (the last entry of each run's local
        cumulative sum) so the alias probabilities use the *same*
        normalizer as the binary-search path. Recomputed per run when
        omitted.

    Construction is a vectorized Vose pass: instead of a Python
    two-stack loop per run (O(arcs) interpreter iterations — the old
    bottleneck at paper scale), all runs advance their small/large
    queues *simultaneously*. Each round pairs, for every still-active
    run, the head of its under-full queue with the head of its
    over-full queue in a handful of fancy-indexed NumPy ops; a run goes
    inactive once either queue drains. Total element-work stays O(total
    arcs), spread over at most ``max_degree`` rounds, and every pairing
    performs the identical float arithmetic the scalar algorithm would
    — so the tables encode the exact ``w_j / strength(v)``
    probabilities either way (queue *order* differs from the historic
    stack order, which is irrelevant to the encoded distribution).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    weights = np.asarray(arc_weights, dtype=float)
    if weights.ndim != 1 or len(weights) != int(indptr[-1]):
        raise SamplingError(
            "arc_weights must be one-dimensional and aligned with indptr "
            f"(expected length {int(indptr[-1])}, got {weights.shape})"
        )
    if len(weights) and weights.min() <= 0:
        raise SamplingError("alias tables require strictly positive weights")
    num_arcs = len(weights)
    num_runs = len(indptr) - 1
    prob = np.ones(num_arcs)
    alias = np.arange(num_arcs, dtype=np.int64)
    degrees = np.diff(indptr)
    multi = degrees > 1  # degree<=1 runs keep the prob=1 self-alias default
    if not bool(multi.any()):
        return AliasTables(prob=prob, alias=alias)
    run_ids = np.repeat(np.arange(num_runs, dtype=np.int64), degrees)
    if strengths is not None:
        totals = np.asarray(strengths, dtype=float)
    else:
        totals = np.bincount(run_ids, weights=weights, minlength=num_runs)
    bad = multi & ~(totals > 0)
    if bool(bad.any()):
        raise SamplingError(
            f"run {int(np.argmax(bad))} has non-positive total weight"
        )
    # Bucket loads d * w_j / total, computed per arc in one pass.
    scale = np.zeros(num_runs)
    scale[multi] = degrees[multi] / totals[multi]
    scaled = weights * scale[run_ids]

    # Per-run FIFO queues laid out in the arc-slot space: run v's queue
    # segment is [indptr[v], indptr[v+1]) — capacity d suffices because
    # an arc enters the small queue at most once (initially, or when its
    # over-full bucket is demoted after a pairing).
    small_q = np.empty(num_arcs, dtype=np.int64)
    large_q = np.empty(num_arcs, dtype=np.int64)
    small_head = indptr[:-1].copy()
    small_tail = indptr[:-1].copy()
    large_head = indptr[:-1].copy()
    large_tail = indptr[:-1].copy()
    eligible = multi[run_ids]
    is_small = eligible & (scaled < 1.0)
    is_large = eligible & (scaled >= 1.0)
    for queue, tail, members in (
        (small_q, small_tail, is_small),
        (large_q, large_tail, is_large),
    ):
        slots = np.flatnonzero(members)
        counts = np.bincount(run_ids[slots], minlength=num_runs)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rank = np.arange(len(slots)) - offsets[run_ids[slots]]
        queue[indptr[run_ids[slots]] + rank] = slots
        tail += counts

    active = np.flatnonzero((small_head < small_tail) & (large_head < large_tail))
    while len(active):
        small = small_q[small_head[active]]
        large = large_q[large_head[active]]
        prob[small] = scaled[small]
        alias[small] = large
        scaled[large] -= 1.0 - scaled[small]
        small_head[active] += 1
        demoted = scaled[large] < 1.0
        if bool(demoted.any()):
            runs = active[demoted]
            small_q[small_tail[runs]] = large[demoted]
            small_tail[runs] += 1
            large_head[runs] += 1
        active = active[
            (small_head[active] < small_tail[active])
            & (large_head[active] < large_tail[active])
        ]
    # Leftover queue entries (either side, by float rounding) keep their
    # initialized probability-1 self-alias.
    return AliasTables(prob=prob, alias=alias)
