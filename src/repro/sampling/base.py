"""Node samples and the sampler interface (Section 3 of the paper).

A :class:`NodeSample` is an ordered multiset of node draws (sampling is
*with replacement*; crawls revisit nodes) together with the per-draw
sampling weights ``w(v)``. The weights are known only up to a constant —
exactly the situation of Section 5.1 — and equal 1 for uniform designs.

Samplers produce samples; the estimators in :mod:`repro.core` consume
*observations* built from samples (:mod:`repro.sampling.observation`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph

__all__ = ["NodeSample", "Sampler"]


@dataclass(frozen=True)
class NodeSample:
    """An ordered with-replacement sample of nodes.

    Attributes
    ----------
    nodes:
        Node ids in draw order, shape ``(n,)``.
    weights:
        Per-draw sampling weights ``w(v)`` (proportional to the inclusion
        probability ``pi(v)``; see Eq. 10-11 of the paper). All ones for
        uniform designs.
    design:
        Short name of the producing design (``"uis"``, ``"rw"``, ...);
        informational.
    uniform:
        True when the design is (asymptotically) uniform, enabling the
        Section 4 estimators without reweighting.
    """

    nodes: np.ndarray
    weights: np.ndarray
    design: str = "unknown"
    uniform: bool = False

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes, dtype=np.int64)
        weights = np.asarray(self.weights, dtype=float)
        if nodes.ndim != 1 or weights.ndim != 1:
            raise SamplingError("nodes and weights must be one-dimensional")
        if len(nodes) != len(weights):
            raise SamplingError(
                f"{len(nodes)} nodes but {len(weights)} weights"
            )
        if len(weights) and weights.min() <= 0:
            raise SamplingError("sampling weights must be strictly positive")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "weights", weights)

    @property
    def size(self) -> int:
        """Number of draws ``|S|`` (with multiplicity)."""
        return len(self.nodes)

    def num_distinct(self) -> int:
        """Number of distinct nodes in the sample."""
        return len(np.unique(self.nodes))

    def thin(self, period: int) -> "NodeSample":
        """Keep every ``period``-th draw (Section 5.4's thinning).

        Reduces autocorrelation of crawl samples at the cost of
        discarding information.
        """
        if period < 1:
            raise SamplingError(f"thinning period must be >= 1, got {period}")
        return NodeSample(
            self.nodes[::period],
            self.weights[::period],
            design=f"{self.design}/thin{period}" if period > 1 else self.design,
            uniform=self.uniform,
        )

    def truncate(self, n: int) -> "NodeSample":
        """First ``n`` draws — used for NRMSE-vs-sample-size sweeps."""
        if n < 0:
            raise SamplingError(f"n must be non-negative, got {n}")
        return NodeSample(
            self.nodes[:n], self.weights[:n], design=self.design, uniform=self.uniform
        )

    def concat(self, other: "NodeSample") -> "NodeSample":
        """Concatenate two samples from the *same* design."""
        if self.uniform != other.uniform:
            raise SamplingError("cannot concatenate uniform and non-uniform samples")
        return NodeSample(
            np.concatenate((self.nodes, other.nodes)),
            np.concatenate((self.weights, other.weights)),
            design=self.design,
            uniform=self.uniform,
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"NodeSample(size={self.size}, design={self.design!r}, "
            f"uniform={self.uniform})"
        )


class Sampler(abc.ABC):
    """Interface for node-sampling designs.

    A sampler is bound to a graph at construction (and, for stratified
    designs, to a partition) and emits :class:`NodeSample` objects of any
    requested size.
    """

    def __init__(self, graph: Graph):
        if graph.num_nodes == 0:
            raise SamplingError("cannot sample from an empty graph")
        self._graph = graph

    @property
    def graph(self) -> Graph:
        """The graph being sampled."""
        return self._graph

    @property
    @abc.abstractmethod
    def design(self) -> str:
        """Short design name (``"uis"``, ``"rw"``, ...)."""

    @property
    @abc.abstractmethod
    def uniform(self) -> bool:
        """Whether the (asymptotic) sampling distribution is uniform."""

    @abc.abstractmethod
    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        """Draw a sample of ``n`` nodes (with replacement)."""

    def sample_many(
        self,
        n: int,
        replications: int,
        rng: np.random.Generator | int | None = None,
    ):
        """Draw ``replications`` independent size-``n`` samples at once.

        Returns a :class:`repro.sampling.batch.BatchNodeSample` whose
        replicate ``r`` is bit-for-bit identical to
        ``self.sample(n, rng=spawn_rngs(rng, replications)[r])``. Walk
        designs advance all replicates as one vectorized frontier
        (:mod:`repro.sampling.batch`); other designs loop per stream.
        """
        from repro.sampling.batch import sample_many  # deferred: avoids a cycle

        return sample_many(self, n, replications, rng=rng)

    def _check_size(self, n: int) -> None:
        if n <= 0:
            raise SamplingError(f"sample size must be positive, got {n}")
