"""Batched multi-walker sampling engine.

Running the R replicate crawls of an NRMSE sweep one at a time costs
O(R x steps) Python-level loop iterations — the dominant wall-clock of
the replicated experiments (Figs. 3, 4, 6). This module advances all R
walkers *simultaneously* as one vectorized frontier, the multidimensional
random-walk idea of Ribeiro & Towsley (IMC 2010): per step, one
``indptr``/``indices`` gather over the whole frontier, one column of
pre-drawn variates, and one acceptance/jump mask, for ~R-wide NumPy ops
instead of R Python iterations.

Equivalence contract
--------------------
``sample_many(sampler, n, R, rng)`` spawns the *same* per-replicate RNG
streams as the sequential harness (``spawn_rngs(rng, R)``) and consumes
each stream in the same order the sequential sampler would (start draw,
then the pre-drawn variate blocks). Every float comparison, truncation,
and cumulative-sum lookup mirrors the sequential kernels exactly, so the
batched trajectory of replicate ``r`` is **bit-for-bit identical** to
``sampler.sample(n, rng=streams[r])``.
``tests/sampling/test_equivalence.py`` enforces this for *every*
exported design — including the multigraph union-CSR walk and the
alias-table weighted walks — and ``tests/sampling/test_batch.py`` digs
into the walk kernels specifically.

The kernel registry
-------------------
Which designs batch, and how, is an open registry rather than a
hardcoded table. A *kernel* is a callable

    ``kernel(sampler, n, streams) -> (nodes, weights)``

returning two ``(R, n)`` arrays (replicate r's draws in row r), where
``streams`` is the list of R spawned generators whose consumption
pattern the kernel must mirror. Register one for your sampler class
with :func:`register_kernel`::

    from repro.sampling.batch import register_kernel

    @register_kernel(MyWalkSampler)
    def _my_kernel(sampler, n, streams):
        ...
        return nodes, weights

Resolution follows the method-resolution order of the sampler's class,
so subclasses inherit their parent's kernel automatically (S-WRW rides
the WRW kernel this way) and can override it with their own
registration. Registering ``None`` declares an *explicit* sequential
fallback — the design is stated to have no batched kernel (today only
the independence designs, whose per-draw cost is a single array op
already) and ``sample_many`` runs the per-stream loop without probing
further. The without-replacement traversal baselines (BFS, Forest
Fire) used to be ``None`` fallbacks too; they now register
set-semantics frontier kernels in :mod:`repro.sampling.traversal`.
Unregistered designs fall back the same way, so callers can treat every
design uniformly; :func:`registered_kernel` reports the kernel in use
and :func:`is_registered` distinguishes a declared fallback from a
design the registry has never heard of.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.multigraph import MultigraphRandomWalkSampler
from repro.sampling.walks import (
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    WeightedRandomWalkSampler,
)

__all__ = [
    "BatchNodeSample",
    "sample_many",
    "sample_streams",
    "register_kernel",
    "registered_kernel",
    "is_registered",
]

#: Steps of pre-drawn variates held in memory per (block, replicate) at
#: any time. Peak variate memory is O(blocks x window x R) instead of
#: the O(blocks x n x R) cube the engine used to pre-draw — the window
#: is what keeps paper-scale walks (n ~ 1e5) memory-bounded. Override
#: with the ``REPRO_VARIATE_WINDOW`` environment variable.
DEFAULT_VARIATE_WINDOW = 4096


@dataclass(frozen=True)
class BatchNodeSample:
    """R replicate samples stored as two ``(R, n)`` matrices.

    Per-replicate :class:`NodeSample` objects are *views* into the
    matrices (no copies): each row is C-contiguous, so
    :meth:`replicate` costs O(1) memory regardless of walk length.

    Attributes
    ----------
    nodes:
        Node ids, shape ``(R, n)``, row ``r`` = draws of replicate ``r``.
    weights:
        Per-draw sampling weights, same shape.
    design / uniform:
        As on :class:`NodeSample`, shared by all replicates.
    """

    nodes: np.ndarray
    weights: np.ndarray
    design: str = "unknown"
    uniform: bool = False

    def __post_init__(self) -> None:
        nodes = np.ascontiguousarray(self.nodes, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=float)
        if nodes.ndim != 2 or weights.ndim != 2:
            raise SamplingError("batch nodes and weights must be 2-D (R, n)")
        if nodes.shape != weights.shape:
            raise SamplingError(
                f"nodes shape {nodes.shape} != weights shape {weights.shape}"
            )
        if nodes.shape[0] == 0 or nodes.shape[1] == 0:
            raise SamplingError("batch must hold at least one replicate and draw")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "weights", weights)

    @property
    def num_replicates(self) -> int:
        """Number of replicate walks ``R``."""
        return self.nodes.shape[0]

    @property
    def draws_per_replicate(self) -> int:
        """Draws per replicate ``n``."""
        return self.nodes.shape[1]

    def replicate(self, r: int) -> NodeSample:
        """Replicate ``r`` as a :class:`NodeSample` view (no copy)."""
        if not 0 <= r < self.num_replicates:
            raise SamplingError(
                f"replicate {r} outside [0, {self.num_replicates})"
            )
        return NodeSample(
            self.nodes[r],
            self.weights[r],
            design=self.design,
            uniform=self.uniform,
        )

    def replicates(self) -> list[NodeSample]:
        """All replicates as :class:`NodeSample` views."""
        return [self.replicate(r) for r in range(self.num_replicates)]

    def __len__(self) -> int:
        return self.num_replicates

    def __iter__(self):
        for r in range(self.num_replicates):
            yield self.replicate(r)

    def __repr__(self) -> str:
        return (
            f"BatchNodeSample(replicates={self.num_replicates}, "
            f"draws={self.draws_per_replicate}, design={self.design!r})"
        )


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------
_UNSET = object()

#: sampler class -> kernel callable, or None for an explicit fallback.
_KERNELS: dict[type, object] = {}


def register_kernel(sampler_type: type, kernel: object = _UNSET):
    """Register a batched frontier kernel for a :class:`Sampler` class.

    ``kernel(sampler, n, streams)`` must return ``(nodes, weights)`` as
    ``(R, n)`` arrays whose row ``r`` is bit-for-bit what
    ``sampler.sample(n, rng=streams[r])`` would produce. Pass ``None``
    to declare an explicit sequential fallback. With the kernel
    argument omitted, acts as a decorator::

        @register_kernel(MySampler)
        def _my_kernel(sampler, n, streams): ...

    Resolution is MRO-based (most-derived registration wins), so
    subclasses inherit kernels and may re-register to override.
    """
    if not (isinstance(sampler_type, type) and issubclass(sampler_type, Sampler)):
        raise SamplingError(
            f"register_kernel needs a Sampler subclass, got {sampler_type!r}"
        )
    if kernel is _UNSET:
        def decorator(fn):
            _KERNELS[sampler_type] = fn
            return fn

        return decorator
    if kernel is not None and not callable(kernel):
        raise SamplingError("kernel must be callable or None")
    _KERNELS[sampler_type] = kernel
    return kernel


def registered_kernel(sampler: Sampler):
    """The kernel ``sample_many`` will use for ``sampler``.

    Walks the sampler's MRO and returns the first registration found —
    a kernel callable, or ``None`` when the design runs the sequential
    per-stream fallback. ``None`` covers both an explicit fallback
    registration and a design nobody registered; use
    :func:`is_registered` to tell the two apart.
    """
    for cls in type(sampler).__mro__:
        if cls in _KERNELS:
            return _KERNELS[cls]
    return None


def is_registered(sampler_type: type) -> bool:
    """Whether ``sampler_type`` (or an ancestor) made a registration.

    True for designs with a batch kernel *and* for designs that
    explicitly declared the sequential fallback (``register_kernel(cls,
    None)``); False only for designs the registry has never heard of —
    i.e. ports that were never considered, as opposed to decided
    against.
    """
    if not isinstance(sampler_type, type):
        sampler_type = type(sampler_type)
    return any(cls in _KERNELS for cls in sampler_type.__mro__)


def sample_many(
    sampler: Sampler,
    n: int,
    replications: int,
    rng: np.random.Generator | int | None = None,
) -> BatchNodeSample:
    """Draw ``replications`` independent samples of size ``n`` at once.

    Designs with a registered kernel (RW, MHRW, WRW/S-WRW with either
    next-hop engine, RWJ, the multigraph union-CSR walk, and the BFS /
    Forest Fire traversal baselines) advance as one vectorized
    frontier; every other design falls back to a sequential per-stream
    loop. Either way replicate ``r`` equals
    ``sampler.sample(n, rng=spawn_rngs(rng, R)[r])`` bit for bit.
    """
    if replications < 1:
        raise SamplingError(
            f"replications must be positive, got {replications}"
        )
    gen = ensure_rng(rng)
    streams = spawn_rngs(gen, replications)
    return sample_streams(sampler, n, streams)


def sample_streams(
    sampler: Sampler,
    n: int,
    streams: list[np.random.Generator],
    engine: str = "batched",
) -> BatchNodeSample:
    """Draw one replicate per *explicit* RNG stream.

    The shard entry point of the parallel sweep executor
    (:mod:`repro.runtime`): a worker that owns replicates ``i..j`` of a
    sweep passes the generators reconstructed from ``seeds[i..j]`` and
    gets exactly the rows ``sample_many`` would have produced for those
    replicates — stream identity, not shard assignment, determines the
    trajectory. With ``engine="sequential"`` (or for designs without a
    kernel) each stream runs the per-replicate reference sampler.
    """
    if not streams:
        raise SamplingError("need at least one replicate stream")
    if engine not in ("batched", "sequential"):
        raise SamplingError(
            f"unknown engine {engine!r}; use 'batched' or 'sequential'"
        )
    sampler._check_size(n)
    kernel = registered_kernel(sampler) if engine == "batched" else None
    if kernel is not None:
        nodes, weights = kernel(sampler, n, streams)
        return BatchNodeSample(
            nodes, weights, design=sampler.design, uniform=sampler.uniform
        )
    return _stack_sequential(sampler, n, streams)


def _stack_sequential(
    sampler: Sampler, n: int, streams: list[np.random.Generator]
) -> BatchNodeSample:
    """Fallback: per-stream sequential sampling, stacked into a batch."""
    samples = [sampler.sample(n, rng=stream) for stream in streams]
    return BatchNodeSample(
        np.stack([s.nodes for s in samples]),
        np.stack([s.weights for s in samples]),
        design=samples[0].design,
        uniform=samples[0].uniform,
    )


# ----------------------------------------------------------------------
# Shared frontier plumbing
# ----------------------------------------------------------------------
def _active_window(total: int, window: int | None = None) -> int:
    """Resolve the variate window size (clamped to ``[1, total]``)."""
    if window is None:
        env = os.environ.get("REPRO_VARIATE_WINDOW", "").strip()
        if env:
            try:
                window = int(env)
            except ValueError:
                raise SamplingError(
                    f"REPRO_VARIATE_WINDOW must be an integer, got {env!r}"
                ) from None
        else:
            window = DEFAULT_VARIATE_WINDOW
    if window < 1:
        raise SamplingError(f"variate window must be >= 1, got {window}")
    return min(window, total)


class _FrontierVariates:
    """Chunked step-window view of the kernels' pre-drawn variate cube.

    The sequential samplers consume each replicate stream block-major:
    the start draw, then ``blocks`` consecutive ``random(total)`` calls.
    Pre-drawing that whole cube costs O(blocks x total x R) peak memory
    — the reason paper-scale sweeps used to blow up. This object holds
    only a ``(blocks, window, R)`` buffer and refills it as the frontier
    advances, replaying each stream through one *cursor generator per
    block*: cursor ``b`` of stream ``r`` is a copy of the post-start
    stream state advanced past the ``b * total`` doubles the earlier
    blocks own, so its windowed ``random`` calls yield exactly the
    slice ``stream.random(total)`` (block ``b``) would have — chunked
    ``Generator.random`` produces the identical value stream, which is
    what preserves the engine's bit-equality contract.
    """

    __slots__ = ("_cursors", "_buf", "_total", "_lo", "_hi")

    def __init__(
        self,
        streams: list[np.random.Generator],
        blocks: int,
        total: int,
        window: int | None = None,
    ):
        window = _active_window(total, window)
        self._total = total
        self._buf = np.empty((blocks, window, len(streams)))
        self._lo = self._hi = 0
        self._cursors: list[list[np.random.Generator]] = []
        scratch = np.empty(window)
        for stream in streams:
            per_block = [stream]
            for b in range(1, blocks):
                cursor = copy.deepcopy(stream)
                # Skip the doubles owned by blocks 0..b-1 by replaying
                # them in windowed chunks (never materializing them).
                skip = b * total
                while skip:
                    step = min(skip, window)
                    cursor.random(out=scratch[:step])
                    skip -= step
                per_block.append(cursor)
            self._cursors.append(per_block)

    def step(self, i: int) -> np.ndarray:
        """Variate rows for step ``i``: a ``(blocks, R)`` view."""
        if i >= self._hi:
            self._fill(i)
        return self._buf[:, i - self._lo, :]

    def _fill(self, start: int) -> None:
        width = min(self._buf.shape[1], self._total - start)
        for r, per_block in enumerate(self._cursors):
            for b, cursor in enumerate(per_block):
                self._buf[b, :width, r] = cursor.random(width)
        self._lo = start
        self._hi = start + width


def _frontier_setup(
    sampler: Sampler,
    streams: list[np.random.Generator],
    blocks: int,
    total: int,
    candidates: np.ndarray | None = None,
) -> tuple[np.ndarray, _FrontierVariates]:
    """Starts and windowed variates, consuming each stream sequentially.

    Returns ``(starts, variates)``; ``variates.step(i)`` yields the
    ``(blocks, R)`` variate rows of step ``i``, drawn lazily in
    step-windows (see :class:`_FrontierVariates`) so peak variate
    memory is O(blocks x window x R), not O(blocks x total x R). Per
    stream the consumption order is unchanged from the sequential
    samplers: the start draw first, then ``blocks`` consecutive
    ``random(total)`` blocks. ``candidates`` are the valid random-start
    nodes (default: positive-degree nodes of the sampler's graph; the
    multigraph kernel passes positive *total*-degree nodes instead).
    """
    replications = len(streams)
    starts = np.empty(replications, dtype=np.int64)
    if sampler._start is None and candidates is None:
        candidates = np.flatnonzero(sampler._graph.degrees() > 0)
    for r, stream in enumerate(streams):
        if sampler._start is not None:
            starts[r] = sampler._start
        else:
            starts[r] = candidates[stream.integers(0, len(candidates))]
    return starts, _FrontierVariates(streams, blocks, total)


def _isolated_mask(degrees: np.ndarray) -> np.ndarray | None:
    """Boolean isolated-node mask, or ``None`` when no node is isolated.

    Precomputed once per kernel run so the per-step dead-walker check is
    a single boolean gather (and, on the common all-connected graphs,
    skipped entirely) instead of a per-step degree gather.
    """
    mask = degrees == 0
    return mask if bool(mask.any()) else None


def _check_frontier(isolated: np.ndarray, cur: np.ndarray, design: str) -> None:
    hit = isolated[cur]
    if np.any(hit):
        node = int(cur[int(np.argmax(hit))])
        raise SamplingError(f"{design} reached isolated node {node}")


# ----------------------------------------------------------------------
# Per-design kernels
# ----------------------------------------------------------------------
def _rw_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    total = n + sampler._burn_in
    cur, variates = _frontier_setup(sampler, streams, 1, total)
    isolated = _isolated_mask(degrees)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        if isolated is not None:
            _check_frontier(isolated, cur, "random walk")
        step_rand = variates.step(i)[0]
        cur = indices[indptr[cur] + (step_rand * degrees[cur]).astype(np.int64)]
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, degrees[nodes].astype(float)


def _mhrw_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    total = n + sampler._burn_in
    cur, variates = _frontier_setup(sampler, streams, 2, total)
    isolated = _isolated_mask(degrees)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        if isolated is not None:
            _check_frontier(isolated, cur, "MHRW")
        proposal_rand, accept_rand = variates.step(i)
        deg = degrees[cur]
        proposal = indices[
            indptr[cur] + (proposal_rand * deg).astype(np.int64)
        ]
        accept = accept_rand * degrees[proposal] <= deg
        cur = np.where(accept, proposal, cur)
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, np.ones_like(nodes, dtype=float)


def _wrw_kernel(sampler, n, streams):
    """WRW/S-WRW dispatch: the sampler's next-hop engine picks the kernel."""
    if sampler.next_hop == "alias":
        return _wrw_alias_kernel(sampler, n, streams)
    return _wrw_search_kernel(sampler, n, streams)


def _wrw_search_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    cumulative = sampler._local_cumulative
    strength = sampler._strength
    total = n + sampler._burn_in
    cur, variates = _frontier_setup(sampler, streams, 1, total)
    isolated = _isolated_mask(graph.degrees())
    last = max(len(cumulative) - 1, 0)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        if isolated is not None:
            _check_frontier(isolated, cur, "weighted walk")
        lo, hi = indptr[cur], indptr[cur + 1]
        target = variates.step(i)[0] * strength[cur]
        # Vectorized binary search: first j in [lo, hi) with
        # cumulative[j] > target — np.searchsorted(..., side="right")
        # semantics, one frontier-wide predicate per halving.
        left, right = lo.copy(), hi.copy()
        while True:
            active = left < right
            if not np.any(active):
                break
            mid = (left + right) >> 1
            go_right = active & (cumulative[np.minimum(mid, last)] <= target)
            left = np.where(go_right, mid + 1, left)
            right = np.where(active & ~go_right, mid, right)
        cur = indices[np.minimum(left, hi - 1)]
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, strength[nodes]


def _wrw_alias_kernel(sampler, n, streams):
    """O(1) next-hop WRW via per-run Walker alias tables.

    Same variate consumption as the search kernel (one uniform per
    step), but the uniform picks an equal-probability bucket and its
    keep/alias outcome instead of driving a log(d) bisection — removing
    the search loop's per-halving frontier-wide passes.
    """
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    strength = sampler._strength
    prob = sampler._alias_tables.prob
    alias = sampler._alias_tables.alias
    total = n + sampler._burn_in
    cur, variates = _frontier_setup(sampler, streams, 1, total)
    isolated = _isolated_mask(degrees)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        if isolated is not None:
            _check_frontier(isolated, cur, "weighted walk")
        u = variates.step(i)[0] * degrees[cur]
        j = u.astype(np.int64)
        arc = indptr[cur] + j
        cur = np.where(u - j < prob[arc], indices[arc], indices[alias[arc]])
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, strength[nodes]


def _rwj_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    num_nodes = graph.num_nodes
    alpha = sampler._alpha
    total = n + sampler._burn_in
    cur, variates = _frontier_setup(sampler, streams, 2, total)
    last = max(len(indices) - 1, 0)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        jump_rand, step_rand = variates.step(i)
        deg = degrees[cur]
        jump = jump_rand * (deg + alpha) < alpha
        # A zero-degree frontier walker always jumps (its rand < 1), so
        # the clamped gather below is never *used* out of range.
        stepped = indices[
            np.minimum(indptr[cur] + (step_rand * deg).astype(np.int64), last)
        ]
        cur = np.where(jump, (step_rand * num_nodes).astype(np.int64), stepped)
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, degrees[nodes].astype(float) + alpha


def _multigraph_kernel(sampler, n, streams):
    """Union-CSR frontier for the multigraph walk.

    Steps on the merged multigraph CSR (:mod:`repro.graph.union`), whose
    per-node relation-ordered arc layout resolves a stub index to the
    same arc the sequential per-relation scan would — one gather per
    step for the whole frontier.
    """
    union = sampler.union
    indptr, indices = union.indptr, union.indices
    degrees = union.total_degrees
    cur, variates = _frontier_setup(
        sampler,
        streams,
        1,
        n,
        candidates=(
            None if sampler._start is not None else np.flatnonzero(degrees > 0)
        ),
    )
    isolated = _isolated_mask(degrees)
    out = np.empty((n, len(streams)), dtype=np.int64)
    for i in range(n):
        if isolated is not None:
            _check_frontier(isolated, cur, "multigraph walk")
        step_rand = variates.step(i)
        cur = indices[indptr[cur] + (step_rand[0] * degrees[cur]).astype(np.int64)]
        out[i] = cur
    nodes = np.ascontiguousarray(out.T)
    return nodes, degrees[nodes].astype(float)


register_kernel(RandomWalkSampler, _rw_kernel)
register_kernel(MetropolisHastingsSampler, _mhrw_kernel)
register_kernel(WeightedRandomWalkSampler, _wrw_kernel)
register_kernel(RandomWalkWithJumpsSampler, _rwj_kernel)
register_kernel(MultigraphRandomWalkSampler, _multigraph_kernel)
