"""Batched multi-walker sampling engine.

Running the R replicate crawls of an NRMSE sweep one at a time costs
O(R x steps) Python-level loop iterations — the dominant wall-clock of
the replicated experiments (Figs. 3, 4, 6). This module advances all R
walkers *simultaneously* as one vectorized frontier, the multidimensional
random-walk idea of Ribeiro & Towsley (IMC 2010): per step, one
``indptr``/``indices`` gather over the whole frontier, one column of
pre-drawn variates, and one acceptance/jump mask, for ~R-wide NumPy ops
instead of R Python iterations.

Equivalence contract
--------------------
``sample_many(sampler, n, R, rng)`` spawns the *same* per-replicate RNG
streams as the sequential harness (``spawn_rngs(rng, R)``) and consumes
each stream in the same order the sequential sampler would (start draw,
then the pre-drawn variate blocks). Every float comparison, truncation,
and cumulative-sum lookup mirrors the sequential kernels exactly, so the
batched trajectory of replicate ``r`` is **bit-for-bit identical** to
``sampler.sample(n, rng=streams[r])``. ``tests/sampling/test_batch.py``
enforces this for all four walk designs (and the S-WRW subclass).

Designs without a batched kernel (independence designs, traversal
baselines, the multigraph walk) fall back to the sequential per-stream
loop but still return a :class:`BatchNodeSample`, so callers can treat
every design uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.walks import (
    MetropolisHastingsSampler,
    RandomWalkSampler,
    RandomWalkWithJumpsSampler,
    WeightedRandomWalkSampler,
    _WalkSampler,
)

__all__ = ["BatchNodeSample", "sample_many"]


@dataclass(frozen=True)
class BatchNodeSample:
    """R replicate samples stored as two ``(R, n)`` matrices.

    Per-replicate :class:`NodeSample` objects are *views* into the
    matrices (no copies): each row is C-contiguous, so
    :meth:`replicate` costs O(1) memory regardless of walk length.

    Attributes
    ----------
    nodes:
        Node ids, shape ``(R, n)``, row ``r`` = draws of replicate ``r``.
    weights:
        Per-draw sampling weights, same shape.
    design / uniform:
        As on :class:`NodeSample`, shared by all replicates.
    """

    nodes: np.ndarray
    weights: np.ndarray
    design: str = "unknown"
    uniform: bool = False

    def __post_init__(self) -> None:
        nodes = np.ascontiguousarray(self.nodes, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=float)
        if nodes.ndim != 2 or weights.ndim != 2:
            raise SamplingError("batch nodes and weights must be 2-D (R, n)")
        if nodes.shape != weights.shape:
            raise SamplingError(
                f"nodes shape {nodes.shape} != weights shape {weights.shape}"
            )
        if nodes.shape[0] == 0 or nodes.shape[1] == 0:
            raise SamplingError("batch must hold at least one replicate and draw")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "weights", weights)

    @property
    def num_replicates(self) -> int:
        """Number of replicate walks ``R``."""
        return self.nodes.shape[0]

    @property
    def draws_per_replicate(self) -> int:
        """Draws per replicate ``n``."""
        return self.nodes.shape[1]

    def replicate(self, r: int) -> NodeSample:
        """Replicate ``r`` as a :class:`NodeSample` view (no copy)."""
        if not 0 <= r < self.num_replicates:
            raise SamplingError(
                f"replicate {r} outside [0, {self.num_replicates})"
            )
        return NodeSample(
            self.nodes[r],
            self.weights[r],
            design=self.design,
            uniform=self.uniform,
        )

    def replicates(self) -> list[NodeSample]:
        """All replicates as :class:`NodeSample` views."""
        return [self.replicate(r) for r in range(self.num_replicates)]

    def __len__(self) -> int:
        return self.num_replicates

    def __iter__(self):
        for r in range(self.num_replicates):
            yield self.replicate(r)

    def __repr__(self) -> str:
        return (
            f"BatchNodeSample(replicates={self.num_replicates}, "
            f"draws={self.draws_per_replicate}, design={self.design!r})"
        )


def sample_many(
    sampler: Sampler,
    n: int,
    replications: int,
    rng: np.random.Generator | int | None = None,
) -> BatchNodeSample:
    """Draw ``replications`` independent samples of size ``n`` at once.

    Walk designs (RW, MHRW, WRW/S-WRW, RWJ) advance as one vectorized
    frontier; every other design falls back to a sequential per-stream
    loop. Either way replicate ``r`` equals
    ``sampler.sample(n, rng=spawn_rngs(rng, R)[r])`` bit for bit.
    """
    if replications < 1:
        raise SamplingError(
            f"replications must be positive, got {replications}"
        )
    sampler._check_size(n)
    gen = ensure_rng(rng)
    streams = spawn_rngs(gen, replications)
    if isinstance(sampler, _WalkSampler):
        kernel = _KERNELS.get(_kernel_key(sampler))
        if kernel is not None:
            nodes, weights = kernel(sampler, n, streams)
            return BatchNodeSample(
                nodes, weights, design=sampler.design, uniform=sampler.uniform
            )
    return _stack_sequential(sampler, n, streams)


def _kernel_key(sampler: _WalkSampler) -> type | None:
    """Most-derived known kernel class (S-WRW reuses the WRW kernel)."""
    for cls in (
        MetropolisHastingsSampler,
        RandomWalkWithJumpsSampler,
        WeightedRandomWalkSampler,
        RandomWalkSampler,
    ):
        if isinstance(sampler, cls):
            return cls
    return None


def _stack_sequential(
    sampler: Sampler, n: int, streams: list[np.random.Generator]
) -> BatchNodeSample:
    """Fallback: per-stream sequential sampling, stacked into a batch."""
    samples = [sampler.sample(n, rng=stream) for stream in streams]
    return BatchNodeSample(
        np.stack([s.nodes for s in samples]),
        np.stack([s.weights for s in samples]),
        design=samples[0].design,
        uniform=samples[0].uniform,
    )


# ----------------------------------------------------------------------
# Shared frontier plumbing
# ----------------------------------------------------------------------
def _frontier_setup(
    sampler: _WalkSampler, streams: list[np.random.Generator], blocks: int, total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Starts and pre-drawn variates, consuming each stream sequentially.

    Returns ``(starts, rand)`` with ``rand`` of shape
    ``(blocks, total, R)``: per stream, the start draw first, then
    ``blocks`` consecutive ``random(total)`` blocks — the exact
    consumption order of the sequential samplers.
    """
    graph = sampler._graph
    replications = len(streams)
    starts = np.empty(replications, dtype=np.int64)
    rand = np.empty((blocks, total, replications))
    if sampler._start is None:
        candidates = np.flatnonzero(graph.degrees() > 0)
    for r, stream in enumerate(streams):
        if sampler._start is not None:
            starts[r] = sampler._start
        else:
            starts[r] = candidates[stream.integers(0, len(candidates))]
        for b in range(blocks):
            rand[b, :, r] = stream.random(total)
    return starts, rand


def _check_frontier_degrees(deg: np.ndarray, cur: np.ndarray, design: str) -> None:
    if np.any(deg == 0):
        node = int(cur[int(np.argmax(deg == 0))])
        raise SamplingError(f"{design} reached isolated node {node}")


# ----------------------------------------------------------------------
# Per-design kernels
# ----------------------------------------------------------------------
def _rw_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    total = n + sampler._burn_in
    cur, rand = _frontier_setup(sampler, streams, 1, total)
    step_rand = rand[0]
    any_isolated = bool(np.any(degrees == 0))
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        deg = degrees[cur]
        if any_isolated:
            _check_frontier_degrees(deg, cur, "random walk")
        cur = indices[indptr[cur] + (step_rand[i] * deg).astype(np.int64)]
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, degrees[nodes].astype(float)


def _mhrw_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    total = n + sampler._burn_in
    cur, rand = _frontier_setup(sampler, streams, 2, total)
    proposal_rand, accept_rand = rand[0], rand[1]
    any_isolated = bool(np.any(degrees == 0))
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        deg = degrees[cur]
        if any_isolated:
            _check_frontier_degrees(deg, cur, "MHRW")
        proposal = indices[
            indptr[cur] + (proposal_rand[i] * deg).astype(np.int64)
        ]
        accept = accept_rand[i] * degrees[proposal] <= deg
        cur = np.where(accept, proposal, cur)
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, np.ones_like(nodes, dtype=float)


def _wrw_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    cumulative = sampler._local_cumulative
    strength = sampler._strength
    total = n + sampler._burn_in
    cur, rand = _frontier_setup(sampler, streams, 1, total)
    step_rand = rand[0]
    any_isolated = bool(np.any(degrees == 0))
    last = max(len(cumulative) - 1, 0)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        if any_isolated:
            _check_frontier_degrees(degrees[cur], cur, "weighted walk")
        lo, hi = indptr[cur], indptr[cur + 1]
        target = step_rand[i] * strength[cur]
        # Vectorized binary search: first j in [lo, hi) with
        # cumulative[j] > target — np.searchsorted(..., side="right")
        # semantics, one frontier-wide predicate per halving.
        left, right = lo.copy(), hi.copy()
        while True:
            active = left < right
            if not np.any(active):
                break
            mid = (left + right) >> 1
            go_right = active & (cumulative[np.minimum(mid, last)] <= target)
            left = np.where(go_right, mid + 1, left)
            right = np.where(active & ~go_right, mid, right)
        cur = indices[np.minimum(left, hi - 1)]
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, strength[nodes]


def _rwj_kernel(sampler, n, streams):
    graph = sampler._graph
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees()
    num_nodes = graph.num_nodes
    alpha = sampler._alpha
    total = n + sampler._burn_in
    cur, rand = _frontier_setup(sampler, streams, 2, total)
    jump_rand, step_rand = rand[0], rand[1]
    last = max(len(indices) - 1, 0)
    out = np.empty((total, len(streams)), dtype=np.int64)
    for i in range(total):
        deg = degrees[cur]
        jump = jump_rand[i] * (deg + alpha) < alpha
        # A zero-degree frontier walker always jumps (its rand < 1), so
        # the clamped gather below is never *used* out of range.
        stepped = indices[
            np.minimum(indptr[cur] + (step_rand[i] * deg).astype(np.int64), last)
        ]
        cur = np.where(jump, (step_rand[i] * num_nodes).astype(np.int64), stepped)
        out[i] = cur
    nodes = np.ascontiguousarray(out[sampler._burn_in :].T)
    return nodes, degrees[nodes].astype(float) + alpha


_KERNELS = {
    RandomWalkSampler: _rw_kernel,
    MetropolisHastingsSampler: _mhrw_kernel,
    WeightedRandomWalkSampler: _wrw_kernel,
    RandomWalkWithJumpsSampler: _rwj_kernel,
}
