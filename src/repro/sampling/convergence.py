"""Walk-convergence diagnostics.

The paper relies on crawls having "adequately converged" (Section 5) —
these diagnostics let users check that, mirroring standard MCMC
practice: Geweke's z-score between early and late walk segments,
autocorrelation of a node statistic along the walk, and the implied
effective sample size.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError

__all__ = ["geweke_z", "autocorrelation", "effective_sample_size", "recommend_thinning"]


def geweke_z(
    values: np.ndarray, first: float = 0.1, last: float = 0.5
) -> float:
    """Geweke diagnostic comparing the walk's head and tail means.

    Parameters
    ----------
    values:
        A scalar statistic per walk step (e.g. the degree of the visited
        node, or an indicator of a category).
    first, last:
        Fractions of the walk used as the early and late segments.

    Returns
    -------
    A z-score; |z| below ~2 is consistent with convergence.
    """
    values = np.asarray(values, dtype=float)
    if len(values) < 10:
        raise SamplingError("geweke_z needs at least 10 steps")
    if not 0 < first < 1 or not 0 < last < 1 or first + last > 1:
        raise SamplingError("need 0 < first, last and first + last <= 1")
    head = values[: int(first * len(values))]
    tail = values[len(values) - int(last * len(values)) :]
    var_head = _spectral_variance(head)
    var_tail = _spectral_variance(tail)
    denom = np.sqrt(var_head / len(head) + var_tail / len(tail))
    if denom == 0:
        return 0.0
    return float((head.mean() - tail.mean()) / denom)


def autocorrelation(values: np.ndarray, max_lag: int = 50) -> np.ndarray:
    """Normalised autocorrelation function up to ``max_lag``.

    ``result[k]`` is the lag-k autocorrelation; ``result[0] == 1``.
    """
    values = np.asarray(values, dtype=float)
    if len(values) < 2:
        raise SamplingError("autocorrelation needs at least 2 steps")
    max_lag = min(max_lag, len(values) - 1)
    centered = values - values.mean()
    variance = float(np.dot(centered, centered))
    if variance == 0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = np.dot(centered[: len(values) - lag], centered[lag:]) / variance
    return out


def effective_sample_size(values: np.ndarray, max_lag: int = 200) -> float:
    """ESS via the initial-positive-sequence truncation of the ACF."""
    values = np.asarray(values, dtype=float)
    acf = autocorrelation(values, max_lag=max_lag)
    tail = acf[1:]
    cutoff = np.argmax(tail <= 0) if np.any(tail <= 0) else len(tail)
    rho_sum = float(tail[:cutoff].sum())
    return len(values) / (1.0 + 2.0 * max(rho_sum, 0.0))


def recommend_thinning(values: np.ndarray, target_acf: float = 0.1) -> int:
    """Smallest thinning period driving the ACF below ``target_acf``.

    The Section 5.4 discussion: thinning reduces correlation at the cost
    of discarding draws. Returns 1 when the walk is already well mixed.
    """
    acf = autocorrelation(values, max_lag=min(500, len(values) - 1))
    below = np.flatnonzero(np.abs(acf[1:]) < target_acf)
    if len(below) == 0:
        return len(acf)
    return int(below[0]) + 1


def _spectral_variance(segment: np.ndarray) -> float:
    """Crude spectral density estimate at frequency zero (batch means)."""
    if len(segment) < 4:
        return float(segment.var())
    batches = max(4, int(np.sqrt(len(segment))))
    size = len(segment) // batches
    means = segment[: batches * size].reshape(batches, size).mean(axis=1)
    return float(means.var(ddof=1) * size)
