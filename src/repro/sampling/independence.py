"""Independence sampling designs (Section 3.1.1): UIS and WIS.

Rarely feasible on real online networks (no sampling frame) but the
conceptual baseline for every crawl, and directly usable in simulation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import register_kernel

__all__ = ["UniformIndependenceSampler", "WeightedIndependenceSampler"]


class UniformIndependenceSampler(Sampler):
    """UIS: i.i.d. uniform draws from the node set, with replacement."""

    @property
    def design(self) -> str:
        return "uis"

    @property
    def uniform(self) -> bool:
        return True

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        nodes = gen.integers(0, self._graph.num_nodes, size=n, dtype=np.int64)
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=True)


class WeightedIndependenceSampler(Sampler):
    """WIS: i.i.d. draws with probability proportional to a node weight.

    Parameters
    ----------
    graph:
        The graph (used for its node count and, with
        ``weights="degree"``, its degree sequence).
    weights:
        Either the string ``"degree"`` (the asymptotic RW design) or an
        explicit positive array of per-node weights.
    """

    def __init__(self, graph: Graph, weights: "np.ndarray | str" = "degree"):
        super().__init__(graph)
        if isinstance(weights, str):
            if weights != "degree":
                raise SamplingError(
                    f"unknown weight spec {weights!r}; use 'degree' or an array"
                )
            w = graph.degrees().astype(float)
            if w.min() <= 0:
                raise SamplingError(
                    "degree-weighted WIS requires minimum degree >= 1 "
                    "(isolated nodes have zero sampling probability)"
                )
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (graph.num_nodes,):
                raise SamplingError(
                    f"weights must have shape ({graph.num_nodes},), got {w.shape}"
                )
            if w.min() <= 0:
                raise SamplingError("WIS weights must be strictly positive")
        self._weights = w
        self._probs = w / w.sum()

    @property
    def design(self) -> str:
        return "wis"

    @property
    def uniform(self) -> bool:
        return False

    @property
    def node_weights(self) -> np.ndarray:
        """The per-node weight array the design draws from."""
        return self._weights

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        nodes = gen.choice(self._graph.num_nodes, size=n, replace=True, p=self._probs)
        nodes = nodes.astype(np.int64)
        return NodeSample(
            nodes, self._weights[nodes], design=self.design, uniform=False
        )


# The independence designs are a single vectorized generator call per
# replicate already — the per-stream loop *is* their batch form. An
# explicit fallback registration records that no frontier kernel is
# missing here.
register_kernel(UniformIndependenceSampler, None)
register_kernel(WeightedIndependenceSampler, None)
