"""Merging observations collected separately.

Section 7.3 of the paper combines "several outcomes of different,
independent sampling techniques" into final estimates. When the raw
samples are still around, concatenate them (``NodeSample.concat``) and
re-observe; but observations are also the natural *archival* format of
a crawl (they contain everything the estimators may use and nothing
more), so this module merges already-built observations directly —
without access to the graph.

Only observations from the same design (same weight scale!) may be
merged: Hansen-Hurwitz ratios assume one weight function. Merging, say,
an RW and a UIS observation would silently mix incomparable weights, so
it is rejected.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.sampling.observation import InducedObservation, StarObservation

__all__ = ["merge_star_observations"]


def merge_star_observations(
    observations: "list[StarObservation]",
) -> StarObservation:
    """Merge star observations of the same design into one.

    Draws are concatenated in the given order; distinct-node tables are
    unioned with multiplicities added. Per-node data (category, weight,
    degree, neighbor histogram) must agree across observations — they
    describe the same static graph — and the first occurrence wins.
    """
    if not observations:
        raise SamplingError("nothing to merge")
    first = observations[0]
    if any(not isinstance(o, StarObservation) for o in observations):
        raise SamplingError("merge_star_observations takes StarObservations")
    if any(o.names != first.names for o in observations):
        raise SamplingError("observations disagree on the category set")
    if any(o.design != first.design or o.uniform != first.uniform for o in observations):
        raise SamplingError(
            "observations come from different designs; their sampling "
            "weights are not on a common scale and cannot be merged"
        )
    if len(observations) == 1:
        return first

    # Union the distinct-node tables.
    all_nodes = np.concatenate([o.distinct_nodes for o in observations])
    union_nodes = np.unique(all_nodes)
    position = {int(v): i for i, v in enumerate(union_nodes)}
    d = len(union_nodes)

    categories = np.zeros(d, dtype=np.int64)
    weights = np.zeros(d)
    degrees = np.zeros(d, dtype=np.int64)
    multiplicities = np.zeros(d, dtype=np.int64)
    filled = np.zeros(d, dtype=bool)
    neighbor_rows: list[tuple[np.ndarray, np.ndarray]] = [None] * d

    draw_chunks: list[np.ndarray] = []
    for obs in observations:
        local_to_union = np.fromiter(
            (position[int(v)] for v in obs.distinct_nodes),
            dtype=np.int64,
            count=obs.num_distinct,
        )
        draw_chunks.append(local_to_union[obs.draw_to_distinct])
        multiplicities_local = obs.distinct_multiplicities
        np.add.at(multiplicities, local_to_union, multiplicities_local)
        fresh = ~filled[local_to_union]
        idx = local_to_union[fresh]
        categories[idx] = obs.distinct_categories[fresh]
        weights[idx] = obs.distinct_weights[fresh]
        degrees[idx] = obs.distinct_degrees[fresh]
        for local_i in np.flatnonzero(fresh):
            union_i = local_to_union[local_i]
            lo = obs.neighbor_indptr[local_i]
            hi = obs.neighbor_indptr[local_i + 1]
            neighbor_rows[union_i] = (
                obs.neighbor_categories[lo:hi].copy(),
                obs.neighbor_counts[lo:hi].copy(),
            )
        filled[local_to_union] = True
        # Consistency check on overlapping nodes.
        overlap = ~fresh
        if np.any(overlap):
            idx = local_to_union[overlap]
            if not (
                np.array_equal(categories[idx], obs.distinct_categories[overlap])
                and np.allclose(weights[idx], obs.distinct_weights[overlap])
                and np.array_equal(degrees[idx], obs.distinct_degrees[overlap])
            ):
                raise SamplingError(
                    "observations disagree about a shared node; they cannot "
                    "describe the same static graph"
                )

    lengths = np.asarray([len(row[0]) for row in neighbor_rows], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    if indptr[-1]:
        cats = np.concatenate([row[0] for row in neighbor_rows])
        counts = np.concatenate([row[1] for row in neighbor_rows])
    else:
        cats = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)

    return StarObservation(
        names=first.names,
        num_draws=sum(o.num_draws for o in observations),
        draw_to_distinct=np.concatenate(draw_chunks),
        distinct_nodes=union_nodes,
        distinct_categories=categories,
        distinct_multiplicities=multiplicities,
        distinct_weights=weights,
        uniform=first.uniform,
        design=first.design,
        distinct_degrees=degrees,
        neighbor_indptr=indptr,
        neighbor_categories=cats,
        neighbor_counts=counts,
    )
