"""Multigraph random walk [Gjoka et al., "Multigraph Sampling of
Online Social Networks"; reference 19 of the paper].

Real OSNs expose several relations over the same user set (friendship,
co-membership, event attendance, ...). A walk on the *union multigraph*
mixes faster and escapes components that any single relation would trap
it in. The stationary distribution is proportional to the node's
**total degree across relations**, which becomes the draw weight — so
the Section 5 estimators remain consistent unchanged.

Next-hop selection runs on the cached union-CSR representation
(:mod:`repro.graph.union`): the relations' adjacency runs are merged
per node in relation order, so resolving stub ``k`` of node ``v`` is a
single ``indices[indptr[v] + k]`` gather — identical, arc for arc, to
scanning the relations one by one, but O(1) instead of O(relations)
per step and directly reusable by the batched frontier kernel
registered in :mod:`repro.sampling.batch`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.graph.union import UnionCSR, union_csr
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler

__all__ = ["MultigraphRandomWalkSampler"]


class MultigraphRandomWalkSampler(Sampler):
    """RW on the union multigraph of several relations.

    Parameters
    ----------
    graphs:
        Two or more :class:`Graph` instances over the *same* node set.
        Parallel edges are kept (multigraph semantics): a pair connected
        in two relations is twice as likely to be traversed.
    """

    def __init__(self, graphs: Sequence[Graph], start: int | None = None):
        if len(graphs) < 1:
            raise SamplingError("need at least one relation graph")
        num_nodes = graphs[0].num_nodes
        if any(g.num_nodes != num_nodes for g in graphs):
            raise SamplingError("all relations must share one node set")
        super().__init__(graphs[0])
        self._graphs = tuple(graphs)
        self._union = union_csr(self._graphs)
        self._total_degrees = self._union.total_degrees
        if int(self._total_degrees.sum()) == 0:
            raise SamplingError("the union multigraph has no edges")
        if start is not None and not 0 <= start < num_nodes:
            raise SamplingError(f"start node {start} outside [0, {num_nodes})")
        self._start = start

    @property
    def design(self) -> str:
        return "multigraph-rw"

    @property
    def uniform(self) -> bool:
        return False

    @property
    def total_degrees(self) -> np.ndarray:
        """Per-node degree summed over relations (the stationary weight)."""
        return self._total_degrees

    @property
    def union(self) -> UnionCSR:
        """The cached union-multigraph CSR the walk steps on."""
        return self._union

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        indptr, indices = self._union.indptr, self._union.indices
        degrees = self._total_degrees
        current = self._start
        if current is None:
            candidates = np.flatnonzero(degrees > 0)
            current = int(candidates[gen.integers(0, len(candidates))])
        out = np.empty(n, dtype=np.int64)
        randoms = gen.random(n)
        for i in range(n):
            total = degrees[current]
            if total == 0:
                raise SamplingError(
                    f"multigraph walk reached isolated node {current}"
                )
            # Stub index in [0, total); the union-CSR layout maps it to
            # the same arc the per-relation scan would resolve it to.
            current = int(indices[indptr[current] + int(randoms[i] * total)])
            out[i] = current
        return NodeSample(
            out,
            degrees[out].astype(float),
            design=self.design,
            uniform=False,
        )
