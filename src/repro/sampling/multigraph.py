"""Multigraph random walk [Gjoka et al., "Multigraph Sampling of
Online Social Networks"; reference 19 of the paper].

Real OSNs expose several relations over the same user set (friendship,
co-membership, event attendance, ...). A walk on the *union multigraph*
mixes faster and escapes components that any single relation would trap
it in. The stationary distribution is proportional to the node's
**total degree across relations**, which becomes the draw weight — so
the Section 5 estimators remain consistent unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler

__all__ = ["MultigraphRandomWalkSampler"]


class MultigraphRandomWalkSampler(Sampler):
    """RW on the union multigraph of several relations.

    Parameters
    ----------
    graphs:
        Two or more :class:`Graph` instances over the *same* node set.
        Parallel edges are kept (multigraph semantics): a pair connected
        in two relations is twice as likely to be traversed.
    """

    def __init__(self, graphs: Sequence[Graph], start: int | None = None):
        if len(graphs) < 1:
            raise SamplingError("need at least one relation graph")
        num_nodes = graphs[0].num_nodes
        if any(g.num_nodes != num_nodes for g in graphs):
            raise SamplingError("all relations must share one node set")
        super().__init__(graphs[0])
        self._graphs = tuple(graphs)
        self._total_degrees = np.sum(
            [g.degrees() for g in graphs], axis=0
        ).astype(np.int64)
        if int(self._total_degrees.sum()) == 0:
            raise SamplingError("the union multigraph has no edges")
        if start is not None and not 0 <= start < num_nodes:
            raise SamplingError(f"start node {start} outside [0, {num_nodes})")
        self._start = start

    @property
    def design(self) -> str:
        return "multigraph-rw"

    @property
    def uniform(self) -> bool:
        return False

    @property
    def total_degrees(self) -> np.ndarray:
        """Per-node degree summed over relations (the stationary weight)."""
        return self._total_degrees

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        degrees = self._total_degrees
        current = self._start
        if current is None:
            candidates = np.flatnonzero(degrees > 0)
            current = int(candidates[gen.integers(0, len(candidates))])
        out = np.empty(n, dtype=np.int64)
        randoms = gen.random(n)
        for i in range(n):
            total = degrees[current]
            if total == 0:
                raise SamplingError(
                    f"multigraph walk reached isolated node {current}"
                )
            # Pick the stub index in [0, total); locate its relation.
            stub = int(randoms[i] * total)
            for graph in self._graphs:
                lo, hi = graph.indptr[current], graph.indptr[current + 1]
                span = hi - lo
                if stub < span:
                    current = int(graph.indices[lo + stub])
                    break
                stub -= span
            out[i] = current
        return NodeSample(
            out,
            degrees[out].astype(float),
            design=self.design,
            uniform=False,
        )
