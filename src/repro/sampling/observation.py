"""The two measurement scenarios of Section 3.2 (Fig. 2).

Sampling tells us *which* nodes we drew; measurement tells us *what we
learn* about each draw:

* **Induced subgraph sampling** — the categories of the sampled nodes,
  and the edges among sampled nodes, only.
* **Star sampling** — additionally, the categories of *all* neighbors
  of each sampled node (and hence its degree). Neighbor identities
  beyond their categories are not needed (labeled star sampling).

Estimators in :mod:`repro.core` consume these observation objects and
nothing else, so the information model of the paper is enforced by
construction: an induced observation physically lacks the data a star
estimator would need.

Both observations store the sample in *distinct-node compressed* form:
the draw list (with replacement, order preserved via
``draw_to_distinct``) references a table of distinct nodes with their
categories, sampling weights, and multiplicities. Estimator algebra over
the multiset reduces to multiplicity-weighted sums over the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.sampling.base import NodeSample

__all__ = [
    "InducedObservation",
    "StarObservation",
    "observe_induced",
    "observe_star",
    "observe_both",
]


@dataclass(frozen=True)
class _ObservationBase:
    """Data shared by both measurement scenarios."""

    #: Category names (defines the category indexing of the estimate).
    names: tuple[str, ...]
    #: Draw count ``|S|`` (with multiplicity).
    num_draws: int
    #: For each draw, the row in the distinct-node table.
    draw_to_distinct: np.ndarray
    #: Distinct node ids (for debugging/bootstrap only; estimators never
    #: dereference them into a graph).
    distinct_nodes: np.ndarray
    #: Category index of each distinct node.
    distinct_categories: np.ndarray
    #: Draw multiplicity of each distinct node.
    distinct_multiplicities: np.ndarray
    #: Sampling weight ``w(v)`` of each distinct node.
    distinct_weights: np.ndarray
    #: Whether the design was uniform (Section 4 vs Section 5 estimators).
    uniform: bool
    #: Producing design name.
    design: str

    @property
    def num_categories(self) -> int:
        """Number of categories ``|C|``."""
        return len(self.names)

    @property
    def num_distinct(self) -> int:
        """Number of distinct sampled nodes."""
        return len(self.distinct_nodes)

    def _memo(self, key, compute):
        """Cache a derived aggregate on this (immutable) observation.

        The four estimator families share several reductions per sweep
        rung (``reweighted_sizes`` alone is needed by all of them);
        memoizing keeps each O(distinct) pass single. Cached arrays are
        frozen read-only so sharing is safe.
        """
        cache = self.__dict__.get("_memo_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_memo_cache", cache)
        if key not in cache:
            value = compute()
            value.flags.writeable = False
            cache[key] = value
        return cache[key]

    def category_draw_counts(self) -> np.ndarray:
        """``|S_A|`` for every category (with multiplicity), shape (C,)."""
        return self._memo(
            "draw_counts",
            lambda: np.bincount(
                self.distinct_categories,
                weights=self.distinct_multiplicities,
                minlength=self.num_categories,
            ).astype(np.int64),
        )

    def reweighted_sizes(self) -> np.ndarray:
        """``w^{-1}(S_A) = sum_{v in S_A} 1 / w(v)`` per category (Sec. 5.1).

        Under a uniform design this equals ``|S_A|``.
        """
        return self._memo(
            "reweighted",
            lambda: np.bincount(
                self.distinct_categories,
                weights=self.distinct_multiplicities / self.distinct_weights,
                minlength=self.num_categories,
            ),
        )


@dataclass(frozen=True)
class InducedObservation(_ObservationBase):
    """Induced-subgraph measurement (Section 3.2.1).

    ``induced_edges`` lists the edges among *distinct* sampled nodes as
    pairs of rows into the distinct table; the multiset pair counts of
    Eq. (8)/(15) are recovered with multiplicity products.
    """

    induced_edges: np.ndarray = None  # (m, 2) distinct-row pairs

    def __post_init__(self) -> None:
        if self.induced_edges is None:
            object.__setattr__(
                self, "induced_edges", np.empty((0, 2), dtype=np.int64)
            )

    def subset_draws(self, draw_indices: np.ndarray) -> "InducedObservation":
        """Observation restricted to a subset/resample of draws.

        Used by bootstrap variance estimation and sample-size sweeps.
        ``draw_indices`` indexes the original draw list (repeats allowed).
        """
        return _subset(self, draw_indices, induced=True)


@dataclass(frozen=True)
class StarObservation(_ObservationBase):
    """Star measurement (Section 3.2.2).

    Per distinct node we store its degree and the category histogram of
    its neighborhood in CSR form: the neighbor categories of distinct
    node ``i`` are ``neighbor_categories[neighbor_indptr[i]:neighbor_indptr[i+1]]``
    with multiplicities ``neighbor_counts[...]``. ``|E_{a,B}|`` of
    Eq. (9)/(16) is a direct lookup.
    """

    distinct_degrees: np.ndarray = None
    neighbor_indptr: np.ndarray = None
    neighbor_categories: np.ndarray = None
    neighbor_counts: np.ndarray = None

    def __post_init__(self) -> None:
        for name in (
            "distinct_degrees",
            "neighbor_indptr",
            "neighbor_categories",
            "neighbor_counts",
        ):
            if getattr(self, name) is None:
                raise SamplingError(f"StarObservation requires {name}")

    def neighbor_category_matrix(self, weighted: bool) -> np.ndarray:
        """Aggregate ``M[A, B] = sum_{draws a in S_A} |E_{a,B}| (/w(a))``.

        The multiset sum over draws of the per-node neighbor histograms,
        optionally divided by the draw weight — the numerator machinery
        of Eqs. (7), (9), (13), (16).
        """

        def compute() -> np.ndarray:
            c = self.num_categories
            lengths = np.diff(self.neighbor_indptr)
            rows = np.repeat(self.distinct_categories, lengths)
            scale = self.distinct_multiplicities.astype(float)
            if weighted:
                scale = scale / self.distinct_weights
            per_entry = np.repeat(scale, lengths)
            return np.bincount(
                rows * np.int64(c) + self.neighbor_categories,
                weights=per_entry * self.neighbor_counts,
                minlength=c * c,
            ).reshape(c, c)

        return self._memo(("neighbor_matrix", weighted), compute)

    def degree_totals(self, weighted: bool) -> np.ndarray:
        """``sum_{v in S_A} deg(v) (/w(v))`` per category, shape (C,)."""

        def compute() -> np.ndarray:
            scale = self.distinct_multiplicities.astype(float)
            if weighted:
                scale = scale / self.distinct_weights
            return np.bincount(
                self.distinct_categories,
                weights=scale * self.distinct_degrees,
                minlength=self.num_categories,
            )

        return self._memo(("degree_totals", weighted), compute)

    def subset_draws(self, draw_indices: np.ndarray) -> "StarObservation":
        """Observation restricted to a subset/resample of draws."""
        return _subset(self, draw_indices, induced=False)


def observe_induced(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> InducedObservation:
    """Measure a sample under induced subgraph sampling."""
    base, position = _compress(graph, partition, sample)
    position = _ensure_position(graph, base["distinct_nodes"], position)
    return InducedObservation(
        induced_edges=_induced_edges(graph, position), **base
    )


def observe_star(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> StarObservation:
    """Measure a sample under (labeled) star sampling."""
    base, position = _compress(graph, partition, sample)
    position = _ensure_position(graph, base["distinct_nodes"], position)
    return StarObservation(
        **_star_fields(graph, partition, base["distinct_nodes"], position),
        **base,
    )


def observe_both(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> tuple[InducedObservation, StarObservation]:
    """Both measurement scenarios of one sample, sharing one compression.

    The draw-list compression and the membership scan over the graph's
    arc list are the heavy parts of both ``observe_*`` functions; sweep
    harnesses that need both views (every NRMSE ladder does) should
    build them together. Results are identical to the two separate calls.
    """
    base, position = _compress(graph, partition, sample)
    position = _ensure_position(graph, base["distinct_nodes"], position)
    source_rows = (
        position[graph.arc_sources] if len(graph.indices) else None
    )
    induced = InducedObservation(
        induced_edges=_induced_edges(graph, position, source_rows), **base
    )
    star = StarObservation(
        **_star_fields(
            graph, partition, base["distinct_nodes"], position, source_rows
        ),
        **base,
    )
    return induced, star


def _ensure_position(
    graph: Graph, distinct: np.ndarray, position: np.ndarray | None
) -> np.ndarray:
    """Node id -> distinct row map (-1 for unsampled nodes)."""
    if position is None:
        position = np.full(graph.num_nodes, -1, dtype=np.int64)
        position[distinct] = np.arange(len(distinct))
    return position


def _induced_edges(
    graph: Graph, position: np.ndarray, source_rows: np.ndarray | None = None
) -> np.ndarray:
    """Edges among distinct nodes (rows into the distinct table).

    One membership mask over the graph's arc list: arcs whose source is
    unsampled map to -1, and requiring ``dest row > source row`` both
    filters unsampled destinations and keeps each undirected edge once
    — no per-node Python loop.
    """
    if not len(graph.indices):
        return np.empty((0, 2), dtype=np.int64)
    if source_rows is None:
        source_rows = position[graph.arc_sources]
    dest_rows = position[graph.indices]
    kept = np.flatnonzero((source_rows >= 0) & (dest_rows > source_rows))
    return np.column_stack((source_rows.take(kept), dest_rows.take(kept)))


def _star_fields(
    graph: Graph,
    partition: CategoryPartition,
    distinct: np.ndarray,
    position: np.ndarray,
    source_rows: np.ndarray | None = None,
) -> dict:
    """Neighbor-category CSR histogram fields of a star observation.

    Built from one pass over the graph's arc list: arcs owned by
    sampled nodes are keyed by (distinct row, neighbor category) and
    histogrammed.
    """
    c = partition.num_categories
    num_distinct = len(distinct)
    indptr = graph.indptr
    degrees = (indptr[distinct + 1] - indptr[distinct]).astype(np.int64)
    total = int(degrees.sum())
    if total:
        if source_rows is None:
            source_rows = position[graph.arc_sources]
        arc_keys = source_rows * np.int64(c) + partition.arc_labels(graph)
        key_space = num_distinct * c
        if key_space <= max(4 * total, 1 << 20):
            # Dense histogram: O(total + D*C) beats the O(total log total)
            # sort when the key space is comparable to the entry count.
            # Offsetting by c folds unsampled sources (row -1) into the
            # sliced-off first block, so no mask/compress pass is needed.
            histogram = np.bincount(arc_keys + np.int64(c), minlength=key_space + c)[c:]
            unique_keys = np.flatnonzero(histogram)
            counts = histogram[unique_keys]
        else:
            unique_keys, counts = np.unique(
                arc_keys[source_rows >= 0], return_counts=True
            )
        nbr_rows = unique_keys // c
        nbr_cats = (unique_keys % c).astype(np.int64)
        nbr_indptr = np.zeros(num_distinct + 1, dtype=np.int64)
        np.add.at(nbr_indptr, nbr_rows + 1, 1)
        np.cumsum(nbr_indptr, out=nbr_indptr)
    else:
        nbr_cats = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)
        nbr_indptr = np.zeros(num_distinct + 1, dtype=np.int64)
    return {
        "distinct_degrees": degrees,
        "neighbor_indptr": nbr_indptr,
        "neighbor_categories": nbr_cats,
        "neighbor_counts": counts.astype(np.int64),
    }


def _compress(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> tuple[dict, "np.ndarray | None"]:
    """Shared draw-list → distinct-table compression.

    Returns the observation base fields plus, when cheaply available,
    the node-id -> distinct-row map (-1 for unsampled nodes) for reuse
    by the induced-edge scan.
    """
    if partition.num_nodes != graph.num_nodes:
        raise SamplingError("partition node count does not match the graph")
    if sample.size == 0:
        raise SamplingError("cannot observe an empty sample")
    if sample.nodes.max() >= graph.num_nodes or sample.nodes.min() < 0:
        raise SamplingError("sample references nodes outside the graph")
    position = None
    if graph.num_nodes <= max(4 * sample.size, 1 << 20):
        # Dense histogram over the node space: O(n + N) and identical
        # output to np.unique (sorted distinct ids), skipping its sort.
        histogram = np.bincount(sample.nodes, minlength=graph.num_nodes)
        distinct = np.flatnonzero(histogram)
        multiplicities = histogram[distinct]
        # -1 for non-members, so the array doubles as the membership map
        # _induced_edges needs.
        position = np.full(graph.num_nodes, -1, dtype=np.int64)
        position[distinct] = np.arange(len(distinct))
        draw_to_distinct = position[sample.nodes]
    else:
        distinct, draw_to_distinct, multiplicities = np.unique(
            sample.nodes, return_inverse=True, return_counts=True
        )
    # Weights are per-node for every design in this library; verify that
    # repeated draws of a node agree, then keep one weight per distinct.
    weights = np.zeros(len(distinct))
    weights[draw_to_distinct] = sample.weights
    spread = weights[draw_to_distinct]
    # Exact equality is the overwhelmingly common case; only fall back
    # to the tolerance check when something actually differs.
    if not np.array_equal(spread, sample.weights) and not np.allclose(
        spread, sample.weights
    ):
        raise SamplingError(
            "sample weights differ across draws of the same node"
        )
    base = {
        "names": partition.names,
        "num_draws": sample.size,
        "draw_to_distinct": draw_to_distinct.astype(np.int64),
        "distinct_nodes": distinct.astype(np.int64),
        "distinct_categories": partition.labels[distinct],
        "distinct_multiplicities": multiplicities.astype(np.int64),
        "distinct_weights": weights,
        "uniform": sample.uniform,
        "design": sample.design,
    }
    return base, position


def _subset(observation, draw_indices: np.ndarray, induced: bool):
    """Restrict an observation to a resampled/truncated draw list."""
    draw_indices = np.asarray(draw_indices, dtype=np.int64)
    if len(draw_indices) == 0:
        raise SamplingError("subset must keep at least one draw")
    if draw_indices.min() < 0 or draw_indices.max() >= observation.num_draws:
        raise SamplingError("draw indices outside the original sample")
    old_rows = observation.draw_to_distinct[draw_indices]
    kept_rows, new_draw_to_distinct, multiplicities = np.unique(
        old_rows, return_inverse=True, return_counts=True
    )
    base = {
        "names": observation.names,
        "num_draws": len(draw_indices),
        "draw_to_distinct": new_draw_to_distinct.astype(np.int64),
        "distinct_nodes": observation.distinct_nodes[kept_rows],
        "distinct_categories": observation.distinct_categories[kept_rows],
        "distinct_multiplicities": multiplicities.astype(np.int64),
        "distinct_weights": observation.distinct_weights[kept_rows],
        "uniform": observation.uniform,
        "design": observation.design,
    }
    remap = np.full(observation.num_distinct, -1, dtype=np.int64)
    remap[kept_rows] = np.arange(len(kept_rows))
    if induced:
        edges = observation.induced_edges
        if len(edges):
            mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
            new_edges = np.column_stack(
                (remap[edges[mask, 0]], remap[edges[mask, 1]])
            )
        else:
            new_edges = np.empty((0, 2), dtype=np.int64)
        return InducedObservation(induced_edges=new_edges, **base)
    # Star: slice the neighbor CSR down to the kept rows.
    lengths = np.diff(observation.neighbor_indptr)[kept_rows]
    new_indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    total = int(lengths.sum())
    if total:
        starts = observation.neighbor_indptr[kept_rows]
        run_offsets = new_indptr[:-1]
        gather = np.repeat(starts - run_offsets, lengths) + np.arange(total)
        new_cats = observation.neighbor_categories[gather]
        new_counts = observation.neighbor_counts[gather]
    else:
        new_cats = np.empty(0, dtype=np.int64)
        new_counts = np.empty(0, dtype=np.int64)
    return StarObservation(
        distinct_degrees=observation.distinct_degrees[kept_rows],
        neighbor_indptr=new_indptr,
        neighbor_categories=new_cats,
        neighbor_counts=new_counts,
        **base,
    )
