"""The two measurement scenarios of Section 3.2 (Fig. 2).

Sampling tells us *which* nodes we drew; measurement tells us *what we
learn* about each draw:

* **Induced subgraph sampling** — the categories of the sampled nodes,
  and the edges among sampled nodes, only.
* **Star sampling** — additionally, the categories of *all* neighbors
  of each sampled node (and hence its degree). Neighbor identities
  beyond their categories are not needed (labeled star sampling).

Estimators in :mod:`repro.core` consume these observation objects and
nothing else, so the information model of the paper is enforced by
construction: an induced observation physically lacks the data a star
estimator would need.

Both observations store the sample in *distinct-node compressed* form:
the draw list (with replacement, order preserved via
``draw_to_distinct``) references a table of distinct nodes with their
categories, sampling weights, and multiplicities. Estimator algebra over
the multiset reduces to multiplicity-weighted sums over the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.sampling.base import NodeSample

__all__ = [
    "InducedObservation",
    "StarObservation",
    "observe_induced",
    "observe_star",
]


@dataclass(frozen=True)
class _ObservationBase:
    """Data shared by both measurement scenarios."""

    #: Category names (defines the category indexing of the estimate).
    names: tuple[str, ...]
    #: Draw count ``|S|`` (with multiplicity).
    num_draws: int
    #: For each draw, the row in the distinct-node table.
    draw_to_distinct: np.ndarray
    #: Distinct node ids (for debugging/bootstrap only; estimators never
    #: dereference them into a graph).
    distinct_nodes: np.ndarray
    #: Category index of each distinct node.
    distinct_categories: np.ndarray
    #: Draw multiplicity of each distinct node.
    distinct_multiplicities: np.ndarray
    #: Sampling weight ``w(v)`` of each distinct node.
    distinct_weights: np.ndarray
    #: Whether the design was uniform (Section 4 vs Section 5 estimators).
    uniform: bool
    #: Producing design name.
    design: str

    @property
    def num_categories(self) -> int:
        """Number of categories ``|C|``."""
        return len(self.names)

    @property
    def num_distinct(self) -> int:
        """Number of distinct sampled nodes."""
        return len(self.distinct_nodes)

    def category_draw_counts(self) -> np.ndarray:
        """``|S_A|`` for every category (with multiplicity), shape (C,)."""
        counts = np.zeros(self.num_categories, dtype=np.int64)
        np.add.at(counts, self.distinct_categories, self.distinct_multiplicities)
        return counts

    def reweighted_sizes(self) -> np.ndarray:
        """``w^{-1}(S_A) = sum_{v in S_A} 1 / w(v)`` per category (Sec. 5.1).

        Under a uniform design this equals ``|S_A|``.
        """
        out = np.zeros(self.num_categories)
        np.add.at(
            out,
            self.distinct_categories,
            self.distinct_multiplicities / self.distinct_weights,
        )
        return out


@dataclass(frozen=True)
class InducedObservation(_ObservationBase):
    """Induced-subgraph measurement (Section 3.2.1).

    ``induced_edges`` lists the edges among *distinct* sampled nodes as
    pairs of rows into the distinct table; the multiset pair counts of
    Eq. (8)/(15) are recovered with multiplicity products.
    """

    induced_edges: np.ndarray = None  # (m, 2) distinct-row pairs

    def __post_init__(self) -> None:
        if self.induced_edges is None:
            object.__setattr__(
                self, "induced_edges", np.empty((0, 2), dtype=np.int64)
            )

    def subset_draws(self, draw_indices: np.ndarray) -> "InducedObservation":
        """Observation restricted to a subset/resample of draws.

        Used by bootstrap variance estimation and sample-size sweeps.
        ``draw_indices`` indexes the original draw list (repeats allowed).
        """
        return _subset(self, draw_indices, induced=True)


@dataclass(frozen=True)
class StarObservation(_ObservationBase):
    """Star measurement (Section 3.2.2).

    Per distinct node we store its degree and the category histogram of
    its neighborhood in CSR form: the neighbor categories of distinct
    node ``i`` are ``neighbor_categories[neighbor_indptr[i]:neighbor_indptr[i+1]]``
    with multiplicities ``neighbor_counts[...]``. ``|E_{a,B}|`` of
    Eq. (9)/(16) is a direct lookup.
    """

    distinct_degrees: np.ndarray = None
    neighbor_indptr: np.ndarray = None
    neighbor_categories: np.ndarray = None
    neighbor_counts: np.ndarray = None

    def __post_init__(self) -> None:
        for name in (
            "distinct_degrees",
            "neighbor_indptr",
            "neighbor_categories",
            "neighbor_counts",
        ):
            if getattr(self, name) is None:
                raise SamplingError(f"StarObservation requires {name}")

    def neighbor_category_matrix(self, weighted: bool) -> np.ndarray:
        """Aggregate ``M[A, B] = sum_{draws a in S_A} |E_{a,B}| (/w(a))``.

        The multiset sum over draws of the per-node neighbor histograms,
        optionally divided by the draw weight — the numerator machinery
        of Eqs. (7), (9), (13), (16).
        """
        c = self.num_categories
        matrix = np.zeros((c, c))
        rows = np.repeat(
            self.distinct_categories, np.diff(self.neighbor_indptr)
        )
        scale = self.distinct_multiplicities.astype(float)
        if weighted:
            scale = scale / self.distinct_weights
        per_entry = np.repeat(scale, np.diff(self.neighbor_indptr))
        np.add.at(
            matrix,
            (rows, self.neighbor_categories),
            per_entry * self.neighbor_counts,
        )
        return matrix

    def degree_totals(self, weighted: bool) -> np.ndarray:
        """``sum_{v in S_A} deg(v) (/w(v))`` per category, shape (C,)."""
        out = np.zeros(self.num_categories)
        scale = self.distinct_multiplicities.astype(float)
        if weighted:
            scale = scale / self.distinct_weights
        np.add.at(
            out, self.distinct_categories, scale * self.distinct_degrees
        )
        return out

    def subset_draws(self, draw_indices: np.ndarray) -> "StarObservation":
        """Observation restricted to a subset/resample of draws."""
        return _subset(self, draw_indices, induced=False)


def observe_induced(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> InducedObservation:
    """Measure a sample under induced subgraph sampling."""
    base = _compress(graph, partition, sample)
    distinct = base["distinct_nodes"]
    position = np.full(graph.num_nodes, -1, dtype=np.int64)
    position[distinct] = np.arange(len(distinct))
    indptr, indices = graph.indptr, graph.indices
    in_sample = np.zeros(graph.num_nodes, dtype=bool)
    in_sample[distinct] = True
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for i, v in enumerate(distinct):
        nbrs = indices[indptr[v] : indptr[v + 1]]
        hits = nbrs[in_sample[nbrs]]
        js = position[hits]
        keep = js > i  # each undirected edge once
        if np.any(keep):
            js = js[keep]
            rows.append(np.full(len(js), i, dtype=np.int64))
            cols.append(js)
    if rows:
        edges = np.column_stack((np.concatenate(rows), np.concatenate(cols)))
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return InducedObservation(induced_edges=edges, **base)


def observe_star(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> StarObservation:
    """Measure a sample under (labeled) star sampling."""
    base = _compress(graph, partition, sample)
    distinct = base["distinct_nodes"]
    indptr, indices = graph.indptr, graph.indices
    degrees = (indptr[distinct + 1] - indptr[distinct]).astype(np.int64)
    c = partition.num_categories
    # Gather all neighbor labels of all distinct nodes, vectorised.
    total = int(degrees.sum())
    if total:
        starts = indptr[distinct]
        run_offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
        gather = np.repeat(starts - run_offsets, degrees) + np.arange(total)
        neighbor_labels = partition.labels[indices[gather]]
        owner_rows = np.repeat(np.arange(len(distinct), dtype=np.int64), degrees)
        keys = owner_rows * np.int64(c) + neighbor_labels
        unique_keys, counts = np.unique(keys, return_counts=True)
        nbr_rows = unique_keys // c
        nbr_cats = (unique_keys % c).astype(np.int64)
        nbr_indptr = np.zeros(len(distinct) + 1, dtype=np.int64)
        np.add.at(nbr_indptr, nbr_rows + 1, 1)
        np.cumsum(nbr_indptr, out=nbr_indptr)
    else:
        nbr_cats = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)
        nbr_indptr = np.zeros(len(distinct) + 1, dtype=np.int64)
    return StarObservation(
        distinct_degrees=degrees,
        neighbor_indptr=nbr_indptr,
        neighbor_categories=nbr_cats,
        neighbor_counts=counts.astype(np.int64),
        **base,
    )


def _compress(
    graph: Graph, partition: CategoryPartition, sample: NodeSample
) -> dict:
    """Shared draw-list → distinct-table compression."""
    if partition.num_nodes != graph.num_nodes:
        raise SamplingError("partition node count does not match the graph")
    if sample.size == 0:
        raise SamplingError("cannot observe an empty sample")
    if sample.nodes.max() >= graph.num_nodes or sample.nodes.min() < 0:
        raise SamplingError("sample references nodes outside the graph")
    distinct, draw_to_distinct, multiplicities = np.unique(
        sample.nodes, return_inverse=True, return_counts=True
    )
    # Weights are per-node for every design in this library; verify that
    # repeated draws of a node agree, then keep one weight per distinct.
    weights = np.zeros(len(distinct))
    weights[draw_to_distinct] = sample.weights
    if not np.allclose(weights[draw_to_distinct], sample.weights):
        raise SamplingError(
            "sample weights differ across draws of the same node"
        )
    return {
        "names": partition.names,
        "num_draws": sample.size,
        "draw_to_distinct": draw_to_distinct.astype(np.int64),
        "distinct_nodes": distinct.astype(np.int64),
        "distinct_categories": partition.labels[distinct],
        "distinct_multiplicities": multiplicities.astype(np.int64),
        "distinct_weights": weights,
        "uniform": sample.uniform,
        "design": sample.design,
    }


def _subset(observation, draw_indices: np.ndarray, induced: bool):
    """Restrict an observation to a resampled/truncated draw list."""
    draw_indices = np.asarray(draw_indices, dtype=np.int64)
    if len(draw_indices) == 0:
        raise SamplingError("subset must keep at least one draw")
    if draw_indices.min() < 0 or draw_indices.max() >= observation.num_draws:
        raise SamplingError("draw indices outside the original sample")
    old_rows = observation.draw_to_distinct[draw_indices]
    kept_rows, new_draw_to_distinct, multiplicities = np.unique(
        old_rows, return_inverse=True, return_counts=True
    )
    base = {
        "names": observation.names,
        "num_draws": len(draw_indices),
        "draw_to_distinct": new_draw_to_distinct.astype(np.int64),
        "distinct_nodes": observation.distinct_nodes[kept_rows],
        "distinct_categories": observation.distinct_categories[kept_rows],
        "distinct_multiplicities": multiplicities.astype(np.int64),
        "distinct_weights": observation.distinct_weights[kept_rows],
        "uniform": observation.uniform,
        "design": observation.design,
    }
    remap = np.full(observation.num_distinct, -1, dtype=np.int64)
    remap[kept_rows] = np.arange(len(kept_rows))
    if induced:
        edges = observation.induced_edges
        if len(edges):
            mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
            new_edges = np.column_stack(
                (remap[edges[mask, 0]], remap[edges[mask, 1]])
            )
        else:
            new_edges = np.empty((0, 2), dtype=np.int64)
        return InducedObservation(induced_edges=new_edges, **base)
    # Star: slice the neighbor CSR down to the kept rows.
    lengths = np.diff(observation.neighbor_indptr)[kept_rows]
    new_indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    total = int(lengths.sum())
    if total:
        starts = observation.neighbor_indptr[kept_rows]
        run_offsets = new_indptr[:-1]
        gather = np.repeat(starts - run_offsets, lengths) + np.arange(total)
        new_cats = observation.neighbor_categories[gather]
        new_counts = observation.neighbor_counts[gather]
    else:
        new_cats = np.empty(0, dtype=np.int64)
        new_counts = np.empty(0, dtype=np.int64)
    return StarObservation(
        distinct_degrees=observation.distinct_degrees[kept_rows],
        neighbor_indptr=new_indptr,
        neighbor_categories=new_cats,
        neighbor_counts=new_counts,
        **base,
    )
