"""Stratified Weighted Random Walk (S-WRW) — [Kurant et al., Sigmetrics'11].

S-WRW is a weighted random walk whose edge weights are chosen so the
walk *oversamples* the categories relevant to the measurement (in this
paper: small colleges) and undersamples the rest. We implement the
resolved-weights formulation:

* every category ``A`` has a target weight ``W_A`` (equal by default,
  which is the configuration used in the paper's Sections 6.3/7:
  equal category weights, no irrelevant categories, ``gamma = inf``);
* every node gets an importance ``omega(v) = (W_{A(v)} / |A(v)|) ** gamma``
  where ``|A|`` comes from ``size_hints`` (true sizes in simulation, or
  pilot estimates in the field) and ``gamma`` in ``[0, 1]`` interpolates
  between plain RW (``0``) and full stratification (``1``);
* the edge ``{u, v}`` carries weight ``omega(u) * omega(v)``.

The stationary probability of the resulting weighted walk is
proportional to the node *strength*
``omega(v) * sum_{u in N(v)} omega(u)``, which is exactly the draw
weight we expose — so the Hansen-Hurwitz corrected estimators of
Section 5 stay consistent.

This is a faithful-in-spirit simplification of the full S-WRW machinery
(which adds vertex extensions to hit exact category allocations); see
DESIGN.md for the substitution note. With equal weights it reproduces
the property the paper exploits: sample counts per category become far
more balanced than under RW (compare Fig. 5's RW10 vs S-WRW10).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.sampling.base import NodeSample
from repro.sampling.walks import WeightedRandomWalkSampler

__all__ = ["StratifiedWeightedWalkSampler"]


class StratifiedWeightedWalkSampler(WeightedRandomWalkSampler):
    """S-WRW: weighted walk that equalises samples across categories.

    Parameters
    ----------
    graph:
        The graph to crawl.
    partition:
        Category partition used for stratification. (The crawler is
        assumed to be able to read a node's category — the same
        assumption star sampling makes.)
    category_weights:
        Target weight per category, shape ``(C,)``; defaults to equal
        weights (the paper's configuration).
    size_hints:
        Category sizes used to compute per-node importances; defaults to
        the partition's true sizes (available in simulation). In a field
        deployment these would be pilot estimates.
    gamma:
        Stratification strength in ``[0, 1]``; ``0`` degenerates to RW,
        ``1`` (default) is full stratification (the paper's
        ``gamma = inf`` in its own parameterisation).
    next_hop:
        Next-hop engine, forwarded to
        :class:`~repro.sampling.walks.WeightedRandomWalkSampler`:
        ``"search"`` (default, exact inverse-CDF) or ``"alias"`` (O(1)
        Walker alias tables, statistically equivalent). S-WRW inherits
        the WRW batch kernel through the registry's MRO resolution, so
        both engines are batched automatically.
    """

    def __init__(
        self,
        graph: Graph,
        partition: CategoryPartition,
        category_weights: np.ndarray | None = None,
        size_hints: np.ndarray | None = None,
        gamma: float = 1.0,
        start: int | None = None,
        burn_in: int = 0,
        next_hop: str = "search",
    ):
        if partition.num_nodes != graph.num_nodes:
            raise SamplingError(
                "partition node count does not match the graph"
            )
        if not 0.0 <= gamma <= 1.0:
            raise SamplingError(f"gamma must be in [0, 1], got {gamma}")
        c = partition.num_categories
        if category_weights is None:
            category_weights = np.ones(c)
        else:
            category_weights = np.asarray(category_weights, dtype=float)
            if category_weights.shape != (c,):
                raise SamplingError(
                    f"category_weights must have shape ({c},), got "
                    f"{category_weights.shape}"
                )
            if category_weights.min() <= 0:
                raise SamplingError("category weights must be positive")
        if size_hints is None:
            size_hints = partition.sizes().astype(float)
        else:
            size_hints = np.asarray(size_hints, dtype=float)
            if size_hints.shape != (c,):
                raise SamplingError(
                    f"size_hints must have shape ({c},), got {size_hints.shape}"
                )
        present = partition.sizes() > 0
        if np.any(size_hints[present] <= 0):
            raise SamplingError(
                "size_hints must be positive for every category that has "
                "members"
            )
        # Empty categories never contribute a node importance; give them
        # a harmless placeholder to keep the arithmetic finite.
        safe_hints = np.where(present, size_hints, 1.0)
        importance_per_category = (category_weights / safe_hints) ** gamma
        omega = importance_per_category[partition.labels]
        arc_weights = _arc_weights_from_importance(graph, omega)
        super().__init__(
            graph, arc_weights, start=start, burn_in=burn_in, next_hop=next_hop
        )
        self._partition = partition
        self._omega = omega
        self._gamma = gamma

    @property
    def design(self) -> str:
        return "swrw"

    @property
    def gamma(self) -> float:
        """Stratification strength."""
        return self._gamma

    @property
    def node_importance(self) -> np.ndarray:
        """Per-node importance ``omega(v)``."""
        return self._omega

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        raw = super().sample(n, rng=rng)
        # Re-tag with the stratified design name.
        return NodeSample(raw.nodes, raw.weights, design=self.design, uniform=False)


def _arc_weights_from_importance(graph: Graph, omega: np.ndarray) -> np.ndarray:
    """Arc weights ``omega(u) * omega(v)`` aligned with ``graph.indices``."""
    src = np.repeat(np.arange(graph.num_nodes), graph.degrees())
    return omega[src] * omega[graph.indices]
