"""Traversal-based baselines: BFS (snowball) and Forest Fire.

Both are *biased* designs without tractable inclusion probabilities (see
the paper's Section 8 discussion of [4, 38, 43, 44]); they are included
as baselines to demonstrate why principled probability samples matter.
Their ``NodeSample.weights`` are all ones and ``uniform`` is **False**
with ``design`` flagging the bias — the estimators will happily run and
visibly mis-estimate, which is exactly the point of the ablation bench.

Both designs also register *batched frontier kernels* with
:mod:`repro.sampling.batch`: all R replicate traversals advance as one
set-semantics step — per-replicate visited bitmaps (memmap-backed when
the active storage plane is out-of-core), one CSR neighborhood gather
(:meth:`repro.graph.adjacency.Graph.gather_neighborhoods`) plus one
dedup/mask pass per expansion round, and per-replicate restart/burn
draws replayed in the sequential samplers' exact RNG order. Replicate
``r`` of the batched output is therefore **bit-identical** to
``sampler.sample(n, rng=streams[r])`` — the per-replicate Python loops
below are kept as the reference twins that
``tests/sampling/test_equivalence.py`` holds the kernels to.
"""

from __future__ import annotations

import collections
import os
import tempfile

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.graph.storage import active_storage_mode, storage_root
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import register_kernel

__all__ = ["BreadthFirstSampler", "ForestFireSampler"]


class BreadthFirstSampler(Sampler):
    """BFS / snowball sampling from a (random) seed.

    Visits nodes in breadth-first order until ``n`` nodes are collected;
    if the seed's component is exhausted first, a fresh random unvisited
    seed is picked (multi-seed snowball). Each node appears at most once
    — BFS is without replacement, unlike the probability designs.
    """

    def __init__(self, graph: Graph, seed_node: int | None = None):
        super().__init__(graph)
        if seed_node is not None and not 0 <= seed_node < graph.num_nodes:
            raise SamplingError(
                f"seed node {seed_node} outside [0, {graph.num_nodes})"
            )
        self._seed_node = seed_node

    @property
    def design(self) -> str:
        return "bfs"

    @property
    def uniform(self) -> bool:
        return False

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        if n > self._graph.num_nodes:
            raise SamplingError(
                f"BFS cannot collect {n} distinct nodes from a graph of "
                f"{self._graph.num_nodes}"
            )
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        visited = np.zeros(self._graph.num_nodes, dtype=bool)
        order: list[int] = []
        queue: collections.deque[int] = collections.deque()
        seed = (
            self._seed_node
            if self._seed_node is not None
            else int(gen.integers(0, self._graph.num_nodes))
        )
        queue.append(seed)
        visited[seed] = True
        while len(order) < n:
            if not queue:
                remaining = np.flatnonzero(~visited)
                fresh = int(remaining[gen.integers(0, len(remaining))])
                visited[fresh] = True
                queue.append(fresh)
            v = queue.popleft()
            order.append(v)
            for u in indices[indptr[v] : indptr[v + 1]]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
        nodes = np.asarray(order[:n], dtype=np.int64)
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=False)


def _invert_burn(u: float, p: float, cap: int) -> int:
    """Geometric(1 - p) burn size by inverse transform, capped at ``cap``.

    ``ceil(ln u / ln p)`` has ``P(X = k) = p**(k-1) * (1 - p)`` for
    ``k >= 1``. ``u == 0.0`` (probability 2**-53 per draw) maps to the
    cap, as any draw past the cap would. The batched kernel applies the
    same double-precision expression elementwise, so twin and kernel
    agree bit for bit.
    """
    if u <= 0.0:
        return cap
    burn = int(np.ceil(np.log(u) / np.log(p)))
    return burn if burn < cap else cap


class ForestFireSampler(Sampler):
    """Forest Fire sampling [Leskovec & Faloutsos 2006].

    A hybrid of BFS and RW: from each burning node, a geometrically
    distributed number of unvisited neighbors (mean ``p / (1 - p)``)
    catches fire. When the fire dies out, it restarts from a fresh
    random node. Biased like BFS; included as a related-work baseline.

    RNG protocol: every popped node ``v`` consumes one
    ``random(deg(v) + 1)`` block — the first uniform inverts to the
    geometric burn size (``ceil(ln U / ln p)``, the standard inverse
    transform), the rest are per-neighbor selection keys whose
    ``argsort`` prefix *over the unvisited neighbors* is the burned
    subset. This draws the exact same distribution as a ``geometric``
    + ``choice`` call pair (iid uniform keys make every ordered
    ``k``-subset equally likely; keys of visited neighbors are simply
    unused), and the block size depends only on the popped node — never
    on the visited state — so the batched kernel can pre-draw blocks
    for whole stretches of its FIFO queue at once. It is the same
    state-independent-consumption trick the RWJ twin uses by drawing a
    jump *and* a step uniform every step whether or not it jumps.
    """

    def __init__(self, graph: Graph, forward_prob: float = 0.7):
        super().__init__(graph)
        if not 0.0 < forward_prob < 1.0:
            raise SamplingError(
                f"forward_prob must be in (0, 1), got {forward_prob}"
            )
        self._forward_prob = forward_prob

    @property
    def design(self) -> str:
        return "forest_fire"

    @property
    def uniform(self) -> bool:
        return False

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        if n > self._graph.num_nodes:
            raise SamplingError(
                f"Forest Fire cannot collect {n} distinct nodes from a graph "
                f"of {self._graph.num_nodes}"
            )
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        visited = np.zeros(self._graph.num_nodes, dtype=bool)
        order: list[int] = []
        frontier: collections.deque[int] = collections.deque()
        p = self._forward_prob
        while len(order) < n:
            if not frontier:
                remaining = np.flatnonzero(~visited)
                seed = int(remaining[gen.integers(0, len(remaining))])
                visited[seed] = True
                order.append(seed)
                frontier.append(seed)
                continue
            v = frontier.popleft()
            run = indices[indptr[v] : indptr[v + 1]]
            # One block per pop, sized by degree alone (see class
            # docstring): burn uniform first, then one key per neighbor.
            draws = gen.random(len(run) + 1)
            fresh = ~visited[run]
            unvisited = run[fresh]
            if not len(unvisited):
                continue
            burn_count = _invert_burn(draws[0], p, len(unvisited))
            for u in unvisited[np.argsort(draws[1:][fresh])[:burn_count]]:
                u = int(u)
                visited[u] = True
                order.append(u)
                frontier.append(u)
                if len(order) == n:
                    break
        nodes = np.asarray(order[:n], dtype=np.int64)
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=False)


# ----------------------------------------------------------------------
# Batched frontier kernels
# ----------------------------------------------------------------------
# Traversal designs are without-replacement frontier processes: the
# visited set couples every step to the whole history, so unlike the
# walk kernels they cannot pre-draw variates. What *does* vectorize is
# the frontier expansion itself — the per-neighbor Python loops above
# become one concatenated CSR gather plus one dedup/mask pass per round,
# shared by all R replicates. RNG draws (seeds, restarts, burns) stay
# per-stream scalar calls replayed in the sequential order, which is
# what keeps each replicate bit-identical to its reference twin.


def _telemetry():
    # Imported lazily: repro.runtime imports the sampling engine, so a
    # module-level import here would be circular. Resolution is a
    # sys.modules hit after the first call; when no ambient recorder is
    # active every span/counter below is a no-op.
    from repro.runtime import telemetry

    return telemetry


def _visited_bitmaps(replications: int, num_nodes: int) -> np.ndarray:
    """Per-replicate visited bitmap, ``(R, num_nodes)`` bool.

    Storage-aware: when the active graph-storage plane is ``memmap``
    (``REPRO_SCALE=web`` or an explicit :func:`graph_storage` scope),
    the bitmap is backed by an anonymous file under :func:`storage_root`
    instead of RAM, so web-scale traversals never hold O(R x N) visited
    state in memory. The file is unlinked immediately after mapping —
    the kernel's pages live only as long as the array does.
    """
    if active_storage_mode() == "memmap":
        fd, path = tempfile.mkstemp(
            prefix="traversal-visited-", suffix=".bool", dir=str(storage_root())
        )
        os.close(fd)
        bitmap = np.memmap(
            path, dtype=np.bool_, mode="w+", shape=(replications, num_nodes)
        )
        os.unlink(path)
        return bitmap
    return np.zeros((replications, num_nodes), dtype=np.bool_)


def _restart_draw(
    stream: np.random.Generator, visited_row: np.ndarray
) -> int:
    """Fresh unvisited node, via the sequential twins' exact call pair."""
    remaining = np.flatnonzero(~visited_row)
    return int(remaining[stream.integers(0, len(remaining))])


@register_kernel(BreadthFirstSampler)
def _bfs_kernel(sampler, n, streams):
    """Level-synchronous batched BFS over all R replicates.

    Per round: emit each active replicate's current level (its FIFO pop
    order), restart exhausted replicates with the twins' restart draw,
    then expand every frontier in one concatenated neighborhood gather.
    Within-round dedup keeps the *first* occurrence of each (replicate,
    node) pair in concatenation order — exactly the order the sequential
    twin marks neighbors visited while popping the level one node at a
    time — so levels, restarts, and truncation all match bit for bit.
    """
    graph = sampler._graph
    num_nodes = graph.num_nodes
    if n > num_nodes:
        raise SamplingError(
            f"BFS cannot collect {n} distinct nodes from a graph of "
            f"{num_nodes}"
        )
    replications = len(streams)
    tele = _telemetry()
    rounds = restarts = gathered = 0
    with tele.span("kernel.bfs", "kernel", replicates=replications, draws=n):
        visited = _visited_bitmaps(replications, num_nodes)
        flat = visited.reshape(-1)
        out = np.empty((replications, n), dtype=np.int64)
        counts = np.zeros(replications, dtype=np.int64)
        frontiers: list[np.ndarray] = []
        with tele.span("kernel.bfs.seed", "kernel"):
            for r, stream in enumerate(streams):
                seed = (
                    sampler._seed_node
                    if sampler._seed_node is not None
                    else int(stream.integers(0, num_nodes))
                )
                visited[r, seed] = True
                frontiers.append(np.array([seed], dtype=np.int64))
        active = list(range(replications))
        with tele.span("kernel.bfs.expand", "kernel"):
            while active:
                rounds += 1
                expand = []
                for r in active:
                    level = frontiers[r]
                    if level.size == 0:
                        restarts += 1
                        fresh = _restart_draw(streams[r], visited[r])
                        visited[r, fresh] = True
                        level = np.array([fresh], dtype=np.int64)
                    space = n - counts[r]
                    take = level[:space] if level.size > space else level
                    out[r, counts[r] : counts[r] + take.size] = take
                    counts[r] += take.size
                    if counts[r] < n:
                        frontiers[r] = level
                        expand.append(r)
                if not expand:
                    break
                owner_ids = np.asarray(expand, dtype=np.int64)
                level_cat = np.concatenate([frontiers[r] for r in expand])
                sizes = np.array(
                    [frontiers[r].size for r in expand], dtype=np.int64
                )
                nbrs, lengths = graph.gather_neighborhoods(level_cat)
                gathered += nbrs.size
                owners = np.repeat(np.repeat(owner_ids, sizes), lengths)
                keys = owners * num_nodes + nbrs
                keys = keys[~flat[keys]]
                if keys.size:
                    # First occurrence per key, back in gather order ==
                    # the sequential enqueue/mark order of the level.
                    _, first = np.unique(keys, return_index=True)
                    first.sort()
                    keys = keys[first]
                    flat[keys] = True
                owners_new = keys // num_nodes
                nodes_new = keys - owners_new * num_nodes
                lo = np.searchsorted(owners_new, owner_ids, side="left")
                hi = np.searchsorted(owners_new, owner_ids, side="right")
                for i, r in enumerate(expand):
                    frontiers[r] = nodes_new[lo[i] : hi[i]]
                active = expand
    tele.counter("traversal.bfs.rounds", rounds)
    tele.counter("traversal.bfs.restarts", restarts)
    tele.counter("traversal.bfs.gathered_arcs", gathered)
    return out, np.ones((replications, n))


# How many queued-but-undrawn entries one refill covers. Blocks are
# drawn in queue order, so any horizon yields the twin's stream order;
# a bounded one just caps how far a stream runs ahead of its pops.
_FF_DRAW_HORIZON = 512
# Lookahead window cap: how many dead (no unvisited neighbors) queue
# entries one round may skip per replicate.
_FF_WINDOW_MAX = 16


@register_kernel(ForestFireSampler)
def _forest_fire_kernel(sampler, n, streams):
    """Batched Forest Fire over pre-drawn per-pop uniform blocks.

    The twin consumes one ``random(deg(v) + 1)`` block per pop, sized by
    the popped node alone — so whenever entries sit in a replicate's
    FIFO queue, their blocks can be drawn *now*, in queue order, with
    one stream call (a restart draw only ever happens when the queue is
    empty, i.e. after every pre-drawn block has been consumed, so the
    stream-call order is exactly the twin's). Each round then advances
    every active replicate through an adaptive window of queued entries:
    dead entries (no unvisited neighbors — the twin's ``continue``, no
    state change beyond consuming their block) are skipped wholesale,
    and the first live entry burns. Neighborhood gathers, burn-size
    inversion, bottom-k key ranking, and all visited/output/queue writes
    are whole-round array ops; the only per-replicate Python work left
    is block refills and restarts, both rare. Replicate ``r`` of the
    output is bit-identical to ``sampler.sample(n, rng=streams[r])``;
    the stream itself may finish *ahead* of the twin's final position
    (blocks pre-drawn for entries the budget never popped) — streams
    are single-use per sweep, exactly how the engine hands them out.
    """
    graph = sampler._graph
    num_nodes = graph.num_nodes
    if n > num_nodes:
        raise SamplingError(
            f"Forest Fire cannot collect {n} distinct nodes from a graph "
            f"of {num_nodes}"
        )
    replications = len(streams)
    log_p = np.log(sampler._forward_prob)
    indptr, indices = graph.indptr, graph.indices
    tele = _telemetry()
    rounds = restarts = gathered = refills = 0
    with tele.span(
        "kernel.forest_fire", "kernel", replicates=replications, draws=n
    ):
        visited = _visited_bitmaps(replications, num_nodes)
        flat = visited.reshape(-1)
        out = np.empty((replications, n), dtype=np.int64)
        out_flat = out.reshape(-1)
        counts = np.zeros(replications, dtype=np.int64)
        # Every emitted node is enqueued exactly once and in the same
        # order, so the output row *is* the queue: out[r, heads[r]:
        # counts[r]] holds replicate r's pending entries and counts
        # doubles as the tail pointer.
        heads = np.zeros(replications, dtype=np.int64)
        # Pre-drawn uniform blocks, one growable row per replicate.
        # ucur/uend are per-row double cursors (read/write); drawn[r] is
        # the queue entry index blocks have been drawn up to.
        cap = 1024
        ubuf = np.empty((replications, cap))
        ubuf_flat = ubuf.reshape(-1)
        ucur = np.zeros(replications, dtype=np.int64)
        uend = np.zeros(replications, dtype=np.int64)
        drawn = np.zeros(replications, dtype=np.int64)
        win = np.ones(replications, dtype=np.int64)
        active = np.arange(replications, dtype=np.int64)
        # wmax mirrors win.max() over live replicates: while it is 1
        # (almost every round on well-connected substrates) each window
        # is a single entry and the round takes the specialized path.
        wmax = 1
        # Cached per-replicate flat offsets into queue/out, visited, and
        # ubuf — recomputed only when active shrinks or ubuf grows.
        act_n = active * n
        act_nn = active * num_nodes
        act_cap = active * cap
        # Conservative lower bounds on min(tails - heads) and
        # min(drawn - heads) over live replicates: while positive, no
        # queue can be empty and no pop can be undrawn, so the restart
        # and refill scans are skipped outright (heads advance by one
        # per fast round, so a decrement keeps the bounds valid).
        qgap = dgap = 0
        expand_span = tele.span("kernel.forest_fire.expand", "kernel")
        with expand_span, np.errstate(divide="ignore"):
            while active.size:
                rounds += 1
                h = heads[active]
                restarted = False
                if qgap <= 0:
                    empty = h == counts[active]
                    if empty.any():
                        restarted = True
                        finished = False
                        for r in active[empty].tolist():
                            restarts += 1
                            seed = _restart_draw(streams[r], visited[r])
                            visited[r, seed] = True
                            c = counts[r]
                            out[r, c] = seed
                            counts[r] = c + 1
                            if c + 1 == n:
                                finished = True
                        if finished:
                            # A restart hit the budget: trim now and
                            # defer this round's pops — otherwise the
                            # completed replicate would keep popping.
                            active = active[counts[active] < n]
                            if active.size:
                                act_n = active * n
                                act_nn = active * num_nodes
                                act_cap = active * cap
                            continue
                        pops = active[~empty]
                        h = h[~empty]
                    else:
                        pops = active
                    qgap = int((counts[active] - heads[active]).min())
                else:
                    pops = active
                if not pops.size:
                    active = active[counts[active] < n]
                    if active.size:
                        act_n = active * n
                        act_nn = active * num_nodes
                        act_cap = active * cap
                    qgap = dgap = 0
                    continue
                if dgap <= 0:
                    undrawn = drawn[pops] == h
                    if undrawn.any():
                        for r in pops[undrawn].tolist():
                            refills += 1
                            stop = min(
                                counts[r], heads[r] + _FF_DRAW_HORIZON
                            )
                            entries = out[r, heads[r] : stop]
                            need = (
                                int(
                                    (
                                        indptr[entries + 1]
                                        - indptr[entries]
                                    ).sum()
                                )
                                + entries.size
                            )
                            end = uend[r] + need
                            if end > cap:
                                while cap < end:
                                    cap *= 2
                                grown = np.empty((replications, cap))
                                grown[:, : ubuf.shape[1]] = ubuf
                                ubuf = grown
                                ubuf_flat = ubuf.reshape(-1)
                                act_cap = active * cap
                            streams[r].random(out=ubuf[r, uend[r] : end])
                            uend[r] = end
                            drawn[r] = stop
                    dgap = int((drawn[pops] - h).min())
                if restarted:
                    # Restarted rows sit outside this round's pops with
                    # an undrawn seed and a one-entry queue: recheck.
                    qgap = dgap = 0
                if wmax == 1:
                    # Fast path: every window is one entry — pop it,
                    # mask its run, burn where anything is unvisited.
                    if pops is active:
                        pn, pnn, pcap = act_n, act_nn, act_cap
                    else:
                        pn = pops * n
                        pnn = pops * num_nodes
                        pcap = pops * cap
                    cands = out_flat[pn + h]
                    cstarts = indptr[cands]
                    lens = indptr[cands + 1] - cstarts
                    total = int(lens.sum())
                    gathered += total
                    nstart = np.empty(pops.size + 1, dtype=np.int64)
                    nstart[0] = 0
                    np.cumsum(lens, out=nstart[1:])
                    nbrs = indices[
                        np.repeat(cstarts - nstart[:-1], lens)
                        + np.arange(total, dtype=np.int64)
                    ]
                    unvis = ~flat[np.repeat(pnn, lens) + nbrs]
                    pref = np.empty(total + 1, dtype=np.int64)
                    pref[0] = 0
                    np.cumsum(unvis, out=pref[1:])
                    availc = pref[nstart[1:]] - pref[nstart[:-1]]
                    uc = ucur[pops]
                    ubase = pcap + uc
                    ucur[pops] = uc + lens + 1
                    heads[pops] = h + 1
                    # Key indices built compressed: unvisited arc i of
                    # segment s sits at block offset (arc position in
                    # run) + 1, i.e. uidx shifted per segment.
                    uidx = np.flatnonzero(unvis)
                    if availc.all():
                        # Every pop burns: pref at the segment starts
                        # is exactly each burn segment's offset.
                        keys_u = ubuf_flat[
                            np.repeat(
                                ubase + 1 - nstart[:-1], availc
                            )
                            + uidx
                        ]
                        done = _burn_commit(
                            n, num_nodes, log_p, flat, out_flat,
                            counts, ubuf_flat,
                            pops, ubase, availc, pref[nstart[:-1]],
                            keys_u, nbrs[uidx],
                        )
                    else:
                        live = availc > 0
                        bidx = np.flatnonzero(live)
                        win[pops[~live]] = 2
                        wmax = 2
                        done = False
                        if bidx.size:
                            uidx = uidx[np.repeat(live, availc)]
                            avail = availc[bidx]
                            lo = np.empty(bidx.size, dtype=np.int64)
                            lo[0] = 0
                            np.cumsum(avail[:-1], out=lo[1:])
                            keys_u = ubuf_flat[
                                np.repeat(
                                    (ubase + 1 - nstart[:-1])[bidx],
                                    avail,
                                )
                                + uidx
                            ]
                            done = _burn_commit(
                                n, num_nodes, log_p, flat, out_flat,
                                counts, ubuf_flat,
                                pops[bidx], ubase[bidx], avail, lo,
                                keys_u, nbrs[uidx],
                            )
                    if done:
                        active = active[counts[active] < n]
                        if active.size:
                            act_n = active * n
                            act_nn = active * num_nodes
                            act_cap = active * cap
                    qgap -= 1
                    dgap -= 1
                    continue
                # General path: adaptive dead-skip windows of up to
                # win[r] queued entries (all drawn; refill above
                # guarantees at least one).
                k = np.minimum(win[pops], drawn[pops] - h)
                totc = int(k.sum())
                gstart = np.empty(pops.size, dtype=np.int64)
                gstart[0] = 0
                np.cumsum(k[:-1], out=gstart[1:])
                ar_c = np.arange(totc, dtype=np.int64)
                cands = out_flat[
                    np.repeat(pops * n + h - gstart, k) + ar_c
                ]
                cstarts = indptr[cands]
                lens = indptr[cands + 1] - cstarts
                total = int(lens.sum())
                gathered += total
                nstart = np.empty(totc, dtype=np.int64)
                nstart[0] = 0
                np.cumsum(lens[:-1], out=nstart[1:])
                nbrs = indices[
                    np.repeat(cstarts - nstart, lens)
                    + np.arange(total, dtype=np.int64)
                ]
                unvis = ~flat[
                    np.repeat(np.repeat(pops * num_nodes, k), lens) + nbrs
                ]
                # Unvisited-count prefix: per-candidate liveness now,
                # per-burn-segment offsets later, from one cumsum.
                pref = np.empty(total + 1, dtype=np.int64)
                pref[0] = 0
                np.cumsum(unvis, out=pref[1:])
                availc = pref[nstart + lens] - pref[nstart]
                # First live entry per window: min over the window of
                # (global index where live, totc otherwise). Dead
                # prefixes advance the head and cursor, nothing else.
                firstg = np.minimum.reduceat(
                    np.where(availc > 0, ar_c, totc), gstart
                )
                has = firstg < gstart + k
                adv = np.where(has, firstg - gstart + 1, k)
                wexc = np.empty(totc + 1, dtype=np.int64)
                wexc[0] = 0
                np.cumsum(lens + 1, out=wexc[1:])
                uc = ucur[pops]
                ubase = pops * cap + uc
                ucur[pops] = uc + wexc[gstart + adv] - wexc[gstart]
                heads[pops] = h + adv
                win[pops] = np.where(
                    has, 1, np.minimum(win[pops] * 2, _FF_WINDOW_MAX)
                )
                done = False
                if has.any():
                    bidx = np.flatnonzero(has)
                    brs = pops[bidx]
                    eix = firstg[bidx]
                    blen = lens[eix]
                    bbase = ubase[bidx] + wexc[eix] - wexc[gstart[bidx]]
                    tot3 = int(blen.sum())
                    f3 = np.empty(bidx.size, dtype=np.int64)
                    f3[0] = 0
                    np.cumsum(blen[:-1], out=f3[1:])
                    ar3 = np.arange(tot3, dtype=np.int64)
                    src = np.repeat(nstart[eix] - f3, blen) + ar3
                    um = unvis[src]
                    # Selection keys sit right after each block's burn
                    # slot, elementwise aligned with the adjacency run.
                    keys_u = ubuf_flat[
                        np.repeat(bbase + 1 - f3, blen) + ar3
                    ][um]
                    nbrs_u = nbrs[src][um]
                    avail = availc[eix]
                    lo = np.empty(bidx.size, dtype=np.int64)
                    lo[0] = 0
                    np.cumsum(avail[:-1], out=lo[1:])
                    done = _burn_commit(
                        n, num_nodes, log_p, flat, out_flat,
                        counts, ubuf_flat, brs, bbase, avail, lo,
                        keys_u, nbrs_u,
                    )
                if done:
                    active = active[counts[active] < n]
                    if active.size:
                        act_n = active * n
                        act_nn = active * num_nodes
                        act_cap = active * cap
                wmax = int(win[active].max()) if active.size else 1
                qgap = dgap = 0
    tele.counter("traversal.forest_fire.rounds", rounds)
    tele.counter("traversal.forest_fire.restarts", restarts)
    tele.counter("traversal.forest_fire.refills", refills)
    tele.counter("traversal.forest_fire.gathered_arcs", gathered)
    return out, np.ones((replications, n))


def _burn_commit(
    n, num_nodes, log_p, flat, out_flat, counts,
    ubuf_flat, brs, bbase, avail, lo, keys_u, nbrs_u,
):
    """Invert burn sizes and write one round's burns for ``brs``.

    ``keys_u``/``nbrs_u`` hold each burning replicate's unvisited
    neighbors (segment ``lo[i] : lo[i] + avail[i]``, replicates in
    ascending order) with their pre-drawn selection keys; ``bbase``
    flat-indexes each block's burn uniform in ``ubuf_flat``. Burn-size
    inversion, per-segment bottom-``take`` key ranking, budget
    truncation, and the visited/output writes all land as whole-round
    array ops; the output write doubles as the enqueue, because every
    emitted node is enqueued in the same order (``out[r, heads[r]:
    counts[r]]`` *is* replicate ``r``'s pending queue). Returns True
    when any replicate hit its budget, i.e. the caller must re-trim
    the active set.
    """
    burns = np.ceil(np.log(ubuf_flat[bbase]) / log_p)
    cb = counts[brs]
    space = n - cb
    take = np.minimum(np.minimum(burns, avail), space).astype(np.int64)
    nseg = brs.size
    amax = int(avail.max())
    # Per-segment bottom-take selection via one padded row argsort:
    # scatter each segment's keys into its own +inf-padded row, sort
    # rows, keep each row's first take columns. Row order == the twin's
    # per-segment key argsort; padding never ranks (take <= avail).
    col = np.arange(keys_u.size, dtype=np.int64) - np.repeat(
        lo - np.arange(nseg, dtype=np.int64) * amax, avail
    )
    mat = np.full(nseg * amax, np.inf)
    mat[col] = keys_u
    sorted_cols = np.argsort(mat.reshape(nseg, amax), axis=1)
    kept = np.arange(amax, dtype=np.int64) < take[:, None]
    picked = nbrs_u[np.repeat(lo, take) + sorted_cols[kept]]
    woff = np.broadcast_to(
        np.arange(amax, dtype=np.int64), (nseg, amax)
    )[kept]
    flat[np.repeat(brs * num_nodes, take) + picked] = True
    out_flat[np.repeat(brs * n + cb, take) + woff] = picked
    counts[brs] = cb + take
    return bool((take == space).any())
