"""Traversal-based baselines: BFS (snowball) and Forest Fire.

Both are *biased* designs without tractable inclusion probabilities (see
the paper's Section 8 discussion of [4, 38, 43, 44]); they are included
as baselines to demonstrate why principled probability samples matter.
Their ``NodeSample.weights`` are all ones and ``uniform`` is **False**
with ``design`` flagging the bias — the estimators will happily run and
visibly mis-estimate, which is exactly the point of the ablation bench.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.batch import register_kernel

__all__ = ["BreadthFirstSampler", "ForestFireSampler"]


class BreadthFirstSampler(Sampler):
    """BFS / snowball sampling from a (random) seed.

    Visits nodes in breadth-first order until ``n`` nodes are collected;
    if the seed's component is exhausted first, a fresh random unvisited
    seed is picked (multi-seed snowball). Each node appears at most once
    — BFS is without replacement, unlike the probability designs.
    """

    def __init__(self, graph: Graph, seed_node: int | None = None):
        super().__init__(graph)
        if seed_node is not None and not 0 <= seed_node < graph.num_nodes:
            raise SamplingError(
                f"seed node {seed_node} outside [0, {graph.num_nodes})"
            )
        self._seed_node = seed_node

    @property
    def design(self) -> str:
        return "bfs"

    @property
    def uniform(self) -> bool:
        return False

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        if n > self._graph.num_nodes:
            raise SamplingError(
                f"BFS cannot collect {n} distinct nodes from a graph of "
                f"{self._graph.num_nodes}"
            )
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        visited = np.zeros(self._graph.num_nodes, dtype=bool)
        order: list[int] = []
        queue: collections.deque[int] = collections.deque()
        seed = (
            self._seed_node
            if self._seed_node is not None
            else int(gen.integers(0, self._graph.num_nodes))
        )
        queue.append(seed)
        visited[seed] = True
        while len(order) < n:
            if not queue:
                remaining = np.flatnonzero(~visited)
                fresh = int(remaining[gen.integers(0, len(remaining))])
                visited[fresh] = True
                queue.append(fresh)
            v = queue.popleft()
            order.append(v)
            for u in indices[indptr[v] : indptr[v + 1]]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
        nodes = np.asarray(order[:n], dtype=np.int64)
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=False)


class ForestFireSampler(Sampler):
    """Forest Fire sampling [Leskovec & Faloutsos 2006].

    A hybrid of BFS and RW: from each burning node, a geometrically
    distributed number of unvisited neighbors (mean ``p / (1 - p)``)
    catches fire. When the fire dies out, it restarts from a fresh
    random node. Biased like BFS; included as a related-work baseline.
    """

    def __init__(self, graph: Graph, forward_prob: float = 0.7):
        super().__init__(graph)
        if not 0.0 < forward_prob < 1.0:
            raise SamplingError(
                f"forward_prob must be in (0, 1), got {forward_prob}"
            )
        self._forward_prob = forward_prob

    @property
    def design(self) -> str:
        return "forest_fire"

    @property
    def uniform(self) -> bool:
        return False

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        if n > self._graph.num_nodes:
            raise SamplingError(
                f"Forest Fire cannot collect {n} distinct nodes from a graph "
                f"of {self._graph.num_nodes}"
            )
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        visited = np.zeros(self._graph.num_nodes, dtype=bool)
        order: list[int] = []
        frontier: collections.deque[int] = collections.deque()
        p = self._forward_prob
        while len(order) < n:
            if not frontier:
                remaining = np.flatnonzero(~visited)
                seed = int(remaining[gen.integers(0, len(remaining))])
                visited[seed] = True
                order.append(seed)
                frontier.append(seed)
                continue
            v = frontier.popleft()
            unvisited = [
                int(u)
                for u in indices[indptr[v] : indptr[v + 1]]
                if not visited[u]
            ]
            if not unvisited:
                continue
            burn_count = min(int(gen.geometric(1.0 - p)), len(unvisited))
            chosen = gen.choice(len(unvisited), size=burn_count, replace=False)
            for idx in chosen:
                u = unvisited[idx]
                visited[u] = True
                order.append(u)
                frontier.append(u)
                if len(order) == n:
                    break
        nodes = np.asarray(order[:n], dtype=np.int64)
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=False)


# Traversal designs are without-replacement frontier processes — the
# visited set couples every step to the whole history, so no vectorized
# multi-walker kernel exists. Declare the sequential fallback explicitly
# so `registered_kernel` documents the decision instead of implying an
# unported design.
register_kernel(BreadthFirstSampler, None)
register_kernel(ForestFireSampler, None)
