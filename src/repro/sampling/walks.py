"""Crawling designs (Section 3.1.2): RW, MHRW, WRW, RW-with-jumps.

All walk samplers share the conventions:

* the walk starts at ``start`` (or a uniform random node);
* ``burn_in`` initial steps are discarded (0 by default — the paper's
  experiments use full walks and rely on the asymptotics of Section 5.4);
* every visited node after burn-in is a draw (thin afterwards with
  :meth:`NodeSample.thin` if desired);
* per-draw weights are the design's stationary weights, enabling the
  Hansen-Hurwitz corrected estimators of Section 5.

Replicated experiments should prefer :meth:`Sampler.sample_many`
(:mod:`repro.sampling.batch`): it advances all replicate walkers as one
vectorized frontier and is bit-for-bit equivalent to calling
:meth:`sample` once per spawned replicate stream — the sequential
kernels below are the reference semantics of that contract.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.adjacency import Graph
from repro.rng import ensure_rng
from repro.sampling.base import NodeSample, Sampler

__all__ = [
    "RandomWalkSampler",
    "MetropolisHastingsSampler",
    "WeightedRandomWalkSampler",
    "RandomWalkWithJumpsSampler",
]


def _segmented_cumsum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-run inclusive cumulative sums of a CSR-aligned array.

    Each adjacency run ``values[indptr[v]:indptr[v+1]]`` is scanned
    independently (Hillis-Steele doubling: O(total * log max_degree),
    fully vectorized). Summing locally instead of over one global
    ``np.cumsum`` keeps next-hop selection exact: a global running sum
    over all arcs loses the low bits of small weights that sit behind a
    large accumulated prefix, which can mis-select neighbors on large
    or weight-skewed graphs.
    """
    out = np.asarray(values, dtype=float).copy()
    if len(out) == 0:
        return out
    lengths = np.diff(indptr)
    position = np.arange(len(out), dtype=np.int64) - np.repeat(
        indptr[:-1], lengths
    )
    max_length = int(lengths.max())
    shift = 1
    while shift < max_length:
        idx = np.flatnonzero(position >= shift)
        out[idx] += out[idx - shift]
        shift <<= 1
    return out


def build_segmented_cumsum(writer, values, indptr, chunk_arcs=None) -> None:
    """Chunked out-of-core twin of :func:`_segmented_cumsum`.

    Runs the Hillis-Steele scan one node block at a time (whole runs
    per block). The scan is per-run independent — an element only ever
    combines with elements of its own run, and doubling iterations past
    a run's length touch none of its elements — so the block results
    are bit-identical to the one-shot pass, in O(chunk) peak RAM.
    """
    from repro.graph.planes import DEFAULT_CHUNK_ARCS, node_blocks

    if chunk_arcs is None:
        chunk_arcs = DEFAULT_CHUNK_ARCS
    indptr = np.asanyarray(indptr)
    out = writer.create("cumsum", np.float64, (int(indptr[-1]),))
    for first, stop, lo, hi in node_blocks(indptr, chunk_arcs):
        sub_indptr = np.asarray(indptr[first : stop + 1]) - lo
        out[lo:hi] = _segmented_cumsum(np.asarray(values[lo:hi]), sub_indptr)


def _derived_local_cumulative(
    arc_weights: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """Per-run local cumulative weights, via the derived-plane store.

    RAM-mode runs compute in RAM like always; under the memmap storage
    plane the cumsum builds chunked on disk, reopens read-only, and is
    reused by every sampler (and every later run) over bit-identical
    ``(indptr, arc_weights)`` inputs.
    """
    from repro.graph.planes import plane_store_for

    store = plane_store_for(indptr, arc_weights, nbytes=len(arc_weights) * 8)
    if store is None:
        return _segmented_cumsum(arc_weights, indptr)
    planes = store.get_or_build(
        "walk-cumsum",
        sources=(indptr, arc_weights),
        build=lambda writer: build_segmented_cumsum(writer, arc_weights, indptr),
    )
    return planes["cumsum"]


class _WalkSampler(Sampler):
    """Shared start/burn-in plumbing for walk designs."""

    def __init__(self, graph: Graph, start: int | None = None, burn_in: int = 0):
        super().__init__(graph)
        if burn_in < 0:
            raise SamplingError(f"burn_in must be non-negative, got {burn_in}")
        if start is not None and not 0 <= start < graph.num_nodes:
            raise SamplingError(
                f"start node {start} outside [0, {graph.num_nodes})"
            )
        if graph.num_edges == 0:
            raise SamplingError("walk samplers require at least one edge")
        self._start = start
        self._burn_in = burn_in

    def _initial_node(self, gen: np.random.Generator) -> int:
        if self._start is not None:
            return self._start
        # Start from a random non-isolated node so the walk can move.
        degrees = self._graph.degrees()
        candidates = np.flatnonzero(degrees > 0)
        return int(candidates[gen.integers(0, len(candidates))])

    @property
    def uniform(self) -> bool:
        return False


class RandomWalkSampler(_WalkSampler):
    """Simple random walk: next hop uniform among the current neighbors.

    On a connected non-bipartite graph the stationary distribution is
    ``pi(v) ~ deg(v)`` [Lovasz 1993], so draws carry weight ``deg(v)``.
    """

    @property
    def design(self) -> str:
        return "rw"

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        total = n + self._burn_in
        out = np.empty(total, dtype=np.int64)
        current = self._initial_node(gen)
        # Pre-draw uniform variates in blocks for speed.
        randoms = gen.random(total)
        for i in range(total):
            lo, hi = indptr[current], indptr[current + 1]
            if hi == lo:
                raise SamplingError(
                    f"random walk reached isolated node {current}"
                )
            current = int(indices[lo + int(randoms[i] * (hi - lo))])
            out[i] = current
        nodes = out[self._burn_in :]
        weights = self._graph.degrees()[nodes].astype(float)
        return NodeSample(nodes, weights, design=self.design, uniform=False)


class MetropolisHastingsSampler(_WalkSampler):
    """MHRW targeting the uniform distribution.

    Proposes a uniform neighbor ``v`` of the current node ``u`` and
    accepts with probability ``min(1, deg(u) / deg(v))``; on rejection
    the walk stays (and ``u`` is drawn again). Asymptotically uniform, so
    weights are 1 — but the rejections make it less sample-efficient
    than RW + reweighting, which is exactly what the paper (and [20, 51])
    observe.
    """

    @property
    def design(self) -> str:
        return "mhrw"

    @property
    def uniform(self) -> bool:
        return True

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        degrees = self._graph.degrees()
        total = n + self._burn_in
        out = np.empty(total, dtype=np.int64)
        current = self._initial_node(gen)
        proposal_randoms = gen.random(total)
        accept_randoms = gen.random(total)
        for i in range(total):
            lo, hi = indptr[current], indptr[current + 1]
            if hi == lo:
                raise SamplingError(f"MHRW reached isolated node {current}")
            proposal = int(indices[lo + int(proposal_randoms[i] * (hi - lo))])
            if accept_randoms[i] * degrees[proposal] <= degrees[current]:
                current = proposal
            out[i] = current
        nodes = out[self._burn_in :]
        return NodeSample(nodes, np.ones(n), design=self.design, uniform=True)


class WeightedRandomWalkSampler(_WalkSampler):
    """Random walk on a weighted graph [Aldous & Fill].

    Edge weights are supplied as an array aligned with the graph's CSR
    ``indices`` (one weight per directed arc; the two arcs of an edge
    must carry equal weight). The stationary probability of node ``v``
    is proportional to its *strength* (sum of incident edge weights),
    which becomes the draw weight.

    ``next_hop`` selects the next-hop engine: ``"search"`` (default)
    does an O(log d) inverse-CDF lookup over the per-run local
    cumulative sums; ``"alias"`` answers the same categorical draw in
    O(1) via per-run Walker alias tables (:mod:`repro.sampling.alias`).
    Both consume one uniform variate per step, but map it to neighbors
    differently, so the two engines are *statistically* (not bitwise)
    equivalent — see the alias module's equivalence contract.
    """

    def __init__(
        self,
        graph: Graph,
        arc_weights: np.ndarray,
        start: int | None = None,
        burn_in: int = 0,
        next_hop: str = "search",
    ):
        super().__init__(graph, start=start, burn_in=burn_in)
        if next_hop not in ("search", "alias"):
            raise SamplingError(
                f"unknown next_hop {next_hop!r}; use 'search' or 'alias'"
            )
        arc_weights = np.asarray(arc_weights, dtype=float)
        if arc_weights.shape != graph.indices.shape:
            raise SamplingError(
                "arc_weights must align with graph.indices "
                f"(shape {graph.indices.shape}, got {arc_weights.shape})"
            )
        if len(arc_weights) and arc_weights.min() <= 0:
            raise SamplingError("arc weights must be strictly positive")
        self._arc_weights = arc_weights
        # Per-run *local* cumulative weights for O(log d) next-hop
        # sampling. Local (not global) sums keep the inverse-CDF lookup
        # exact on graphs whose total arc weight dwarfs individual run
        # weights; see _segmented_cumsum.
        self._local_cumulative = _derived_local_cumulative(
            arc_weights, graph.indptr
        )
        degrees = graph.degrees()
        if len(arc_weights):
            run_ends = np.maximum(graph.indptr[1:] - 1, 0)
            self._strength = np.where(
                degrees > 0, self._local_cumulative[run_ends], 0.0
            )
        else:
            self._strength = np.zeros(graph.num_nodes)
        self._next_hop = next_hop
        if next_hop == "alias":
            from repro.sampling.alias import derived_alias_tables

            # Normalize by the same per-run strengths the binary search
            # uses, so both engines encode identical probabilities.
            # Routed through the derived-plane store: under the memmap
            # storage plane the tables build chunked on disk and warm
            # runs reopen them instead of rebuilding.
            self._alias_tables = derived_alias_tables(
                graph.indptr, arc_weights, self._strength
            )
        else:
            self._alias_tables = None

    @property
    def design(self) -> str:
        return "wrw"

    @property
    def next_hop(self) -> str:
        """Active next-hop engine (``"search"`` or ``"alias"``)."""
        return self._next_hop

    @property
    def strengths(self) -> np.ndarray:
        """Stationary weights (node strengths) of the weighted walk."""
        return self._strength

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        cumulative = self._local_cumulative
        total = n + self._burn_in
        out = np.empty(total, dtype=np.int64)
        current = self._initial_node(gen)
        randoms = gen.random(total)
        use_alias = self._next_hop == "alias"
        if use_alias:
            prob = self._alias_tables.prob
            alias = self._alias_tables.alias
        for i in range(total):
            lo, hi = indptr[current], indptr[current + 1]
            if hi == lo:
                raise SamplingError(f"weighted walk reached isolated node {current}")
            if use_alias:
                u = randoms[i] * (hi - lo)
                j = int(u)
                arc = lo + j
                if u - j < prob[arc]:
                    current = int(indices[arc])
                else:
                    current = int(indices[alias[arc]])
            else:
                target = randoms[i] * self._strength[current]
                pos = int(np.searchsorted(cumulative[lo:hi], target, side="right"))
                pos = min(pos, hi - lo - 1)
                current = int(indices[lo + pos])
            out[i] = current
        nodes = out[self._burn_in :]
        return NodeSample(
            nodes, self._strength[nodes], design=self.design, uniform=False
        )


class RandomWalkWithJumpsSampler(_WalkSampler):
    """RW with uniform restarts [Avrachenkov et al. 2010].

    From node ``u``: with probability ``alpha / (deg(u) + alpha)`` jump
    to a uniform random node, otherwise take a RW step. Stationary
    distribution ``pi(v) ~ deg(v) + alpha``; requires a sampling frame
    for the jumps (usable when UIS is available but expensive).
    """

    def __init__(
        self,
        graph: Graph,
        alpha: float = 10.0,
        start: int | None = None,
        burn_in: int = 0,
    ):
        super().__init__(graph, start=start, burn_in=burn_in)
        if alpha <= 0:
            raise SamplingError(f"alpha must be positive, got {alpha}")
        self._alpha = float(alpha)

    @property
    def design(self) -> str:
        return "rwj"

    @property
    def alpha(self) -> float:
        """Jump weight (pseudo-degree added to every node)."""
        return self._alpha

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> NodeSample:
        self._check_size(n)
        gen = ensure_rng(rng)
        indptr, indices = self._graph.indptr, self._graph.indices
        num_nodes = self._graph.num_nodes
        alpha = self._alpha
        total = n + self._burn_in
        out = np.empty(total, dtype=np.int64)
        current = self._initial_node(gen)
        jump_randoms = gen.random(total)
        step_randoms = gen.random(total)
        for i in range(total):
            lo, hi = indptr[current], indptr[current + 1]
            degree = hi - lo
            if jump_randoms[i] * (degree + alpha) < alpha:
                current = int(step_randoms[i] * num_nodes)
            else:
                current = int(indices[lo + int(step_randoms[i] * degree)])
            out[i] = current
        nodes = out[self._burn_in :]
        weights = self._graph.degrees()[nodes].astype(float) + alpha
        return NodeSample(nodes, weights, design=self.design, uniform=False)
