"""Error metrics and replication harnesses (Section 6.1)."""

from repro.stats.compare import CategoryGraphComparison, compare_category_graphs
from repro.stats.errors import nrmse, nrmse_stack, relative_error
from repro.stats.percentiles import percentile_edge, positive_weight_pairs
from repro.stats.prefix import IncrementalPrefixLadder, RungEstimates
from repro.stats.replication import (
    SweepResult,
    run_nrmse_sweep,
    run_nrmse_sweep_from_samples,
)

__all__ = [
    "nrmse",
    "CategoryGraphComparison",
    "compare_category_graphs",
    "nrmse_stack",
    "relative_error",
    "percentile_edge",
    "positive_weight_pairs",
    "SweepResult",
    "IncrementalPrefixLadder",
    "RungEstimates",
    "run_nrmse_sweep",
    "run_nrmse_sweep_from_samples",
]
