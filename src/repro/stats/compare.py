"""Comparing two category graphs (estimate vs truth, or two estimates).

Quantifies agreement the way a reader of Fig. 7 would eyeball it:
element-wise relative errors, rank correlation of edge weights, and
top-k heavy-edge overlap. Used by integration tests and handy for
downstream users validating their own pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.category_graph import CategoryGraph

__all__ = ["CategoryGraphComparison", "compare_category_graphs"]


@dataclass(frozen=True)
class CategoryGraphComparison:
    """Agreement summary between two category graphs.

    All weight statistics run over pairs where *both* graphs have a
    finite weight and the reference weight is positive.
    """

    #: Median of |w_est - w_ref| / w_ref.
    median_weight_relative_error: float
    #: Spearman rank correlation of the common finite weights.
    weight_rank_correlation: float
    #: Fraction of the reference's top-k edges found in the estimate's.
    top_edge_overlap: float
    #: Median of |size_est - size_ref| / size_ref over non-empty categories.
    median_size_relative_error: float
    #: Number of pairs entering the weight statistics.
    compared_pairs: int

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return (
            f"compared {self.compared_pairs} pairs: median weight error "
            f"{self.median_weight_relative_error:.1%}, rank corr "
            f"{self.weight_rank_correlation:+.2f}, top-edge overlap "
            f"{self.top_edge_overlap:.0%}, median size error "
            f"{self.median_size_relative_error:.1%}"
        )


def compare_category_graphs(
    estimate: CategoryGraph,
    reference: CategoryGraph,
    top_k: int = 10,
) -> CategoryGraphComparison:
    """Compare an estimated category graph against a reference.

    Both graphs must share the same category indexing (same names, same
    order) — the normal situation when both came from the same
    partition.
    """
    if estimate.names != reference.names:
        raise EstimationError(
            "category graphs must share identical category names/order"
        )
    c = estimate.num_categories
    idx = np.triu_indices(c, k=1)
    w_est = estimate.weights[idx]
    w_ref = reference.weights[idx]
    usable = np.isfinite(w_est) & np.isfinite(w_ref) & (w_ref > 0)
    if usable.sum() == 0:
        raise EstimationError("no comparable category pairs")
    rel = np.abs(w_est[usable] - w_ref[usable]) / w_ref[usable]

    rank_corr = _spearman(w_est[usable], w_ref[usable])

    ref_top = {frozenset((a, b)) for a, b, _ in reference.top_edges(top_k)}
    est_top = {frozenset((a, b)) for a, b, _ in estimate.top_edges(top_k)}
    overlap = len(ref_top & est_top) / len(ref_top) if ref_top else 1.0

    sizes_ref = np.asarray(reference.sizes, dtype=float)
    sizes_est = np.asarray(estimate.sizes, dtype=float)
    size_ok = np.isfinite(sizes_est) & np.isfinite(sizes_ref) & (sizes_ref > 0)
    if size_ok.any():
        size_rel = float(
            np.median(
                np.abs(sizes_est[size_ok] - sizes_ref[size_ok]) / sizes_ref[size_ok]
            )
        )
    else:
        size_rel = float("nan")

    return CategoryGraphComparison(
        median_weight_relative_error=float(np.median(rel)),
        weight_rank_correlation=rank_corr,
        top_edge_overlap=overlap,
        median_size_relative_error=size_rel,
        compared_pairs=int(usable.sum()),
    )


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 2:
        return float("nan")
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt(np.dot(ra, ra) * np.dot(rb, rb))
    if denom == 0:
        return 0.0
    return float(np.dot(ra, rb) / denom)
