"""Estimation-error metrics (Section 6.1 of the paper).

The paper scores estimators with the Normalized Root Mean Square Error

    NRMSE(x_hat) = sqrt(E[(x_hat - x)^2]) / x          (Eq. 17)

where the expectation runs over independent replications (walks). We
compute it element-wise over stacked replicate estimates, ignoring
``nan`` replicates (estimator undefined on that sample) but reporting
coverage so silent gaps cannot masquerade as accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError

__all__ = ["nanmean_rows", "nrmse", "nrmse_stack", "relative_error"]


def nanmean_rows(stack: np.ndarray) -> np.ndarray:
    """``np.nanmean(stack, axis=0)`` without the empty-slice warning.

    Bit-identical to ``nanmean`` (same masked sum in the same order,
    same ``0/0 -> nan`` for all-nan columns, ``inf`` contributions
    preserved), but silent and **thread-safe**: suppressing the warning
    with ``warnings.catch_warnings`` mutates global filter state, which
    races when the DAG plan scheduler reduces several cells in
    concurrent driver threads.
    """
    mask = ~np.isnan(stack)
    total = np.where(mask, stack, 0.0).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return total / mask.sum(axis=0)


def nrmse(estimates: np.ndarray, truth: float) -> float:
    """Eq. (17) for a scalar quantity over replicate estimates."""
    estimates = np.asarray(estimates, dtype=float)
    if estimates.size == 0:
        raise EstimationError("nrmse needs at least one replicate estimate")
    if truth == 0 or not np.isfinite(truth):
        raise EstimationError(f"nrmse is undefined for truth={truth}")
    finite = estimates[np.isfinite(estimates)]
    if finite.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((finite - truth) ** 2)) / abs(truth))


def nrmse_stack(
    estimate_stack: np.ndarray, truth: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Element-wise Eq. (17) over a stack of replicate estimate arrays.

    Parameters
    ----------
    estimate_stack:
        Shape ``(R, ...)`` — R replications of an estimate array.
    truth:
        Shape ``(...)`` — the true values.

    Returns
    -------
    ``(nrmse_values, coverage)`` of shape ``(...)``; ``coverage`` is the
    fraction of replicates with a finite estimate for each element.
    Elements whose truth is zero or non-finite get ``nan`` (the metric
    normalises by the true value).
    """
    estimate_stack = np.asarray(estimate_stack, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if estimate_stack.ndim != truth.ndim + 1 or estimate_stack.shape[1:] != truth.shape:
        raise EstimationError(
            f"estimate stack {estimate_stack.shape} does not stack over "
            f"truth {truth.shape}"
        )
    finite = np.isfinite(estimate_stack)
    coverage = finite.mean(axis=0)
    mse = nanmean_rows((estimate_stack - truth) ** 2)
    with np.errstate(invalid="ignore", divide="ignore"):
        values = np.where(
            np.isfinite(truth) & (truth != 0), np.sqrt(mse) / np.abs(truth), np.nan
        )
    return values, coverage


def relative_error(estimate: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """``|x_hat - x| / x`` element-wise; ``nan`` where undefined."""
    estimate = np.asarray(estimate, dtype=float)
    truth = np.asarray(truth, dtype=float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(
            np.isfinite(truth) & (truth != 0),
            np.abs(estimate - truth) / np.abs(truth),
            np.nan,
        )
