"""Percentile edge selection (Fig. 3(g) of the paper).

The paper compares estimation of a *low-weight* edge (the edge at the
25th percentile of true weights) against a *high-weight* edge (75th
percentile). These helpers pick those category pairs from a true
category graph.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.category_graph import CategoryGraph

__all__ = ["percentile_edge", "positive_weight_pairs"]


def positive_weight_pairs(category_graph: CategoryGraph) -> np.ndarray:
    """All (a, b) index pairs (a < b) with finite positive true weight."""
    w = category_graph.weights
    c = category_graph.num_categories
    pairs = [
        (a, b)
        for a in range(c)
        for b in range(a + 1, c)
        if np.isfinite(w[a, b]) and w[a, b] > 0
    ]
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


def percentile_edge(
    category_graph: CategoryGraph, percentile: float
) -> tuple[int, int]:
    """The category pair whose true weight sits at ``percentile``.

    ``percentile=25`` gives the paper's ``e_low``, ``75`` its ``e_high``.
    """
    if not 0 <= percentile <= 100:
        raise EstimationError(f"percentile must be in [0, 100], got {percentile}")
    pairs = positive_weight_pairs(category_graph)
    if len(pairs) == 0:
        raise EstimationError("category graph has no positive-weight edges")
    weights = category_graph.weights[pairs[:, 0], pairs[:, 1]]
    target = np.percentile(weights, percentile)
    best = int(np.argmin(np.abs(weights - target)))
    return int(pairs[best, 0]), int(pairs[best, 1])
