"""Incremental prefix sweeps over one replicate sample.

The NRMSE-vs-sample-size ladder evaluates every estimator on each prefix
of each replicate crawl (a crawl's prefix *is* a shorter crawl). Doing
that with :meth:`~repro.sampling.observation._ObservationBase.subset_draws`
re-compresses the draw list from scratch at every rung — an
O(K x total log total) re-subsetting pass per replicate, plus a fresh
estimation pass over rebuilt arrays. This module replaces it with
running prefix state:

* the full-length star and induced observations are built **once**
  (sharing one draw-list compression via ``observe_both``);
* per rung, only the *new* draws update an integer multiplicity vector
  (an O(delta) delta update);
* every estimator reduction then runs over **fixed, precomputed** key
  arrays (category keys of the neighbor histogram entries and of both
  induced-edge directions) with per-rung weights derived from the
  multiplicity state — plain ``np.bincount`` histograms, no draw-list
  sort, no remapping, no re-gathered CSR slices.

Equivalence contract
--------------------
Rows outside the prefix have multiplicity 0, hence reweighting ratio
``m/w`` exactly ``0.0``; IEEE-754 addition of ``0.0`` to a non-negative
partial sum is an exact no-op, so a histogram over the *full* key arrays
with zero-weighted excluded entries accumulates the **bit-identical**
floating-point values, in the same order, as the subset path that first
compresses the prefix and then reduces. Consequently:

* :meth:`IncrementalPrefixLadder.estimates` returns estimates
  bit-for-bit equal to running the four estimator families of
  :mod:`repro.core` on ``subset_draws(np.arange(size))`` observations;
* :meth:`IncrementalPrefixLadder.advance` materializes observation
  objects whose every field is bit-for-bit identical to the
  ``subset_draws`` output (same distinct-row order, multiplicities,
  sliced neighbor CSR and induced-edge arrays).

``tests/stats/test_prefix.py`` enforces both properties; the mirrored
estimator formulas below must stay in lockstep with
:mod:`repro.core.category_size` and :mod:`repro.core.edge_weight`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.adjacency import Graph
from repro.graph.partition import CategoryPartition
from repro.sampling.base import NodeSample
from repro.sampling.observation import (
    InducedObservation,
    StarObservation,
    observe_both,
)

__all__ = ["IncrementalPrefixLadder", "RungEstimates"]


@dataclass(frozen=True)
class RungEstimates:
    """All four estimator families evaluated at one ladder rung.

    ``weights_star`` is deferred behind a callable because Eq. (9)/(16)
    needs plug-in category sizes, which the sweep harness resolves from
    the rung's own size estimates (or the oracle).
    """

    sizes_induced: np.ndarray
    sizes_star: np.ndarray
    weights_induced: np.ndarray
    weights_star: Callable[[np.ndarray], np.ndarray]


class IncrementalPrefixLadder:
    """Prefix estimates of one sample, via incremental aggregates.

    Call :meth:`estimates` (or :meth:`advance`) with strictly increasing
    prefix sizes; each call folds only the draws since the previous rung
    into the running multiplicity state. Use one instance per sweep —
    both entry points share (and advance) the same prefix state.
    """

    def __init__(
        self,
        graph: Graph,
        partition: CategoryPartition,
        sample: NodeSample,
        observations: "tuple[InducedObservation, StarObservation] | None" = None,
    ):
        if observations is None:
            self._induced, self._star = observe_both(graph, partition, sample)
        else:
            # Checkpoint-restored observations (repro.runtime): arrays
            # round-trip exactly through npz, so a ladder seeded from
            # disk is field-for-field the ladder observe_both builds.
            self._induced, self._star = observations
        star = self._star
        self._num_draws = star.num_draws
        self._multiplicities = np.zeros(star.num_distinct, dtype=np.int64)
        self._prefix = 0
        c = star.num_categories
        # Fixed per-sample reduction keys; per rung only their weights
        # change (zero for rows outside the prefix).
        self._weights = star.distinct_weights
        self._categories = star.distinct_categories
        self._degrees = star.distinct_degrees.astype(float)
        lengths = np.diff(star.neighbor_indptr)
        self._nbr_owner = np.repeat(
            np.arange(star.num_distinct, dtype=np.int64), lengths
        )
        self._nbr_keys = (
            np.repeat(star.distinct_categories, lengths) * np.int64(c)
            + star.neighbor_categories
        )
        self._nbr_counts = star.neighbor_counts.astype(float)
        edges = self._induced.induced_edges
        self._edge_src = np.ascontiguousarray(edges[:, 0])
        self._edge_dst = np.ascontiguousarray(edges[:, 1])
        cats_i = self._categories[self._edge_src]
        cats_j = self._categories[self._edge_dst]
        self._edge_keys = np.concatenate(
            (cats_i * np.int64(c) + cats_j, cats_j * np.int64(c) + cats_i)
        )
        # Per-rung scratch (reused to avoid re-allocating the two
        # largest temporaries every rung).
        self._edge_scratch = np.empty(2 * len(self._edge_src))
        self._nbr_scratch = np.empty(len(self._nbr_owner))

    @property
    def num_draws(self) -> int:
        """Full sample length (the largest valid prefix)."""
        return self._num_draws

    @property
    def observations(self) -> tuple[InducedObservation, StarObservation]:
        """The full-sample ``(induced, star)`` pair behind the ladder.

        The parallel executor serializes these into its checkpoint so a
        resumed run can seed new ladders without re-measuring.
        """
        return self._induced, self._star

    def fold(self, size: int) -> None:
        """Advance the prefix state to ``size`` without estimating.

        The resume path of the parallel executor
        (:mod:`repro.runtime`): rungs already persisted in a checkpoint
        are replayed from disk, and each worker only *folds* its
        replicates past them. Folding is pure integer multiplicity
        accumulation — order-free and exact — so the estimates of every
        later rung are bit-identical whether the earlier rungs were
        computed or skipped.
        """
        self._fold(size)

    def _fold(self, size: int) -> None:
        """Fold draws ``[prefix, size)`` into the multiplicity state."""
        if size <= self._prefix:
            raise EstimationError(
                f"prefix sizes must increase, got {size} after {self._prefix}"
            )
        if size > self._num_draws:
            raise EstimationError(
                f"prefix size {size} outside (0, {self._num_draws}]"
            )
        np.add.at(
            self._multiplicities,
            self._star.draw_to_distinct[self._prefix : size],
            1,
        )
        self._prefix = size

    # ------------------------------------------------------------------
    # Fast path: estimates straight from the running aggregates
    # ------------------------------------------------------------------
    def estimates(
        self,
        size: int,
        population_size: float,
        mean_degree_model: str = "per-category",
    ) -> RungEstimates:
        """Estimator-family outputs for the first ``size`` draws.

        Bit-for-bit equal to evaluating :mod:`repro.core` estimators on
        ``subset_draws``-restricted observations (see module docstring).
        """
        if mean_degree_model not in ("per-category", "global"):
            raise EstimationError(
                f"unknown mean_degree_model {mean_degree_model!r}; "
                "use 'per-category' or 'global'"
            )
        self._fold(size)
        star = self._star
        c = star.num_categories
        # Reweighting ratios m(v)/w(v); exactly 0.0 outside the prefix.
        ratios = self._multiplicities / self._weights
        in_prefix = self._multiplicities > 0
        # Early rungs touch few distinct rows; pick per-reduction between
        # compressed (live entries only) and full passes. Either path
        # accumulates bit-identical sums (excluded entries add exact 0.0).
        sparse_rung = 3 * int(np.count_nonzero(in_prefix)) < len(in_prefix)

        # Eq. (4)/(11) — mirrors estimate_sizes_induced.
        reweighted = np.bincount(
            self._categories, weights=ratios, minlength=c
        )
        total_reweighted = reweighted.sum()
        if total_reweighted <= 0:
            raise EstimationError("sample has no usable draws")
        sizes_induced = population_size * reweighted / total_reweighted

        # Eq. (5)/(12) — mirrors estimate_sizes_star.
        degree_totals = np.bincount(
            self._categories, weights=ratios * self._degrees, minlength=c
        )
        total_degree = degree_totals.sum()
        if total_degree <= 0:
            sizes_star = np.full(c, np.nan)
            neighbor_matrix = np.zeros((c, c))
        else:
            k_global = total_degree / total_reweighted
            with np.errstate(invalid="ignore", divide="ignore"):
                k_per_category = np.where(
                    reweighted > 0, degree_totals / reweighted, np.nan
                )
            if sparse_rung:
                # Early rungs: reduce only the live histogram entries.
                idx = np.flatnonzero(in_prefix[self._nbr_owner])
                neighbor_matrix = np.bincount(
                    self._nbr_keys[idx],
                    weights=ratios[self._nbr_owner[idx]] * self._nbr_counts[idx],
                    minlength=c * c,
                ).reshape(c, c)
            else:
                np.take(ratios, self._nbr_owner, out=self._nbr_scratch)
                np.multiply(
                    self._nbr_scratch, self._nbr_counts, out=self._nbr_scratch
                )
                neighbor_matrix = np.bincount(
                    self._nbr_keys, weights=self._nbr_scratch, minlength=c * c
                ).reshape(c, c)
            f_vol = neighbor_matrix.sum(axis=0) / total_degree
            k_a = (
                k_per_category
                if mean_degree_model == "per-category"
                else np.full(c, k_global)
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                sizes_star = population_size * f_vol * k_global / k_a

        # Eq. (8)/(15) — mirrors estimate_weights_induced.
        num_edges = len(self._edge_src)
        if num_edges:
            if sparse_rung:
                # Early rungs: most edges have an unsampled endpoint and
                # contribute exactly 0.0 — reduce only the live ones.
                idx = np.flatnonzero(
                    in_prefix[self._edge_src] & in_prefix[self._edge_dst]
                )
                contributions = (
                    ratios[self._edge_src[idx]] * ratios[self._edge_dst[idx]]
                )
                numerator = np.bincount(
                    np.concatenate(
                        (self._edge_keys[idx], self._edge_keys[num_edges + idx])
                    ),
                    weights=np.concatenate((contributions, contributions)),
                    minlength=c * c,
                ).reshape(c, c)
            else:
                scratch = self._edge_scratch
                np.multiply(
                    ratios[self._edge_src], ratios[self._edge_dst],
                    out=scratch[:num_edges],
                )
                scratch[num_edges:] = scratch[:num_edges]
                numerator = np.bincount(
                    self._edge_keys, weights=scratch, minlength=c * c
                ).reshape(c, c)
        else:
            numerator = np.zeros((c, c))
        denominator = np.outer(reweighted, reweighted)
        with np.errstate(invalid="ignore", divide="ignore"):
            weights_induced = np.where(
                denominator > 0, numerator / denominator, np.nan
            )
        np.fill_diagonal(weights_induced, np.nan)

        # Eq. (9)/(16) — mirrors estimate_weights_star; deferred plug-in.
        def weights_star(category_sizes: np.ndarray) -> np.ndarray:
            category_sizes = np.asarray(category_sizes, dtype=float)
            if category_sizes.shape != (c,):
                raise EstimationError(
                    f"category_sizes must have shape ({c},), "
                    f"got {category_sizes.shape}"
                )
            star_numerator = neighbor_matrix + neighbor_matrix.T
            star_denominator = np.outer(reweighted, category_sizes) + np.outer(
                category_sizes, reweighted
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                out = np.where(
                    star_denominator > 0, star_numerator / star_denominator, np.nan
                )
            np.fill_diagonal(out, np.nan)
            return out

        return RungEstimates(
            sizes_induced=sizes_induced,
            sizes_star=sizes_star,
            weights_induced=weights_induced,
            weights_star=weights_star,
        )

    # ------------------------------------------------------------------
    # Observation twins (API parity with subset_draws; used by tests)
    # ------------------------------------------------------------------
    def advance(self, size: int) -> tuple[InducedObservation, StarObservation]:
        """Materialize prefix observations for the first ``size`` draws.

        Field-for-field identical to
        ``observe_*(...).subset_draws(np.arange(size))``. Slower than
        :meth:`estimates` (it rebuilds the sliced CSR arrays); intended
        for consumers that need observation *objects*.
        """
        self._fold(size)
        kept = np.flatnonzero(self._multiplicities > 0)
        remap = np.full(self._star.num_distinct, -1, dtype=np.int64)
        remap[kept] = np.arange(len(kept))
        base = {
            "names": self._star.names,
            "num_draws": size,
            "draw_to_distinct": remap[self._star.draw_to_distinct[:size]],
            "distinct_nodes": self._star.distinct_nodes[kept],
            "distinct_categories": self._star.distinct_categories[kept],
            "distinct_multiplicities": self._multiplicities[kept].copy(),
            "distinct_weights": self._star.distinct_weights[kept],
            "uniform": self._star.uniform,
            "design": self._star.design,
        }
        return (
            self._induced_prefix(remap, base),
            self._star_prefix(kept, base),
        )

    def _induced_prefix(
        self, remap: np.ndarray, base: dict
    ) -> InducedObservation:
        if len(self._edge_src):
            in_prefix = self._multiplicities > 0
            mask = in_prefix[self._edge_src] & in_prefix[self._edge_dst]
            new_edges = np.column_stack(
                (remap[self._edge_src[mask]], remap[self._edge_dst[mask]])
            )
        else:
            new_edges = np.empty((0, 2), dtype=np.int64)
        return InducedObservation(induced_edges=new_edges, **base)

    def _star_prefix(self, kept: np.ndarray, base: dict) -> StarObservation:
        star = self._star
        lengths = np.diff(star.neighbor_indptr)[kept]
        new_indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
        total = int(lengths.sum())
        if total:
            gather = np.repeat(
                star.neighbor_indptr[kept] - new_indptr[:-1], lengths
            ) + np.arange(total)
            new_cats = star.neighbor_categories[gather]
            new_counts = star.neighbor_counts[gather]
        else:
            new_cats = np.empty(0, dtype=np.int64)
            new_counts = np.empty(0, dtype=np.int64)
        return StarObservation(
            distinct_degrees=star.distinct_degrees[kept],
            neighbor_indptr=new_indptr,
            neighbor_categories=new_cats,
            neighbor_counts=new_counts,
            **base,
        )
