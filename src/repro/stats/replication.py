"""Replicated NRMSE-vs-sample-size sweeps.

This is the shared engine behind Figs. 3, 4 and 6: draw R independent
samples (or take R independent walks), truncate each to a ladder of
sample sizes (a crawl's prefix *is* a shorter crawl), run all four
estimator families on each truncation, and reduce to element-wise NRMSE
(Eq. 17) across the replications.

Performance architecture
------------------------
Both hot phases run on fast paths by default, each with a slow
reference twin kept for equivalence testing and benchmarking:

* **Sampling** — ``engine="batched"`` draws all R replicates through
  :meth:`~repro.sampling.base.Sampler.sample_many`, which advances walk
  designs as one vectorized frontier (:mod:`repro.sampling.batch`);
  ``engine="sequential"`` is the seed per-replicate loop. The two are
  bit-for-bit identical per replicate stream.
* **The ladder** — ``ladder="incremental"`` folds each rung's new draws
  into running prefix aggregates
  (:class:`~repro.stats.prefix.IncrementalPrefixLadder`);
  ``ladder="subset"`` re-subsets every rung from scratch via
  ``subset_draws``. Again bit-for-bit identical estimates.

A third axis, orthogonal to both, shards the R replicates across
*processes*: ``executor="process"`` hands the sweep to the
:mod:`repro.runtime` executor, which publishes the graph arrays once
via shared memory, reconstructs each replicate's RNG stream from its
spawned seed (so shard assignment cannot change a trajectory), and
reduces the per-replicate estimate rows exactly as the serial path
does — the resulting :class:`SweepResult` is bit-identical for any
worker count, and supports rung-level checkpoint/resume. Both entry
points ride it: :func:`run_nrmse_sweep` shards sampling *and* the
ladder, while :func:`run_nrmse_sweep_from_samples` (pre-drawn crawls)
ships the replicate samples through shared memory and shards the
ladder phase alone. Each resolves executor/workers/checkpoint/resume
from its arguments, then the ambient runtime configuration
(:func:`repro.runtime.runtime_options`, the ``REPRO_*`` environment),
identically.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.category_size import estimate_sizes_induced, estimate_sizes_star
from repro.core.edge_weight import estimate_weights_induced, estimate_weights_star
from repro.exceptions import EstimationError
from repro.graph.adjacency import Graph
from repro.graph.category_graph import CategoryGraph, true_category_graph
from repro.graph.partition import CategoryPartition
from repro.rng import ensure_rng, spawn_rngs
from repro.sampling.base import NodeSample, Sampler
from repro.sampling.observation import observe_induced, observe_star
from repro.stats.errors import nanmean_rows, nrmse_stack
from repro.stats.prefix import IncrementalPrefixLadder, RungEstimates

__all__ = ["SweepResult", "run_nrmse_sweep", "run_nrmse_sweep_from_samples"]

#: The two measurement scenarios compared throughout the paper.
KINDS = ("induced", "star")


@dataclass(frozen=True)
class SweepResult:
    """NRMSE curves from a replicated sweep.

    Attributes
    ----------
    sample_sizes:
        The sweep ladder, shape ``(K,)``.
    size_nrmse:
        Per measurement kind, shape ``(K, C)`` — NRMSE of ``|A|_hat``.
    weight_nrmse:
        Per measurement kind, shape ``(K, C, C)`` — NRMSE of ``w_hat``.
    size_coverage / weight_coverage:
        Fraction of replicates with finite estimates, same shapes.
    truth:
        The exact category graph the errors are measured against.
    """

    sample_sizes: np.ndarray
    size_nrmse: dict[str, np.ndarray]
    weight_nrmse: dict[str, np.ndarray]
    size_coverage: dict[str, np.ndarray]
    weight_coverage: dict[str, np.ndarray]
    truth: CategoryGraph

    def median_size_nrmse(self, kind: str, categories: np.ndarray | None = None) -> np.ndarray:
        """Median across categories (Fig. 4/6 top rows), shape ``(K,)``."""
        values = self.size_nrmse[kind]
        if categories is not None:
            values = values[:, categories]
        return np.nanmedian(values, axis=1)

    def median_weight_nrmse(
        self, kind: str, pairs: np.ndarray | None = None
    ) -> np.ndarray:
        """Median across category pairs (Fig. 4/6 bottom rows)."""
        values = self.weight_nrmse[kind]
        if pairs is None:
            c = values.shape[1]
            idx = np.triu_indices(c, k=1)
            flat = values[:, idx[0], idx[1]]
        else:
            flat = values[:, pairs[:, 0], pairs[:, 1]]
        return np.nanmedian(flat, axis=1)


def run_nrmse_sweep(
    graph: Graph,
    partition: CategoryPartition,
    sampler_factory: "Callable[[], Sampler] | Sampler",
    sample_sizes: Sequence[int],
    replications: int,
    rng: "np.random.Generator | int | None" = None,
    weight_size_plugin: str = "star",
    mean_degree_model: str = "per-category",
    engine: str = "batched",
    ladder: str = "incremental",
    executor: "str | object | None" = None,
    workers: int | None = None,
    checkpoint: "str | os.PathLike | None" = None,
    resume: "bool | None" = None,
) -> SweepResult:
    """Sweep NRMSE vs sample size with freshly drawn replicate samples.

    Parameters
    ----------
    sampler_factory:
        The sampler, or a zero-argument callable creating it. Walk
        starts still differ per replication: each replicate consumes its
        own spawned RNG stream.
    weight_size_plugin:
        Which size estimates feed Eq. (9)/(16): ``"star"`` (paper
        default; falls back to induced for categories the star size
        estimator cannot resolve), ``"induced"``, or ``"true"``
        (oracle, for ablations).
    engine:
        ``"batched"`` (default) draws all replicates at once through
        :meth:`~repro.sampling.base.Sampler.sample_many`;
        ``"sequential"`` is the per-replicate reference loop. Replicate
        trajectories are bit-for-bit identical either way.
    ladder:
        Forwarded to :func:`run_nrmse_sweep_from_samples`.
    executor:
        ``"serial"`` (in-process, the default), ``"process"`` (the
        :mod:`repro.runtime` shared-memory multi-process executor), or
        an executor instance. ``None`` defers to the ambient runtime
        configuration (:func:`repro.runtime.runtime_options`, else the
        ``REPRO_EXECUTOR``/``REPRO_WORKERS`` environment variables,
        else serial). Output is bit-identical across executors and
        worker counts.
    workers / checkpoint / resume:
        Process-executor knobs: shard count, the checkpoint root
        directory (a manifest-keyed per-sweep subdirectory is created
        under it, with one file per completed ladder rung), and whether
        a matching checkpoint should be continued instead of restarted
        (``None`` defers to the ambient configuration). Ignored by the
        serial executor; rejected alongside an executor *instance*,
        which already carries its own configuration.
    """
    sizes = _validated_sizes(sample_sizes)
    gen = ensure_rng(rng)
    if engine not in ("batched", "sequential"):
        raise EstimationError(
            f"unknown engine {engine!r}; use 'batched' or 'sequential'"
        )
    sampler_or_factory = sampler_factory
    from repro.runtime.config import resolve_executor  # deferred: cycle

    active = resolve_executor(executor, workers, checkpoint, resume)
    if active is not None:
        sampler = (
            sampler_or_factory
            if isinstance(sampler_or_factory, Sampler)
            else sampler_or_factory()
        )
        return active.run(
            graph,
            partition,
            sampler,
            sizes,
            replications,
            gen,
            engine=engine,
            ladder=ladder,
            weight_size_plugin=weight_size_plugin,
            mean_degree_model=mean_degree_model,
        )
    if engine == "batched":
        sampler = (
            sampler_or_factory
            if isinstance(sampler_or_factory, Sampler)
            else sampler_or_factory()
        )
        samples = list(sampler.sample_many(int(sizes[-1]), replications, rng=gen))
    else:
        samples = []
        for stream in spawn_rngs(gen, replications):
            sampler = (
                sampler_or_factory
                if isinstance(sampler_or_factory, Sampler)
                else sampler_or_factory()
            )
            samples.append(sampler.sample(int(sizes[-1]), rng=stream))
    return run_nrmse_sweep_from_samples(
        graph,
        partition,
        samples,
        sizes,
        weight_size_plugin=weight_size_plugin,
        mean_degree_model=mean_degree_model,
        ladder=ladder,
        # The executor decision was already made above; without this the
        # ambient configuration would re-route the ladder phase of an
        # explicitly serial sweep through the process executor.
        executor="serial",
    )


def run_nrmse_sweep_from_samples(
    graph: Graph,
    partition: CategoryPartition,
    samples: Sequence[NodeSample],
    sample_sizes: Sequence[int],
    weight_size_plugin: str = "star",
    mean_degree_model: str = "per-category",
    truth_mode: str = "exact",
    ladder: str = "incremental",
    executor: "str | object | None" = None,
    workers: int | None = None,
    checkpoint: "str | os.PathLike | None" = None,
    resume: "bool | None" = None,
) -> SweepResult:
    """Sweep NRMSE using pre-drawn replicate samples (e.g. crawl walks).

    ``truth_mode="exact"`` scores against the true category graph
    (possible here because the substrate is fully known).
    ``truth_mode="cross-sample"`` reproduces the paper's Section 7.2
    convention — "we use as ground truth the average of estimation over
    all samples" — scoring each estimator kind against the average of
    its own full-length estimates, which measures variance but not bias.

    ``ladder="incremental"`` (default) computes each rung as a delta
    update of running prefix aggregates; ``ladder="subset"`` re-subsets
    every rung via ``subset_draws``. Estimates are bit-for-bit identical.

    ``executor``/``workers``/``checkpoint``/``resume`` mirror
    :func:`run_nrmse_sweep` exactly: ``None`` defers to the ambient
    runtime configuration (:func:`repro.runtime.runtime_options`, then
    the ``REPRO_EXECUTOR``/``REPRO_WORKERS`` environment), so the
    pre-drawn ladder phase shards across the same worker pool as the
    fresh-draw path — with the same bit-identical-for-any-worker-count
    contract and rung-level checkpoint/resume.
    """
    sizes = _validated_sizes(sample_sizes)
    if not samples:
        raise EstimationError("need at least one replicate sample")
    if any(s.size < sizes[-1] for s in samples):
        raise EstimationError(
            f"every sample must have at least {sizes[-1]} draws for this sweep"
        )
    if weight_size_plugin not in ("star", "induced", "true"):
        raise EstimationError(
            f"unknown weight_size_plugin {weight_size_plugin!r}"
        )
    if truth_mode not in ("exact", "cross-sample"):
        raise EstimationError(f"unknown truth_mode {truth_mode!r}")
    if ladder not in ("incremental", "subset"):
        raise EstimationError(
            f"unknown ladder {ladder!r}; use 'incremental' or 'subset'"
        )
    from repro.runtime.config import resolve_executor  # deferred: cycle

    active = resolve_executor(executor, workers, checkpoint, resume)
    if active is not None:
        return active.run_from_samples(
            graph,
            partition,
            list(samples),
            sizes,
            weight_size_plugin=weight_size_plugin,
            mean_degree_model=mean_degree_model,
            truth_mode=truth_mode,
            ladder=ladder,
        )
    truth = true_category_graph(graph, partition)
    n_pop = graph.num_nodes
    c = partition.num_categories
    r = len(samples)
    k = len(sizes)
    size_stacks = {kind: np.full((r, k, c), np.nan) for kind in KINDS}
    weight_stacks = {kind: np.full((r, k, c, c), np.nan) for kind in KINDS}

    from repro.runtime import telemetry  # deferred: cycle

    with telemetry.span(
        "sweep.serial", cat="driver", replicates=r, rungs=k
    ):
        for rep, sample in enumerate(samples):
            rungs = _ladder_rungs(
                graph, partition, sample, sizes, ladder, n_pop,
                mean_degree_model,
            )
            for si, rung in enumerate(rungs):
                rows = _rung_rows(rung, weight_size_plugin, truth.sizes)
                size_stacks["induced"][rep, si] = rows[0]
                size_stacks["star"][rep, si] = rows[1]
                weight_stacks["induced"][rep, si] = rows[2]
                weight_stacks["star"][rep, si] = rows[3]

    return _reduce_stacks(
        sizes, size_stacks, weight_stacks, truth, truth_mode
    )


def _reduce_stacks(
    sizes: np.ndarray,
    size_stacks: dict[str, np.ndarray],
    weight_stacks: dict[str, np.ndarray],
    truth: CategoryGraph,
    truth_mode: str,
) -> SweepResult:
    """Reduce per-replicate estimate stacks to the NRMSE surfaces.

    Shared by the serial path above and the parallel executor
    (:mod:`repro.runtime`): the stacks are indexed by *absolute*
    replicate, so however the rows were computed — in-process or
    sharded across workers — the reduction here is the same
    floating-point program and the result is bit-identical.
    """
    k = sizes.shape[0]
    c = truth.sizes.shape[0]
    size_nrmse, size_cov, weight_nrmse, weight_cov = {}, {}, {}, {}
    for kind in KINDS:
        if truth_mode == "cross-sample":
            # Paper Sec. 7.2: pseudo-truth = the per-kind average of the
            # full-length estimates across the replicate walks.
            # (nanmean_rows, not nanmean-with-filtered-warnings: filter
            # mutation is process-global and the DAG scheduler reduces
            # cells in concurrent threads.)
            size_truth = nanmean_rows(size_stacks[kind][:, -1])
            weight_truth = nanmean_rows(weight_stacks[kind][:, -1])
        else:
            size_truth = truth.sizes
            weight_truth = truth.weights
        per_size_vals = np.empty((k, c))
        per_size_cov = np.empty((k, c))
        per_pair_vals = np.empty((k, c, c))
        per_pair_cov = np.empty((k, c, c))
        for si in range(k):
            per_size_vals[si], per_size_cov[si] = nrmse_stack(
                size_stacks[kind][:, si], size_truth
            )
            per_pair_vals[si], per_pair_cov[si] = nrmse_stack(
                weight_stacks[kind][:, si], weight_truth
            )
        size_nrmse[kind] = per_size_vals
        size_cov[kind] = per_size_cov
        weight_nrmse[kind] = per_pair_vals
        weight_cov[kind] = per_pair_cov
    return SweepResult(
        sample_sizes=sizes,
        size_nrmse=size_nrmse,
        weight_nrmse=weight_nrmse,
        size_coverage=size_cov,
        weight_coverage=weight_cov,
        truth=truth,
    )


def _subset_rung(
    star_full,
    induced_full,
    size: int,
    n_pop: float,
    mean_degree_model: str,
) -> RungEstimates:
    """One rung of the ``ladder="subset"`` reference path."""
    prefix = np.arange(int(size))
    star_obs = star_full.subset_draws(prefix)
    induced_obs = induced_full.subset_draws(prefix)
    return RungEstimates(
        sizes_induced=estimate_sizes_induced(induced_obs, n_pop),
        sizes_star=estimate_sizes_star(
            star_obs, n_pop, mean_degree_model=mean_degree_model
        ),
        weights_induced=estimate_weights_induced(induced_obs),
        weights_star=partial(estimate_weights_star, star_obs),
    )


def _ladder_rungs(
    graph: Graph,
    partition: CategoryPartition,
    sample: NodeSample,
    sizes: np.ndarray,
    ladder: str,
    n_pop: float,
    mean_degree_model: str,
):
    """Yield :class:`~repro.stats.prefix.RungEstimates` per ladder rung."""
    if ladder == "incremental":
        incremental = IncrementalPrefixLadder(graph, partition, sample)
        for size in sizes:
            yield incremental.estimates(
                int(size), n_pop, mean_degree_model=mean_degree_model
            )
    else:
        star_full = observe_star(graph, partition, sample)
        induced_full = observe_induced(graph, partition, sample)
        for size in sizes:
            yield _subset_rung(
                star_full, induced_full, size, n_pop, mean_degree_model
            )


def _rung_rows(
    rung: RungEstimates,
    weight_size_plugin: str,
    truth_sizes: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One replicate's estimate rows at one rung, plug-in resolved.

    The single code path that turns a :class:`RungEstimates` into the
    four stack rows — serial sweeps and executor workers both call it,
    which is what makes the parallel stacks bit-identical to the serial
    ones.
    """
    plugin = _plugin_sizes(
        weight_size_plugin, rung.sizes_star, rung.sizes_induced, truth_sizes
    )
    return (
        rung.sizes_induced,
        rung.sizes_star,
        rung.weights_induced,
        rung.weights_star(plugin),
    )


def _plugin_sizes(
    plugin: str,
    sizes_star: np.ndarray,
    sizes_induced: np.ndarray,
    truth_sizes: np.ndarray | None,
) -> np.ndarray:
    if plugin == "true":
        if truth_sizes is None:
            raise EstimationError(
                "weight_size_plugin='true' needs the oracle category sizes"
            )
        return truth_sizes
    if plugin == "induced":
        return sizes_induced
    # star with induced fallback where the star estimator is undefined
    return np.where(np.isfinite(sizes_star), sizes_star, sizes_induced)


def _validated_sizes(sample_sizes: Sequence[int]) -> np.ndarray:
    sizes = np.asarray(sorted(set(int(s) for s in sample_sizes)), dtype=np.int64)
    if len(sizes) == 0 or sizes[0] < 1:
        raise EstimationError("sample_sizes must be positive integers")
    return sizes
