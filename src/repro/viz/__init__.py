"""Terminal charts and series export."""

from repro.viz.ascii import ascii_chart, format_table
from repro.viz.export import write_series_csv, write_series_json
from repro.viz.heatmap import weight_heatmap

__all__ = ["ascii_chart", "format_table", "write_series_csv", "write_series_json", "weight_heatmap"]
