"""Terminal rendering of NRMSE curves and CDFs.

No plotting stack is available offline, so figures are rendered as
log-log ASCII charts — enough to see the convergence slopes and the
induced-vs-star ordering the paper's figures show.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["ascii_chart", "format_table"]

_MARKERS = "ox*+#@%&"


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Render named (x, y) series on one chart.

    Parameters
    ----------
    series:
        ``{label: (x_values, y_values)}``; non-finite points are skipped.
    log_x, log_y:
        Log-scale the axes (the paper's NRMSE plots are log-log).
    """
    points: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        ok = np.isfinite(xs) & np.isfinite(ys)
        if log_x:
            ok &= xs > 0
        if log_y:
            ok &= ys > 0
        if np.any(ok):
            points[label] = (xs[ok], ys[ok])
    if not points:
        return f"{title}\n(no finite data)"
    all_x = np.concatenate([p[0] for p in points.values()])
    all_y = np.concatenate([p[1] for p in points.values()])
    tx = np.log10 if log_x else (lambda v: v)
    ty = np.log10 if log_y else (lambda v: v)
    x_lo, x_hi = tx(all_x.min()), tx(all_x.max())
    y_lo, y_hi = ty(all_y.min()), ty(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (label, (xs, ys)) in enumerate(points.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        cols = np.clip(
            ((tx(xs) - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1
        )
        rows = np.clip(
            ((ty(ys) - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1
        )
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker
    top = f"{all_y.max():.3g}"
    bottom = f"{all_y.min():.3g}"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        prefix = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{prefix:>9} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{all_x.min():.3g}".ljust(width // 2)
        + f"{all_x.max():.3g}".rjust(width // 2)
    )
    lines.extend(legend)
    return "\n".join(lines)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (used by the table benches)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or 1e-3 <= abs(value) < 1e6:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)
