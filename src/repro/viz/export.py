"""CSV/JSON export of experiment series.

Every experiment driver can persist its series so external plotting
tools can regenerate publication-quality figures from the same data.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["write_series_csv", "write_series_json"]


def write_series_csv(
    path: "str | Path",
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
) -> None:
    """Write ``{label: (x, y)}`` series as long-format CSV.

    Columns: ``series, x, y`` — one row per point.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "x", "y"])
        for label, (xs, ys) in series.items():
            for x, y in zip(xs, ys):
                writer.writerow([label, repr(float(x)), repr(float(y))])


def write_series_json(
    path: "str | Path",
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    metadata: Mapping[str, object] | None = None,
) -> None:
    """Write series plus free-form metadata as JSON."""
    payload = {
        "metadata": dict(metadata or {}),
        "series": {
            label: {"x": [float(v) for v in xs], "y": [float(v) for v in ys]}
            for label, (xs, ys) in series.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))
