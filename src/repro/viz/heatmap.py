"""ASCII heatmap of a category graph's weight matrix.

A terminal stand-in for the geosocialmap visualisations of Fig. 7:
categories along both axes (optionally ordered by a position array so
geography reads left-to-right), cells shaded by log-weight. Continental
cliques show up as blocks on the diagonal band.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.category_graph import CategoryGraph

__all__ = ["weight_heatmap"]

_SHADES = " .:-=+*#%@"


def weight_heatmap(
    category_graph: CategoryGraph,
    order: np.ndarray | None = None,
    max_categories: int = 40,
    label_width: int = 6,
) -> str:
    """Render the weight matrix as an ASCII heatmap.

    Parameters
    ----------
    category_graph:
        The graph to render.
    order:
        Optional permutation of category indices (e.g. argsort of geo
        positions); defaults to the stored order.
    max_categories:
        Largest matrix rendered; bigger graphs show the heaviest
        ``max_categories`` categories (by size).
    label_width:
        Row-label truncation width.
    """
    c = category_graph.num_categories
    if c < 2:
        raise EstimationError("heatmap needs at least two categories")
    if order is None:
        order = np.arange(c)
    else:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(c)):
            raise EstimationError("order must be a permutation of the categories")
    if c > max_categories:
        sizes = np.asarray(category_graph.sizes, dtype=float)
        keep = set(np.argsort(-np.nan_to_num(sizes))[:max_categories].tolist())
        order = np.asarray([i for i in order if i in keep], dtype=np.int64)

    weights = category_graph.weights[np.ix_(order, order)]
    with np.errstate(invalid="ignore"):
        positive = weights[np.isfinite(weights) & (weights > 0)]
    if positive.size == 0:
        raise EstimationError("category graph has no positive weights to render")
    lo = np.log10(positive.min())
    hi = np.log10(positive.max())
    degenerate = hi == lo  # all positive weights equal: shade them fully
    span = (hi - lo) or 1.0

    lines = []
    names = [category_graph.names[i][:label_width] for i in order]
    for row, name in enumerate(names):
        cells = []
        for col in range(len(order)):
            value = weights[row, col]
            if row == col:
                cells.append("\\")
            elif not np.isfinite(value) or value <= 0:
                cells.append(" ")
            else:
                level = 1.0 if degenerate else (np.log10(value) - lo) / span
                cells.append(_SHADES[int(level * (len(_SHADES) - 1))])
        lines.append(f"{name:>{label_width}} |" + "".join(cells) + "|")
    lines.append(
        f"{'':>{label_width}}  shading: log10 w in [{lo:.1f}, {hi:.1f}]"
    )
    return "\n".join(lines)
