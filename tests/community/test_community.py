"""Tests for community detection and modularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.community import (
    label_propagation_communities,
    leading_eigenvector_communities,
    modularity,
)
from repro.exceptions import GraphError
from repro.generators import planted_partition_graph
from repro.graph import CategoryPartition, Graph


@pytest.fixture(scope="module")
def two_cliques() -> Graph:
    """Two 6-cliques joined by a single edge — unambiguous communities."""
    edges = []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                edges.append((base + i, base + j))
    edges.append((0, 6))
    return Graph.from_edges(12, edges)


class TestModularity:
    def test_perfect_split(self, two_cliques):
        partition = CategoryPartition(np.array([0] * 6 + [1] * 6))
        q = modularity(two_cliques, partition)
        assert 0.4 < q < 0.5

    def test_single_community_is_zero(self, two_cliques):
        partition = CategoryPartition.single_category(12)
        assert modularity(two_cliques, partition) == pytest.approx(0.0)

    def test_bad_split_is_negative_or_small(self, two_cliques):
        # Alternating labels cut through both cliques.
        partition = CategoryPartition(np.arange(12) % 2)
        good = CategoryPartition(np.array([0] * 6 + [1] * 6))
        assert modularity(two_cliques, partition) < modularity(two_cliques, good)

    def test_edgeless_rejected(self):
        with pytest.raises(GraphError):
            modularity(Graph.empty(3), CategoryPartition(np.zeros(3, dtype=int)))


class TestLeadingEigenvector:
    def test_separates_cliques(self, two_cliques):
        partition = leading_eigenvector_communities(two_cliques)
        labels = partition.labels
        # Each clique must be monochromatic.
        assert len(set(labels[:6].tolist())) == 1
        assert len(set(labels[6:].tolist())) == 1
        assert labels[0] != labels[6]

    def test_planted_partition_recovered_well(self):
        graph, truth = planted_partition_graph(4, 60, p_in=0.3, p_out=0.01, rng=0)
        found = leading_eigenvector_communities(graph)
        q_found = modularity(graph, found)
        q_truth = modularity(graph, truth)
        assert q_found > 0.8 * q_truth

    def test_max_communities_respected(self):
        graph, _ = planted_partition_graph(6, 40, p_in=0.3, p_out=0.01, rng=1)
        found = leading_eigenvector_communities(graph, max_communities=3)
        # Isolated nodes aside (none here), at most 3 communities.
        assert found.num_categories <= 3

    def test_er_graph_yields_few_splits(self):
        from repro.generators import gnm

        graph = gnm(100, 400, rng=2)
        found = leading_eigenvector_communities(graph)
        # Random graphs have weak community structure; Q stays modest
        # and nothing crashes.
        assert found.num_categories >= 1
        assert modularity(graph, found) < 0.6

    def test_edgeless_graph_singletons(self):
        partition = leading_eigenvector_communities(Graph.empty(4))
        assert partition.num_categories == 4

    def test_isolated_nodes_own_community(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 0)])  # 3, 4 isolated
        partition = leading_eigenvector_communities(g)
        assert partition.labels[3] != partition.labels[4]
        assert partition.labels[3] != partition.labels[0]

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            leading_eigenvector_communities(Graph.empty(0))

    def test_deterministic_given_seed(self, two_cliques):
        a = leading_eigenvector_communities(two_cliques, rng=3)
        b = leading_eigenvector_communities(two_cliques, rng=3)
        assert np.array_equal(a.labels, b.labels)


class TestLabelPropagation:
    def test_separates_cliques(self, two_cliques):
        partition = label_propagation_communities(two_cliques, rng=0)
        labels = partition.labels
        assert len(set(labels[:6].tolist())) == 1
        assert len(set(labels[6:].tolist())) == 1

    def test_planted_partition(self):
        graph, truth = planted_partition_graph(4, 60, p_in=0.3, p_out=0.01, rng=0)
        found = label_propagation_communities(graph, rng=1)
        assert modularity(graph, found) > 0.8 * modularity(graph, truth)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            label_propagation_communities(Graph.empty(0))

    def test_isolated_nodes_keep_own_labels(self):
        g = Graph.from_edges(4, [(0, 1)])
        partition = label_propagation_communities(g, rng=0)
        assert partition.labels[2] != partition.labels[3]
