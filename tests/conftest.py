"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CategoryPartition, Graph


@pytest.fixture
def triangle_pair() -> Graph:
    """Two triangles joined by one bridge edge (6 nodes, 7 edges)."""
    return Graph.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)]
    )


@pytest.fixture
def triangle_pair_partition() -> CategoryPartition:
    """Categories matching the two triangles of ``triangle_pair``."""
    return CategoryPartition(np.array([0, 0, 0, 1, 1, 1]), names=["left", "right"])


@pytest.fixture
def path_graph() -> Graph:
    """A 5-node path 0-1-2-3-4."""
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def paper_figure1() -> tuple[Graph, CategoryPartition]:
    """A small graph with three categories, in the spirit of Fig. 1.

    Categories: white = {0, 1, 2}, gray = {3, 4}, black = {5, 6, 7}.
    Cross-cuts: white-black has 3 of 9 possible edges, white-gray 2 of 6,
    gray-black 1 of 6.
    """
    edges = [
        (0, 1), (1, 2),          # intra white
        (3, 4),                  # intra gray
        (5, 6), (6, 7),          # intra black
        (0, 5), (1, 6), (2, 7),  # white-black cut: 3 edges
        (0, 3), (1, 4),          # white-gray cut: 2 edges
        (4, 5),                  # gray-black cut: 1 edge
    ]
    graph = Graph.from_edges(8, edges)
    partition = CategoryPartition(
        np.array([0, 0, 0, 1, 1, 2, 2, 2]), names=["white", "gray", "black"]
    )
    return graph, partition


def random_test_graph(
    rng: np.random.Generator, num_nodes: int = 30, edge_prob: float = 0.2
) -> Graph:
    """An Erdos-Renyi graph for randomized tests (helper, not a fixture)."""
    upper = rng.random((num_nodes, num_nodes)) < edge_prob
    rows, cols = np.nonzero(np.triu(upper, k=1))
    return Graph.from_edges(num_nodes, np.column_stack((rows, cols)))
