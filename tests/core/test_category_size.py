"""Tests for the category-size estimators (Eqs. 4, 5, 11, 12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.core import estimate_sizes_induced, estimate_sizes_star
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import (
    NodeSample,
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


def _uniform_sample(nodes) -> NodeSample:
    nodes = np.asarray(nodes, dtype=np.int64)
    return NodeSample(nodes, np.ones(len(nodes)), design="uis", uniform=True)


class TestInducedSizesExactAlgebra:
    """Eq. (4): |A|_hat = N * |S_A| / |S| — checked by hand."""

    def test_hand_computed(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 1, 3, 5]))
        sizes = estimate_sizes_induced(obs, population_size=8)
        white = partition.index_of("white")
        assert sizes[white] == pytest.approx(8 * 2 / 4)
        assert sizes.sum() == pytest.approx(8.0)

    def test_multiplicity_counted(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 0, 3, 5]))
        sizes = estimate_sizes_induced(obs, partition.num_nodes)
        white = partition.index_of("white")
        assert sizes[white] == pytest.approx(8 * 2 / 4)

    def test_weighted_reduces_to_eq11(self, paper_figure1):
        """Eq. (11) with explicit weights, checked by hand."""
        graph, partition = paper_figure1
        sample = NodeSample(
            np.array([0, 3]), np.array([4.0, 1.0]), design="rw", uniform=False
        )
        obs = observe_induced(graph, partition, sample)
        sizes = estimate_sizes_induced(obs, population_size=8)
        white = partition.index_of("white")
        gray = partition.index_of("gray")
        # w-1(S_white) = 1/4, w-1(S_gray) = 1, w-1(S) = 5/4.
        assert sizes[white] == pytest.approx(8 * (1 / 4) / (5 / 4))
        assert sizes[gray] == pytest.approx(8 * 1.0 / (5 / 4))

    def test_weight_scale_invariance(self, paper_figure1):
        """The unknown constant of w(v) must cancel (Section 5.1)."""
        graph, partition = paper_figure1
        s1 = NodeSample(np.array([0, 3, 6]), np.array([2.0, 1.0, 3.0]), uniform=False)
        s2 = NodeSample(np.array([0, 3, 6]), np.array([20.0, 10.0, 30.0]), uniform=False)
        a = estimate_sizes_induced(observe_induced(graph, partition, s1), 8)
        b = estimate_sizes_induced(observe_induced(graph, partition, s2), 8)
        assert np.allclose(a, b)

    def test_census_recovers_truth(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        sizes = estimate_sizes_induced(obs, graph.num_nodes)
        assert np.allclose(sizes, partition.sizes())

    def test_bad_population(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError):
            estimate_sizes_induced(obs, -5)


class TestStarSizes:
    def test_census_recovers_truth(self, paper_figure1):
        """With S = V under UIS, every Eq. (5) ingredient is exact."""
        graph, partition = paper_figure1
        obs = observe_star(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        sizes = estimate_sizes_star(obs, graph.num_nodes)
        assert np.allclose(sizes, partition.sizes())

    def test_requires_star_observation(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError, match="StarObservation"):
            estimate_sizes_star(obs, 8)

    def test_hand_computed_single_draw(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        sizes = estimate_sizes_star(obs, population_size=8)
        # S = {0}: k_V_hat = deg(0) = 3, k_A_hat(white) = 3,
        # f_vol(white) = 1/3 (one of node 0's three neighbors is white).
        white = partition.index_of("white")
        assert sizes[white] == pytest.approx(8 * (1 / 3) * 3 / 3)

    def test_global_model_covers_unsampled_categories(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0, 1]))
        per_cat = estimate_sizes_star(obs, 8, mean_degree_model="per-category")
        global_model = estimate_sizes_star(obs, 8, mean_degree_model="global")
        black = partition.index_of("black")
        assert np.isnan(per_cat[black])  # no draws from black
        assert np.isfinite(global_model[black])  # footnote-4 variant works

    def test_unknown_model_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError, match="mean_degree_model"):
            estimate_sizes_star(obs, 8, mean_degree_model="banana")

    def test_weight_scale_invariance(self, paper_figure1):
        graph, partition = paper_figure1
        s1 = NodeSample(np.array([0, 3, 6]), np.array([2.0, 1.0, 3.0]), uniform=False)
        s2 = NodeSample(np.array([0, 3, 6]), np.array([4.0, 2.0, 6.0]), uniform=False)
        a = estimate_sizes_star(observe_star(graph, partition, s1), 8)
        b = estimate_sizes_star(observe_star(graph, partition, s2), 8)
        assert np.allclose(a, b, equal_nan=True)


class TestConsistency:
    """Empirical convergence on the paper's synthetic model."""

    @pytest.fixture(scope="class")
    def model(self):
        graph, partition = planted_category_graph(k=10, scale=40, rng=0)
        return graph, partition, true_category_graph(graph, partition)

    def test_uis_both_estimators_converge(self, model):
        graph, partition, truth = model
        sampler = UniformIndependenceSampler(graph)
        sample = sampler.sample(30_000, rng=1)
        induced = estimate_sizes_induced(
            observe_induced(graph, partition, sample), graph.num_nodes
        )
        star = estimate_sizes_star(
            observe_star(graph, partition, sample), graph.num_nodes
        )
        big = truth.sizes >= 50  # relative error is meaningful for big cats
        assert np.all(np.abs(induced[big] - truth.sizes[big]) / truth.sizes[big] < 0.25)
        assert np.all(np.abs(star[big] - truth.sizes[big]) / truth.sizes[big] < 0.25)

    def test_rw_weighted_estimators_converge(self, model):
        graph, partition, truth = model
        sample = RandomWalkSampler(graph).sample(30_000, rng=2)
        induced = estimate_sizes_induced(
            observe_induced(graph, partition, sample), graph.num_nodes
        )
        star = estimate_sizes_star(
            observe_star(graph, partition, sample), graph.num_nodes
        )
        big = truth.sizes >= 50
        assert np.all(np.abs(induced[big] - truth.sizes[big]) / truth.sizes[big] < 0.3)
        assert np.all(np.abs(star[big] - truth.sizes[big]) / truth.sizes[big] < 0.3)

    def test_rw_without_correction_is_biased(self):
        """Dropping the HH correction must distort the estimates (Sec. 5).

        Uses an SBM with equal block sizes but very different densities,
        so RW's degree bias inflates the dense block.
        """
        from repro.generators import stochastic_block_model

        graph, partition = stochastic_block_model(
            [300, 300],
            np.array([[0.2, 0.01], [0.01, 0.02]]),
            rng=0,
        )
        sample = RandomWalkSampler(graph).sample(30_000, rng=3)
        naive = NodeSample(
            sample.nodes, np.ones(sample.size), design="rw-naive", uniform=True
        )
        biased = estimate_sizes_induced(
            observe_induced(graph, partition, naive), graph.num_nodes
        )
        corrected = estimate_sizes_induced(
            observe_induced(graph, partition, sample), graph.num_nodes
        )
        assert biased[0] > 1.5 * 300  # dense block badly over-counted
        assert abs(corrected[0] - 300) / 300 < 0.2
