"""Tests for the edge-weight estimators (Eqs. 8, 9, 15, 16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.core import (
    estimate_intra_density,
    estimate_weights_induced,
    estimate_weights_star,
)
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import (
    NodeSample,
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


def _uniform_sample(nodes) -> NodeSample:
    nodes = np.asarray(nodes, dtype=np.int64)
    return NodeSample(nodes, np.ones(len(nodes)), design="uis", uniform=True)


class TestInducedWeightsExactAlgebra:
    def test_hand_computed_eq8(self, paper_figure1):
        graph, partition = paper_figure1
        # S = {0, 1, 3, 5}: S_white={0,1}, S_gray={3}, S_black={5}.
        # white-black edges among sample: (0,5) only => 1 / (2*1).
        # white-gray edges: (0,3) => 1 / (2*1). gray-black: none => 0.
        obs = observe_induced(graph, partition, _uniform_sample([0, 1, 3, 5]))
        w = estimate_weights_induced(obs)
        white = partition.index_of("white")
        gray = partition.index_of("gray")
        black = partition.index_of("black")
        assert w[white, black] == pytest.approx(0.5)
        assert w[white, gray] == pytest.approx(0.5)
        assert w[gray, black] == 0.0

    def test_multiplicity_squares_contributions(self, paper_figure1):
        graph, partition = paper_figure1
        # Node 0 drawn twice: pairs (0a,5), (0b,5) both count (Eq. 8 note).
        obs = observe_induced(graph, partition, _uniform_sample([0, 0, 5]))
        w = estimate_weights_induced(obs)
        white = partition.index_of("white")
        black = partition.index_of("black")
        assert w[white, black] == pytest.approx(2 / (2 * 1))

    def test_census_recovers_truth(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        w = estimate_weights_induced(obs)
        truth = true_category_graph(graph, partition).weights
        assert np.allclose(w, truth, equal_nan=True)

    def test_weighted_eq15_hand_computed(self, paper_figure1):
        graph, partition = paper_figure1
        sample = NodeSample(
            np.array([0, 5]), np.array([2.0, 4.0]), design="rw", uniform=False
        )
        obs = observe_induced(graph, partition, sample)
        w = estimate_weights_induced(obs)
        white = partition.index_of("white")
        black = partition.index_of("black")
        # numerator = 1/(2*4); denominator = (1/2)*(1/4)
        assert w[white, black] == pytest.approx((1 / 8) / (1 / 8))

    def test_diagonal_nan(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 1, 3]))
        w = estimate_weights_induced(obs)
        assert np.all(np.isnan(np.diag(w)))

    def test_unsampled_pair_nan(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 1]))
        w = estimate_weights_induced(obs)
        gray = partition.index_of("gray")
        black = partition.index_of("black")
        assert np.isnan(w[gray, black])

    def test_symmetry(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0, 1, 3, 5, 7]))
        w = estimate_weights_induced(obs)
        assert np.allclose(w, w.T, equal_nan=True)

    def test_star_observation_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError, match="InducedObservation"):
            estimate_weights_induced(obs)


class TestStarWeightsExactAlgebra:
    def test_hand_computed_eq9(self, paper_figure1):
        graph, partition = paper_figure1
        # S = {0}: S_white = {0}. |E_{0,black}| = 1 (edge 0-5),
        # |E_{0,gray}| = 1 (edge 0-3). With true sizes |black|=3:
        # w(white, black) = 1 / (1*3 + 0) = 1/3.
        obs = observe_star(graph, partition, _uniform_sample([0]))
        sizes = np.array([3.0, 2.0, 3.0])  # white, gray, black (sorted names)
        sizes = np.array(
            [
                {"white": 3.0, "gray": 2.0, "black": 3.0}[name]
                for name in partition.names
            ]
        )
        w = estimate_weights_star(obs, sizes)
        white = partition.index_of("white")
        gray = partition.index_of("gray")
        black = partition.index_of("black")
        assert w[white, black] == pytest.approx(1 / 3)
        assert w[white, gray] == pytest.approx(1 / 2)
        assert np.isnan(w[gray, black])  # neither gray nor black sampled

    def test_both_sides_contribute(self, paper_figure1):
        graph, partition = paper_figure1
        # S = {0, 5}: white-black numerator = |E_{0,black}| + |E_{5,white}|
        # = 1 + 2 (node 5 neighbors 0 and 6... node 5 nbrs: 0, 4, 6 ->
        # white count 1). Let's compute from the graph to be safe.
        obs = observe_star(graph, partition, _uniform_sample([0, 5]))
        sizes = np.array(
            [
                {"white": 3.0, "gray": 2.0, "black": 3.0}[name]
                for name in partition.names
            ]
        )
        w = estimate_weights_star(obs, sizes)
        white = partition.index_of("white")
        black = partition.index_of("black")
        e_0_black = sum(
            1 for u in graph.neighbors(0) if partition.category_of(int(u)) == black
        )
        e_5_white = sum(
            1 for u in graph.neighbors(5) if partition.category_of(int(u)) == white
        )
        expected = (e_0_black + e_5_white) / (1 * 3.0 + 1 * 3.0)
        assert w[white, black] == pytest.approx(expected)

    def test_census_with_true_sizes_recovers_truth(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        truth = true_category_graph(graph, partition)
        w = estimate_weights_star(obs, truth.sizes)
        assert np.allclose(w, truth.weights, equal_nan=True)

    def test_weight_scale_invariance(self, paper_figure1):
        graph, partition = paper_figure1
        truth = true_category_graph(graph, partition)
        s1 = NodeSample(np.array([0, 3, 6]), np.array([2.0, 1.0, 3.0]), uniform=False)
        s2 = NodeSample(np.array([0, 3, 6]), np.array([4.0, 2.0, 6.0]), uniform=False)
        a = estimate_weights_star(observe_star(graph, partition, s1), truth.sizes)
        b = estimate_weights_star(observe_star(graph, partition, s2), truth.sizes)
        assert np.allclose(a, b, equal_nan=True)

    def test_bad_sizes_shape(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError):
            estimate_weights_star(obs, np.ones(7))

    def test_induced_observation_rejected(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError, match="StarObservation"):
            estimate_weights_star(obs, np.ones(3))


class TestIntraDensity:
    def test_census_matches_truth(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_induced(
            graph, partition, _uniform_sample(np.arange(graph.num_nodes))
        )
        density = estimate_intra_density(obs)
        # white: 2 intra edges of 3 ordered... 2*2/(3*3)
        white = partition.index_of("white")
        assert density[white] == pytest.approx(2 * 2 / 9)

    def test_requires_induced(self, paper_figure1):
        graph, partition = paper_figure1
        obs = observe_star(graph, partition, _uniform_sample([0]))
        with pytest.raises(EstimationError):
            estimate_intra_density(obs)


class TestConvergenceAndStarAdvantage:
    @pytest.fixture(scope="class")
    def model(self):
        graph, partition = planted_category_graph(k=12, scale=40, rng=0)
        return graph, partition, true_category_graph(graph, partition)

    def test_uis_convergence(self, model):
        graph, partition, truth = model
        sample = UniformIndependenceSampler(graph).sample(30_000, rng=1)
        w_induced = estimate_weights_induced(observe_induced(graph, partition, sample))
        w_star = estimate_weights_star(
            observe_star(graph, partition, sample), truth.sizes
        )
        mask = np.isfinite(truth.weights) & (truth.weights > 0)
        rel_induced = np.abs(w_induced[mask] - truth.weights[mask]) / truth.weights[mask]
        rel_star = np.abs(w_star[mask] - truth.weights[mask]) / truth.weights[mask]
        assert np.nanmedian(rel_induced) < 0.5
        assert np.nanmedian(rel_star) < 0.25

    def test_star_beats_induced_at_small_samples(self, model):
        """The paper's headline: star needs far fewer samples (Sec. 6.3.3)."""
        graph, partition, truth = model
        mask = np.isfinite(truth.weights) & (truth.weights > 0)
        star_errors, induced_errors = [], []
        for seed in range(5):
            sample = UniformIndependenceSampler(graph).sample(2000, rng=seed)
            w_i = estimate_weights_induced(
                observe_induced(graph, partition, sample)
            )
            w_s = estimate_weights_star(
                observe_star(graph, partition, sample), truth.sizes
            )
            induced_errors.append(
                np.nanmedian(np.abs(w_i[mask] - truth.weights[mask]) / truth.weights[mask])
            )
            star_errors.append(
                np.nanmedian(np.abs(w_s[mask] - truth.weights[mask]) / truth.weights[mask])
            )
        assert np.mean(star_errors) < np.mean(induced_errors)

    def test_rw_weighted_convergence(self, model):
        graph, partition, truth = model
        sample = RandomWalkSampler(graph).sample(30_000, rng=2)
        w_star = estimate_weights_star(
            observe_star(graph, partition, sample), truth.sizes
        )
        mask = np.isfinite(truth.weights) & (truth.weights > 0)
        rel = np.abs(w_star[mask] - truth.weights[mask]) / truth.weights[mask]
        assert np.nanmedian(rel) < 0.3
