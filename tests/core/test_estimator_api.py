"""Tests for the high-level estimation API and HH helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.core import (
    estimate_category_graph,
    estimate_category_sizes,
    estimate_edge_weights,
    hh_ratio,
    hh_total,
    reweighted_count,
)
from repro.generators import planted_category_graph
from repro.graph import CategoryGraph, true_category_graph
from repro.sampling import (
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


class TestHansenHurwitz:
    def test_total_census_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        weights = np.ones(3)
        assert hh_total(values, weights) == 6.0

    def test_total_reweighting(self):
        assert hh_total(np.array([4.0]), np.array([2.0])) == 2.0

    def test_total_empty_rejected(self):
        with pytest.raises(EstimationError):
            hh_total(np.array([]), np.array([]))

    def test_total_shape_mismatch(self):
        with pytest.raises(EstimationError):
            hh_total(np.ones(2), np.ones(3))

    def test_total_nonpositive_weights(self):
        with pytest.raises(EstimationError):
            hh_total(np.ones(2), np.array([1.0, 0.0]))

    def test_ratio_scale_invariance(self):
        num = np.array([1.0, 0.0, 1.0])
        den = np.ones(3)
        w = np.array([2.0, 4.0, 8.0])
        assert hh_ratio(num, den, w) == pytest.approx(hh_ratio(num, den, 10 * w))

    def test_ratio_zero_denominator(self):
        with pytest.raises(EstimationError):
            hh_ratio(np.ones(2), np.zeros(2), np.ones(2))

    def test_reweighted_count(self):
        mask = np.array([True, False, True])
        mult = np.array([2, 1, 1])
        w = np.array([2.0, 1.0, 4.0])
        assert reweighted_count(mask, mult, w) == pytest.approx(2 / 2 + 1 / 4)


class TestHighLevelApi:
    @pytest.fixture(scope="class")
    def setup(self):
        graph, partition = planted_category_graph(k=10, scale=40, rng=0)
        truth = true_category_graph(graph, partition)
        return graph, partition, truth

    def test_estimate_category_graph_star(self, setup):
        graph, partition, truth = setup
        sample = UniformIndependenceSampler(graph).sample(10_000, rng=1)
        obs = observe_star(graph, partition, sample)
        estimate = estimate_category_graph(obs, population_size=graph.num_nodes)
        assert isinstance(estimate, CategoryGraph)
        assert estimate.names == partition.names
        big = truth.sizes >= 50
        rel = np.abs(estimate.sizes[big] - truth.sizes[big]) / truth.sizes[big]
        assert np.all(rel < 0.3)

    def test_estimate_category_graph_induced(self, setup):
        graph, partition, truth = setup
        sample = UniformIndependenceSampler(graph).sample(10_000, rng=2)
        obs = observe_induced(graph, partition, sample)
        estimate = estimate_category_graph(obs, population_size=graph.num_nodes)
        mask = np.isfinite(truth.weights) & (truth.weights > 0)
        finite = np.isfinite(estimate.weights[mask])
        assert finite.mean() > 0.9

    def test_population_estimated_when_omitted(self, setup):
        graph, partition, _ = setup
        sample = UniformIndependenceSampler(graph).sample(10_000, rng=3)
        obs = observe_star(graph, partition, sample)
        estimate = estimate_category_graph(obs)
        assert abs(estimate.sizes.sum() - graph.num_nodes) / graph.num_nodes < 0.3

    def test_auto_size_method_uses_star_for_crawls(self, setup):
        graph, partition, truth = setup
        sample = RandomWalkSampler(graph).sample(10_000, rng=4)
        obs = observe_star(graph, partition, sample)
        auto = estimate_category_sizes(obs, population_size=graph.num_nodes)
        star = estimate_category_sizes(
            obs, population_size=graph.num_nodes, method="star"
        )
        assert np.allclose(auto, star, equal_nan=True)

    def test_auto_size_method_uses_induced_for_uis(self, setup):
        graph, partition, _ = setup
        sample = UniformIndependenceSampler(graph).sample(5000, rng=5)
        obs = observe_star(graph, partition, sample)
        auto = estimate_category_sizes(obs, population_size=graph.num_nodes)
        induced = estimate_category_sizes(
            obs, population_size=graph.num_nodes, method="induced"
        )
        assert np.allclose(auto, induced, equal_nan=True)

    def test_star_method_on_induced_observation_rejected(self, setup):
        graph, partition, _ = setup
        sample = UniformIndependenceSampler(graph).sample(1000, rng=6)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError):
            estimate_category_sizes(
                obs, population_size=graph.num_nodes, method="star"
            )

    def test_unknown_methods_rejected(self, setup):
        graph, partition, _ = setup
        sample = UniformIndependenceSampler(graph).sample(1000, rng=7)
        obs = observe_star(graph, partition, sample)
        with pytest.raises(EstimationError):
            estimate_category_sizes(obs, population_size=10, method="banana")
        with pytest.raises(EstimationError):
            estimate_edge_weights(obs, population_size=10, method="banana")

    def test_cuts_exposed(self, setup):
        graph, partition, truth = setup
        sample = UniformIndependenceSampler(graph).sample(10_000, rng=8)
        obs = observe_star(graph, partition, sample)
        estimate = estimate_category_graph(obs, population_size=graph.num_nodes)
        assert estimate.cuts is not None
        # cut estimates should be in the ballpark of the true cut counts
        mask = np.isfinite(truth.weights) & (truth.weights > 0)
        ratio = estimate.cuts[mask] / truth.cuts[mask]
        assert np.nanmedian(ratio) == pytest.approx(1.0, abs=0.4)

    def test_explicit_sizes_passed_to_weights(self, setup):
        graph, partition, truth = setup
        sample = UniformIndependenceSampler(graph).sample(5000, rng=9)
        obs = observe_star(graph, partition, sample)
        w_true_sizes = estimate_edge_weights(obs, category_sizes=truth.sizes)
        w_est_sizes = estimate_edge_weights(
            obs, population_size=graph.num_nodes
        )
        # both finite on sampled pairs, values close but not identical
        mask = np.isfinite(w_true_sizes) & np.isfinite(w_est_sizes)
        assert mask.sum() > 0
        assert not np.allclose(w_true_sizes[mask], w_est_sizes[mask])
