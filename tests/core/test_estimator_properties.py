"""Property-based tests for the estimator algebra (hypothesis).

The key invariants:

* census identity — sampling every node exactly once under UIS makes
  every estimator return the exact truth;
* weight-scale invariance — multiplying all sampling weights by any
  positive constant never changes any estimate (Section 5.1);
* permutation invariance — estimates do not depend on draw order;
* range — estimated weights from a census lie in [0, 1].
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    estimate_sizes_induced,
    estimate_sizes_star,
    estimate_weights_induced,
    estimate_weights_star,
)
from repro.graph import CategoryPartition, Graph, true_category_graph
from repro.sampling import NodeSample, observe_induced, observe_star


@st.composite
def graph_partition_sample(draw):
    """Random graph + partition + with-replacement sample + weights."""
    n = draw(st.integers(min_value=3, max_value=20))
    m = draw(st.integers(min_value=1, max_value=40))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    if not edges:
        edges = [(0, 1)]
    graph = Graph.from_edges(n, np.asarray(edges, dtype=np.int64))
    num_categories = draw(st.integers(min_value=2, max_value=4))
    labels = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_categories - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    partition = CategoryPartition(labels, num_categories=num_categories)
    sample_size = draw(st.integers(min_value=1, max_value=15))
    nodes = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=sample_size,
                max_size=sample_size,
            )
        ),
        dtype=np.int64,
    )
    # Per-node weights so that repeated draws agree.
    node_weights = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=8.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    return graph, partition, nodes, node_weights


@given(graph_partition_sample(), st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_weight_scale_invariance_all_estimators(case, constant):
    graph, partition, nodes, node_weights = case
    s1 = NodeSample(nodes, node_weights[nodes], design="wis", uniform=False)
    s2 = NodeSample(
        nodes, constant * node_weights[nodes], design="wis", uniform=False
    )
    n = graph.num_nodes
    for observe, size_est in (
        (observe_induced, estimate_sizes_induced),
        (observe_star, None),
    ):
        o1, o2 = observe(graph, partition, s1), observe(graph, partition, s2)
        if size_est is not None:
            assert np.allclose(size_est(o1, n), size_est(o2, n), equal_nan=True)
    so1 = observe_star(graph, partition, s1)
    so2 = observe_star(graph, partition, s2)
    assert np.allclose(
        estimate_sizes_star(so1, n), estimate_sizes_star(so2, n), equal_nan=True
    )
    io1 = observe_induced(graph, partition, s1)
    io2 = observe_induced(graph, partition, s2)
    assert np.allclose(
        estimate_weights_induced(io1),
        estimate_weights_induced(io2),
        equal_nan=True,
    )
    sizes = partition.sizes().astype(float)
    assert np.allclose(
        estimate_weights_star(so1, sizes),
        estimate_weights_star(so2, sizes),
        equal_nan=True,
    )


@given(graph_partition_sample())
@settings(max_examples=40, deadline=None)
def test_draw_order_invariance(case):
    graph, partition, nodes, node_weights = case
    rng = np.random.default_rng(0)
    perm = rng.permutation(len(nodes))
    s1 = NodeSample(nodes, node_weights[nodes], uniform=False)
    s2 = NodeSample(nodes[perm], node_weights[nodes][perm], uniform=False)
    n = graph.num_nodes
    a = estimate_sizes_induced(observe_induced(graph, partition, s1), n)
    b = estimate_sizes_induced(observe_induced(graph, partition, s2), n)
    assert np.allclose(a, b, equal_nan=True)
    wa = estimate_weights_induced(observe_induced(graph, partition, s1))
    wb = estimate_weights_induced(observe_induced(graph, partition, s2))
    assert np.allclose(wa, wb, equal_nan=True)


@given(graph_partition_sample())
@settings(max_examples=40, deadline=None)
def test_census_identity(case):
    """One uniform draw of every node recovers exact truth everywhere."""
    graph, partition, _, _ = case
    census = NodeSample(
        np.arange(graph.num_nodes, dtype=np.int64),
        np.ones(graph.num_nodes),
        design="uis",
        uniform=True,
    )
    truth = true_category_graph(graph, partition)
    io = observe_induced(graph, partition, census)
    so = observe_star(graph, partition, census)
    n = graph.num_nodes
    assert np.allclose(
        estimate_sizes_induced(io, n), partition.sizes(), equal_nan=True
    )
    star_sizes = estimate_sizes_star(so, n)
    # The star estimator is volume-based (Eq. 5): it is exactly right for
    # every category with positive volume, undefined (nan) otherwise.
    has_volume = partition.volumes(graph) > 0
    assert np.allclose(star_sizes[has_volume], partition.sizes()[has_volume])
    assert np.allclose(
        estimate_weights_induced(io), truth.weights, equal_nan=True
    )
    assert np.allclose(
        estimate_weights_star(so, truth.sizes), truth.weights, equal_nan=True
    )


@given(graph_partition_sample())
@settings(max_examples=40, deadline=None)
def test_estimated_weights_nonnegative(case):
    graph, partition, nodes, node_weights = case
    sample = NodeSample(nodes, node_weights[nodes], uniform=False)
    w = estimate_weights_induced(observe_induced(graph, partition, sample))
    finite = w[np.isfinite(w)]
    assert np.all(finite >= 0)
    sizes = np.maximum(partition.sizes().astype(float), 1.0)
    ws = estimate_weights_star(observe_star(graph, partition, sample), sizes)
    finite = ws[np.isfinite(ws)]
    assert np.all(finite >= 0)


@given(graph_partition_sample())
@settings(max_examples=30, deadline=None)
def test_sizes_sum_to_population_induced(case):
    """Eq. (4)/(11) sizes always sum exactly to N (ratio construction)."""
    graph, partition, nodes, node_weights = case
    sample = NodeSample(nodes, node_weights[nodes], uniform=False)
    sizes = estimate_sizes_induced(
        observe_induced(graph, partition, sample), graph.num_nodes
    )
    assert np.isclose(sizes.sum(), graph.num_nodes)
