"""Tests for population-size estimation (Sec. 4.3) and bootstrap (Sec. 5.3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.core import (
    bootstrap_estimate,
    count_collisions,
    estimate_population_size,
    estimate_sizes_induced,
)
from repro.generators import gnm
from repro.graph import CategoryPartition
from repro.sampling import (
    NodeSample,
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


class TestCountCollisions:
    def test_simple(self):
        # draws of distinct rows: [0, 1, 0, 0] -> pairs (0,2), (0,3), (2,3)
        assert count_collisions(np.array([0, 1, 0, 0])) == 3

    def test_no_collisions(self):
        assert count_collisions(np.array([0, 1, 2])) == 0

    def test_min_gap_filters_adjacent(self):
        # rows [0, 0, 1, 0]: pairs (0,1) gap1, (0,3) gap3, (1,3) gap2
        assert count_collisions(np.array([0, 0, 1, 0]), min_gap=2) == 2
        assert count_collisions(np.array([0, 0, 1, 0]), min_gap=4) == 0

    def test_invalid_gap(self):
        with pytest.raises(EstimationError):
            count_collisions(np.array([0]), min_gap=0)


class TestPopulationSize:
    @pytest.fixture(scope="class")
    def graph(self):
        return gnm(2000, 12_000, rng=0)

    @pytest.fixture(scope="class")
    def partition(self, graph):
        return CategoryPartition.single_category(graph.num_nodes)

    def test_uniform_birthday(self, graph, partition):
        sample = UniformIndependenceSampler(graph).sample(2000, rng=1)
        obs = observe_induced(graph, partition, sample)
        estimate = estimate_population_size(obs)
        assert abs(estimate - graph.num_nodes) / graph.num_nodes < 0.25

    def test_katzir_for_rw(self, graph, partition):
        sample = RandomWalkSampler(graph).sample(4000, rng=2)
        obs = observe_star(graph, partition, sample)
        estimate = estimate_population_size(obs, min_gap=5)
        assert abs(estimate - graph.num_nodes) / graph.num_nodes < 0.35

    def test_katzir_via_rw_weights_induced(self, graph, partition):
        # Induced observation lacks degrees, but the rw design's weights
        # ARE degrees, so the estimator still works.
        sample = RandomWalkSampler(graph).sample(4000, rng=3)
        obs = observe_induced(graph, partition, sample)
        estimate = estimate_population_size(obs, min_gap=5)
        assert abs(estimate - graph.num_nodes) / graph.num_nodes < 0.35

    def test_no_collisions_raises(self, graph, partition):
        sample = NodeSample(
            np.arange(10, dtype=np.int64), np.ones(10), design="uis", uniform=True
        )
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError, match="collision"):
            estimate_population_size(obs)

    def test_tiny_sample_rejected(self, graph, partition):
        sample = NodeSample(np.array([0]), np.ones(1), uniform=True)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError):
            estimate_population_size(obs)

    def test_unknown_design_without_degrees_rejected(self, graph, partition):
        sample = NodeSample(
            np.array([0, 0, 1]), np.full(3, 2.0), design="mystery", uniform=False
        )
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError, match="degrees"):
            estimate_population_size(obs)


class TestBootstrap:
    @pytest.fixture(scope="class")
    def observation(self, request):
        graph = gnm(500, 3000, rng=0)
        labels = np.arange(500) % 3
        partition = CategoryPartition(labels)
        sample = UniformIndependenceSampler(graph).sample(800, rng=1)
        return observe_induced(graph, partition, sample), graph.num_nodes

    def test_mean_near_point_estimate(self, observation):
        obs, n = observation
        point = estimate_sizes_induced(obs, n)
        result = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=100, rng=0
        )
        assert np.allclose(result.mean, point, rtol=0.1)

    def test_ci_brackets_point(self, observation):
        obs, n = observation
        point = estimate_sizes_induced(obs, n)
        result = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=200, rng=1
        )
        assert np.all(result.ci_low <= point + 1e-9)
        assert np.all(result.ci_high >= point - 1e-9)

    def test_std_positive(self, observation):
        obs, n = observation
        result = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=50, rng=2
        )
        assert np.all(result.std > 0)

    def test_coefficient_of_variation(self, observation):
        obs, n = observation
        result = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=50, rng=3
        )
        cv = result.coefficient_of_variation()
        assert np.all(cv[np.isfinite(cv)] >= 0)

    def test_invalid_replications(self, observation):
        obs, n = observation
        with pytest.raises(EstimationError):
            bootstrap_estimate(obs, lambda o: np.zeros(3), replications=1)

    def test_invalid_confidence(self, observation):
        obs, n = observation
        with pytest.raises(EstimationError):
            bootstrap_estimate(obs, lambda o: np.zeros(3), confidence=1.5)

    def test_reproducible(self, observation):
        obs, n = observation
        r1 = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=30, rng=7
        )
        r2 = bootstrap_estimate(
            obs, lambda o: estimate_sizes_induced(o, n), replications=30, rng=7
        )
        assert np.allclose(r1.mean, r2.mean)
