"""Tests for the reversed-coupon-collector population estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_population_size_coupon
from repro.exceptions import EstimationError
from repro.generators import gnm
from repro.graph import CategoryPartition
from repro.sampling import (
    NodeSample,
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
)


@pytest.fixture(scope="module")
def setup():
    graph = gnm(3000, 15_000, rng=0)
    partition = CategoryPartition.single_category(graph.num_nodes)
    return graph, partition


class TestCouponEstimator:
    def test_accuracy_improves_with_sample(self, setup):
        graph, partition = setup
        errors = []
        for n in (2000, 10_000):
            sample = UniformIndependenceSampler(graph).sample(n, rng=1)
            obs = observe_induced(graph, partition, sample)
            estimate = estimate_population_size_coupon(obs)
            errors.append(abs(estimate - graph.num_nodes) / graph.num_nodes)
        assert errors[0] < 0.35
        assert errors[1] < 0.1

    def test_exact_inversion_on_expected_curve(self):
        """If D equals its expectation exactly, the inversion is tight."""
        population = 10_000.0
        n = 5000
        expected_distinct = population * -np.expm1(
            n * np.log1p(-1.0 / population)
        )
        # Build a synthetic observation with that many distinct draws.
        distinct = int(round(expected_distinct))
        nodes = np.concatenate(
            (np.arange(distinct), np.zeros(n - distinct, dtype=np.int64))
        )
        sample = NodeSample(nodes, np.ones(n), design="uis", uniform=True)
        graph = gnm(distinct + 1, 2 * distinct, rng=0)
        partition = CategoryPartition.single_category(graph.num_nodes)
        obs = observe_induced(graph, partition, sample)
        estimate = estimate_population_size_coupon(obs)
        assert estimate == pytest.approx(population, rel=0.05)

    def test_weighted_design_rejected(self, setup):
        graph, partition = setup
        sample = RandomWalkSampler(graph).sample(1000, rng=2)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError, match="uniform"):
            estimate_population_size_coupon(obs)

    def test_no_repeats_rejected(self, setup):
        graph, partition = setup
        nodes = np.arange(50, dtype=np.int64)
        sample = NodeSample(nodes, np.ones(50), design="uis", uniform=True)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError, match="repeat"):
            estimate_population_size_coupon(obs)

    def test_tiny_sample_rejected(self, setup):
        graph, partition = setup
        sample = NodeSample(np.array([0]), np.ones(1), uniform=True)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError):
            estimate_population_size_coupon(obs)

    def test_agrees_with_collision_estimator(self, setup):
        from repro.core import estimate_population_size

        graph, partition = setup
        sample = UniformIndependenceSampler(graph).sample(6000, rng=3)
        obs = observe_induced(graph, partition, sample)
        coupon = estimate_population_size_coupon(obs)
        collision = estimate_population_size(obs)
        assert abs(coupon - collision) / collision < 0.25
