"""Tests for the star-weight delta-method variance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_weights_star, star_weight_std
from repro.exceptions import EstimationError
from repro.generators import planted_category_graph
from repro.graph import true_category_graph
from repro.sampling import (
    RandomWalkSampler,
    UniformIndependenceSampler,
    observe_induced,
    observe_star,
)


@pytest.fixture(scope="module")
def setup():
    graph, partition = planted_category_graph(k=10, scale=60, rng=0)
    truth = true_category_graph(graph, partition)
    # Pick a well-populated pair (the two largest categories).
    order = np.argsort(-truth.sizes)
    pair = (int(order[0]), int(order[1]))
    return graph, partition, truth, pair


class TestStarWeightStd:
    def test_matches_replicate_spread(self, setup):
        graph, partition, truth, pair = setup
        estimates = []
        for seed in range(30):
            sample = UniformIndependenceSampler(graph).sample(3000, rng=seed)
            obs = observe_star(graph, partition, sample)
            w = estimate_weights_star(obs, truth.sizes)
            estimates.append(w[pair])
        empirical_std = float(np.std(estimates, ddof=1))
        sample = UniformIndependenceSampler(graph).sample(3000, rng=99)
        obs = observe_star(graph, partition, sample)
        analytic = star_weight_std(obs, truth.sizes, pair)
        assert 0.5 < analytic / empirical_std < 2.0

    def test_shrinks_with_sample_size(self, setup):
        graph, partition, truth, pair = setup
        small = observe_star(
            graph, partition,
            UniformIndependenceSampler(graph).sample(500, rng=1),
        )
        large = observe_star(
            graph, partition,
            UniformIndependenceSampler(graph).sample(20_000, rng=1),
        )
        assert star_weight_std(large, truth.sizes, pair) < star_weight_std(
            small, truth.sizes, pair
        )

    def test_works_under_rw_weights(self, setup):
        graph, partition, truth, pair = setup
        sample = RandomWalkSampler(graph).sample(3000, rng=2)
        obs = observe_star(graph, partition, sample)
        value = star_weight_std(obs, truth.sizes, pair)
        assert np.isfinite(value)
        assert value > 0

    def test_induced_observation_rejected(self, setup):
        graph, partition, truth, pair = setup
        sample = UniformIndependenceSampler(graph).sample(100, rng=3)
        obs = observe_induced(graph, partition, sample)
        with pytest.raises(EstimationError, match="StarObservation"):
            star_weight_std(obs, truth.sizes, pair)

    def test_same_category_pair_rejected(self, setup):
        graph, partition, truth, _ = setup
        sample = UniformIndependenceSampler(graph).sample(100, rng=4)
        obs = observe_star(graph, partition, sample)
        with pytest.raises(EstimationError, match="pair"):
            star_weight_std(obs, truth.sizes, (1, 1))

    def test_unsampled_pair_rejected(self, setup):
        graph, partition, truth, _ = setup
        # Sample a single node; most category pairs untouched.
        sample = UniformIndependenceSampler(graph).sample(2, rng=5)
        obs = observe_star(graph, partition, sample)
        cats = set(obs.distinct_categories.tolist())
        missing = [c for c in range(partition.num_categories) if c not in cats]
        if len(missing) >= 2:
            with pytest.raises(EstimationError, match="undefined"):
                star_weight_std(obs, truth.sizes, (missing[0], missing[1]))

    def test_bad_sizes_shape(self, setup):
        graph, partition, truth, pair = setup
        sample = UniformIndependenceSampler(graph).sample(100, rng=6)
        obs = observe_star(graph, partition, sample)
        with pytest.raises(EstimationError):
            star_weight_std(obs, np.ones(3), pair)


class TestCrossSampleTruthMode:
    def test_cross_sample_mode_runs(self, setup):
        from repro.stats import run_nrmse_sweep_from_samples

        graph, partition, truth, pair = setup
        walks = [
            RandomWalkSampler(graph).sample(2000, rng=seed) for seed in range(5)
        ]
        exact = run_nrmse_sweep_from_samples(
            graph, partition, walks, (500, 2000), truth_mode="exact"
        )
        paper_style = run_nrmse_sweep_from_samples(
            graph, partition, walks, (500, 2000), truth_mode="cross-sample"
        )
        # At full length, the cross-sample NRMSE measures only spread, so
        # it is not larger than the exact-truth NRMSE on average.
        kind = "star"
        exact_med = exact.median_size_nrmse(kind)[-1]
        cross_med = paper_style.median_size_nrmse(kind)[-1]
        assert np.isfinite(cross_med)
        assert cross_med <= exact_med * 1.5

    def test_unknown_mode_rejected(self, setup):
        from repro.stats import run_nrmse_sweep_from_samples

        graph, partition, truth, pair = setup
        walks = [RandomWalkSampler(graph).sample(100, rng=0)]
        with pytest.raises(EstimationError, match="truth_mode"):
            run_nrmse_sweep_from_samples(
                graph, partition, walks, (50,), truth_mode="banana"
            )
